//! The LSM database: memtable → L0 tables → one big L1, with WAL appends
//! and L0→L1 compaction.
//!
//! Deliberately a *small* RocksDB: enough structure that its I/O pattern
//! mix matches what the paper's readahead model sees — point reads hitting
//! random blocks across levels, WAL appends dirtying pages, flushes and
//! compactions streaming sequentially while reads continue.

use crate::sstable::SsTable;
use kernel_sim::{FileId, IoResult, Sim};
use std::collections::BTreeSet;

/// Tuning knobs of the store.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Keys per data block (≈ block bytes / entry bytes; 40 ≈ 16 KiB / 400 B).
    pub entries_per_block: usize,
    /// Memtable flush threshold, in keys.
    pub memtable_keys: usize,
    /// L0 table count that triggers compaction into L1.
    pub l0_compaction_trigger: usize,
    /// Entries per WAL page (how often a put dirties a new WAL page).
    pub wal_entries_per_page: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            entries_per_block: 40,
            memtable_keys: 8_192,
            l0_compaction_trigger: 4,
            wal_entries_per_page: 10,
        }
    }
}

/// Operational counters of the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Gets served from the memtable (no I/O).
    pub memtable_hits: u64,
    /// Gets that had to consult at least one table.
    pub table_reads: u64,
    /// Background work (threshold flushes, compactions) that failed on an
    /// injected device error and will be retried at the next trigger.
    pub background_errors: u64,
}

/// The LSM store. Keys are `u64`; values are implied (the simulation
/// charges their I/O without materializing bytes).
#[derive(Debug)]
pub struct Db {
    cfg: DbConfig,
    memtable: BTreeSet<u64>,
    l0: Vec<SsTable>,
    l1: Option<SsTable>,
    wal: FileId,
    wal_page: u64,
    wal_entries_in_page: usize,
    stats: DbStats,
    /// DST harness-validation knob: when set, a failed flush *drops* the
    /// memtable instead of keeping it — the deliberate invariant violation
    /// the simulation harness must catch. Never enabled in production paths.
    dst_bug_lose_failed_flush: bool,
}

impl Db {
    /// Maximum pages reserved for the write-ahead log file.
    const WAL_PAGES: u64 = 1 << 20;

    /// Creates an empty store backed by `sim`.
    pub fn create(sim: &mut Sim, cfg: DbConfig) -> Db {
        let wal = sim.create_file(Self::WAL_PAGES);
        Db {
            cfg,
            memtable: BTreeSet::new(),
            l0: Vec::new(),
            l1: None,
            wal,
            wal_page: 0,
            wal_entries_in_page: 0,
            stats: DbStats::default(),
            dst_bug_lose_failed_flush: false,
        }
    }

    /// Enables the deliberate lose-data-on-failed-flush bug used to validate
    /// that the DST harness catches real invariant violations. Hidden from
    /// docs; do not use outside the harness's self-test.
    #[doc(hidden)]
    pub fn set_dst_bug_lose_failed_flush(&mut self, on: bool) {
        self.dst_bug_lose_failed_flush = on;
    }

    /// Bulk-loads a sorted, deduplicated key set directly into L1 (the
    /// `SstFileWriter` ingest path): one sequential write, no WAL, no
    /// compaction. Used to set up large benchmark databases cheaply.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty or unsorted, or the store is non-empty.
    pub fn bulk_load(&mut self, sim: &mut Sim, keys: Vec<u64>) -> IoResult<()> {
        assert!(
            self.memtable.is_empty() && self.l0.is_empty() && self.l1.is_none(),
            "bulk_load requires an empty store"
        );
        self.l1 = Some(SsTable::build(sim, keys, self.cfg.entries_per_block)?);
        Ok(())
    }

    /// Inserts (or overwrites) a key: WAL append + memtable insert, flushing
    /// and compacting when thresholds trip.
    ///
    /// Under an injected fault plan the WAL append may fail: the key is
    /// then NOT inserted (it was never durably logged) and the error is
    /// returned — callers may retry the put. A *threshold* flush that fails
    /// is counted in [`DbStats::background_errors`] and retried at the next
    /// threshold; the put itself still succeeds (the key is safely in the
    /// memtable + WAL), which is the graceful-degradation shape the paper
    /// requires of an in-kernel loop.
    pub fn put(&mut self, sim: &mut Sim, key: u64) -> IoResult<()> {
        // WAL append: a page gets dirtied once per `wal_entries_per_page`.
        self.wal_entries_in_page += 1;
        if self.wal_entries_in_page >= self.cfg.wal_entries_per_page {
            if let Err(e) = sim.write(self.wal, self.wal_page % Self::WAL_PAGES, 1) {
                // The entry was never logged: undo the accounting and
                // reject the put without touching the memtable.
                self.wal_entries_in_page -= 1;
                return Err(e);
            }
            self.wal_page += 1;
            self.wal_entries_in_page = 0;
        }
        self.memtable.insert(key);
        if self.memtable.len() >= self.cfg.memtable_keys && self.flush(sim).is_err() {
            self.stats.background_errors += 1;
        }
        Ok(())
    }

    /// Flushes the memtable into a new L0 table (no-op when empty).
    ///
    /// On an injected device error the memtable is left intact (abort, not
    /// lose) and the error returned; the caller may retry. A compaction
    /// failure triggered by this flush does not fail the flush — it is
    /// counted in [`DbStats::background_errors`] and retried later.
    pub fn flush(&mut self, sim: &mut Sim) -> IoResult<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let keys: Vec<u64> = self.memtable.iter().copied().collect();
        match SsTable::build(sim, keys, self.cfg.entries_per_block) {
            Ok(table) => {
                self.memtable.clear();
                self.l0.push(table);
            }
            Err(e) => {
                if self.dst_bug_lose_failed_flush {
                    // Deliberate bug (harness validation): drop the keys.
                    self.memtable.clear();
                }
                return Err(e);
            }
        }
        self.stats.flushes += 1;
        if self.l0.len() >= self.cfg.l0_compaction_trigger && self.compact(sim).is_err() {
            self.stats.background_errors += 1;
        }
        Ok(())
    }

    /// Merges all of L0 with L1 into a new L1, charging sequential reads of
    /// every input and a sequential write of the output.
    ///
    /// All-or-nothing under faults: the merged table is built *before* L0
    /// and L1 are replaced, so a failed compaction leaves the store exactly
    /// as it was.
    pub fn compact(&mut self, sim: &mut Sim) -> IoResult<()> {
        if self.l0.is_empty() {
            return Ok(());
        }
        let mut merged: BTreeSet<u64> = BTreeSet::new();
        for t in &self.l0 {
            t.read_all(sim)?;
            merged.extend(t.keys().iter().copied());
        }
        if let Some(l1) = &self.l1 {
            l1.read_all(sim)?;
            merged.extend(l1.keys().iter().copied());
        }
        let new_l1 = SsTable::build(
            sim,
            merged.into_iter().collect(),
            self.cfg.entries_per_block,
        )?;
        self.l0.clear();
        self.l1 = Some(new_l1);
        self.stats.compactions += 1;
        Ok(())
    }

    /// Point lookup. Searches memtable, then L0 newest→oldest, then L1,
    /// charging block reads along the way (RocksDB's read amplification).
    /// A block read may fail under an injected fault plan; the store itself
    /// is unchanged by a failed get.
    pub fn get(&mut self, sim: &mut Sim, key: u64) -> IoResult<bool> {
        if self.memtable.contains(&key) {
            self.stats.memtable_hits += 1;
            return Ok(true);
        }
        self.stats.table_reads += 1;
        for t in self.l0.iter().rev() {
            if t.get(sim, key)? {
                return Ok(true);
            }
        }
        if let Some(l1) = &self.l1 {
            return l1.get(sim, key);
        }
        Ok(false)
    }

    /// Forward scan: visits `limit` keys starting at the first key ≥ `from`,
    /// charging sequential block reads. Returns the number of keys visited,
    /// or the error of the block read that failed mid-scan.
    pub fn scan(&mut self, sim: &mut Sim, from: u64, limit: usize) -> IoResult<usize> {
        self.scan_impl(sim, from, limit, false)
    }

    /// Backward scan: visits `limit` keys descending from the last key ≤
    /// `from`. Returns the number of keys visited.
    pub fn scan_reverse(&mut self, sim: &mut Sim, from: u64, limit: usize) -> IoResult<usize> {
        self.scan_impl(sim, from, limit, true)
    }

    fn scan_impl(
        &mut self,
        sim: &mut Sim,
        from: u64,
        limit: usize,
        reverse: bool,
    ) -> IoResult<usize> {
        // A real LSM iterator merges every sorted source: the memtable (no
        // I/O), each L0 run, and L1. Sources are walked by cursor over the
        // tables' resident key slices — nothing is copied (a scan must not
        // materialize the tail of a million-key table per burst).
        struct Source<'a> {
            table: Option<&'a SsTable>, // None = memtable
            keys: std::borrow::Cow<'a, [u64]>,
            /// Next position; counts down in reverse mode (i64 so -1 = done).
            idx: i64,
            last_block: usize,
        }
        impl Source<'_> {
            fn peek(&self, reverse: bool) -> Option<u64> {
                if reverse {
                    (self.idx >= 0).then(|| self.keys[self.idx as usize])
                } else {
                    self.keys.get(self.idx as usize).copied()
                }
            }
            fn advance(&mut self, reverse: bool) {
                self.idx += if reverse { -1 } else { 1 };
            }
        }

        let mut sources: Vec<Source<'_>> = Vec::new();
        // Memtable: copy at most `limit` keys (bounded, unlike the tables).
        let mem: Vec<u64> = if reverse {
            self.memtable
                .range(..=from)
                .rev()
                .take(limit)
                .copied()
                .collect()
        } else {
            self.memtable.range(from..).take(limit).copied().collect()
        };
        let mem_len = mem.len() as i64;
        sources.push(Source {
            table: None,
            keys: std::borrow::Cow::Owned(mem),
            idx: if reverse { mem_len - 1 } else { 0 },
            last_block: usize::MAX,
        });
        // The memtable copy above is already in scan order; flip reverse
        // handling for it by re-reversing into ascending order.
        if reverse {
            if let std::borrow::Cow::Owned(v) = &mut sources[0].keys {
                v.reverse();
            }
            sources[0].idx = mem_len - 1;
        }
        for table in self.l0.iter().chain(self.l1.as_ref()) {
            let keys = table.keys();
            let idx = if reverse {
                table.lower_bound(from.saturating_add(1)) as i64 - 1
            } else {
                table.lower_bound(from) as i64
            };
            sources.push(Source {
                table: Some(table),
                keys: std::borrow::Cow::Borrowed(keys),
                idx,
                last_block: usize::MAX,
            });
        }

        let entries_per_block = self.cfg.entries_per_block;
        let mut visited = 0;
        let mut last_key: Option<u64> = None;
        while visited < limit {
            // Pick the next key in scan order across all sources.
            let mut best: Option<(usize, u64)> = None;
            for (i, src) in sources.iter().enumerate() {
                if let Some(k) = src.peek(reverse) {
                    let better = match best {
                        None => true,
                        Some((_, bk)) => {
                            if reverse {
                                k > bk
                            } else {
                                k < bk
                            }
                        }
                    };
                    if better {
                        best = Some((i, k));
                    }
                }
            }
            let Some((i, key)) = best else { break };
            let key_idx = sources[i].idx as usize;
            sources[i].advance(reverse);
            if last_key == Some(key) {
                continue; // shadowed duplicate from an older run
            }
            last_key = Some(key);
            if let Some(table) = sources[i].table {
                // Charge the block read lazily, once per block per table.
                let block = key_idx / entries_per_block;
                if block != sources[i].last_block {
                    table.read_block_of(sim, key_idx)?;
                    sources[i].last_block = block;
                }
            }
            visited += 1;
        }
        Ok(visited)
    }

    /// Total keys across memtable and tables (upper bound: counts
    /// overwritten keys in multiple runs once per run).
    pub fn approximate_len(&self) -> usize {
        self.memtable.len()
            + self.l0.iter().map(SsTable::len).sum::<usize>()
            + self.l1.as_ref().map_or(0, SsTable::len)
    }

    /// Smallest key in the compacted level, if any.
    pub fn min_key(&self) -> Option<u64> {
        self.l1.as_ref().map(SsTable::min_key)
    }

    /// Largest key in the compacted level, if any.
    pub fn max_key(&self) -> Option<u64> {
        self.l1.as_ref().map(SsTable::max_key)
    }

    /// Operational counters.
    pub fn stats(&self) -> DbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::{DeviceProfile, SimConfig};

    fn sim() -> Sim {
        Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 4096,
            ..SimConfig::default()
        })
    }

    fn filled_db(sim: &mut Sim, n: u64) -> Db {
        let mut db = Db::create(
            sim,
            DbConfig {
                memtable_keys: 1024,
                ..DbConfig::default()
            },
        );
        for k in 0..n {
            db.put(sim, k).unwrap();
        }
        db.flush(sim).unwrap();
        db.compact(sim).unwrap();
        db
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = sim();
        let mut db = filled_db(&mut s, 10_000);
        assert!(db.get(&mut s, 0).unwrap());
        assert!(db.get(&mut s, 9_999).unwrap());
        assert!(db.get(&mut s, 5_000).unwrap());
        assert!(!db.get(&mut s, 10_000).unwrap());
    }

    #[test]
    fn memtable_hits_do_no_io() {
        let mut s = sim();
        let mut db = Db::create(&mut s, DbConfig::default());
        db.put(&mut s, 42).unwrap();
        s.reset_stats();
        assert!(db.get(&mut s, 42).unwrap());
        assert_eq!(s.stats().device.read_requests, 0);
        assert_eq!(db.stats().memtable_hits, 1);
    }

    #[test]
    fn flush_and_compaction_thresholds_fire() {
        let mut s = sim();
        let mut db = Db::create(
            &mut s,
            DbConfig {
                memtable_keys: 100,
                l0_compaction_trigger: 3,
                ..DbConfig::default()
            },
        );
        for k in 0..1000 {
            db.put(&mut s, k).unwrap();
        }
        let stats = db.stats();
        assert!(stats.flushes >= 9, "flushes: {}", stats.flushes);
        assert!(stats.compactions >= 3, "compactions: {}", stats.compactions);
    }

    #[test]
    fn overwrites_do_not_duplicate_l1_keys() {
        let mut s = sim();
        let mut db = Db::create(
            &mut s,
            DbConfig {
                memtable_keys: 64,
                l0_compaction_trigger: 2,
                ..DbConfig::default()
            },
        );
        for _ in 0..4 {
            for k in 0..100 {
                db.put(&mut s, k).unwrap();
            }
            db.flush(&mut s).unwrap();
        }
        db.compact(&mut s).unwrap();
        assert_eq!(db.approximate_len(), 100);
    }

    #[test]
    fn forward_scan_visits_in_order_with_block_batching() {
        let mut s = sim();
        let mut db = filled_db(&mut s, 10_000);
        s.drop_caches().unwrap();
        s.reset_stats();
        let visited = db.scan(&mut s, 0, 4000).unwrap();
        assert_eq!(visited, 4000);
        // 4000 keys / 40 per block = 100 block reads.
        let reads = s.stats().logical_reads;
        assert_eq!(reads, 100, "logical block reads: {reads}");
    }

    #[test]
    fn reverse_scan_visits_descending() {
        let mut s = sim();
        let mut db = filled_db(&mut s, 1_000);
        let visited = db.scan_reverse(&mut s, 999, 500).unwrap();
        assert_eq!(visited, 500);
        // From the very beginning there is nothing below.
        assert_eq!(db.scan_reverse(&mut s, 0, 10).unwrap(), 1);
    }

    #[test]
    fn scan_from_middle_respects_bound() {
        let mut s = sim();
        let mut db = filled_db(&mut s, 1_000);
        assert_eq!(db.scan(&mut s, 990, 100).unwrap(), 10);
        assert_eq!(db.scan(&mut s, 2_000, 100).unwrap(), 0);
    }

    #[test]
    fn scan_merges_memtable_l0_and_l1() {
        let mut s = sim();
        let mut db = Db::create(
            &mut s,
            DbConfig {
                memtable_keys: 1 << 20,     // manual flushes only
                l0_compaction_trigger: 100, // no auto-compaction
                ..DbConfig::default()
            },
        );
        // L1: even keys 0..100.
        db.bulk_load(&mut s, (0..100).filter(|k| k % 2 == 0).collect())
            .unwrap();
        // L0: multiples of 3 (flushed).
        for k in (0..100).filter(|k| k % 3 == 0) {
            db.put(&mut s, k).unwrap();
        }
        db.flush(&mut s).unwrap();
        // Memtable: multiples of 5 (unflushed).
        for k in (0..100).filter(|k| k % 5 == 0) {
            db.put(&mut s, k).unwrap();
        }
        let expected = (0..100u64)
            .filter(|k| k % 2 == 0 || k % 3 == 0 || k % 5 == 0)
            .count();
        assert_eq!(db.scan(&mut s, 0, 1000).unwrap(), expected);
        assert_eq!(db.scan_reverse(&mut s, 99, 1000).unwrap(), expected);
        // Duplicates across runs (e.g. 30 = 2·3·5) are visited once: a
        // bounded scan starting mid-range also agrees with the reference.
        let expected_mid = (40..100u64)
            .filter(|k| k % 2 == 0 || k % 3 == 0 || k % 5 == 0)
            .take(10)
            .count();
        assert_eq!(db.scan(&mut s, 40, 10).unwrap(), expected_mid);
    }

    #[test]
    fn wal_appends_write_pages() {
        let mut s = sim();
        let mut db = Db::create(&mut s, DbConfig::default());
        s.reset_stats();
        for k in 0..100 {
            db.put(&mut s, k).unwrap();
        }
        // 100 puts / 10 per page = 10 WAL page writes.
        assert!(s.stats().logical_writes >= 10);
    }

    #[test]
    fn get_absent_key_is_usually_filtered_without_io() {
        // With per-table Bloom filters (RocksDB default), absent keys in
        // range skip the block read except on ~1% false positives.
        let mut s = sim();
        let mut db = Db::create(
            &mut s,
            DbConfig {
                memtable_keys: 1 << 20,
                ..DbConfig::default()
            },
        );
        for k in (0..1000).map(|k| k * 2) {
            db.put(&mut s, k).unwrap();
        }
        db.flush(&mut s).unwrap();
        db.compact(&mut s).unwrap();
        s.drop_caches().unwrap();
        s.reset_stats();
        for k in (0..1000u64).map(|k| k * 2 + 1) {
            assert!(!db.get(&mut s, k).unwrap());
        }
        assert!(
            s.stats().logical_reads < 50,
            "absent-key gets paid I/O {} times",
            s.stats().logical_reads
        );
    }

    #[test]
    fn failed_flush_keeps_memtable_for_retry() {
        use kernel_sim::{FaultConfig, FaultPlan};
        let mut s = sim();
        let mut db = Db::create(&mut s, DbConfig::default());
        for k in 0..500 {
            db.put(&mut s, k).unwrap();
        }
        s.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed: 4,
            write_error: 1.0,
            ..FaultConfig::off()
        })));
        db.flush(&mut s).unwrap_err();
        // Abort, not lose: all 500 keys still in the memtable, no L0 run.
        assert_eq!(db.approximate_len(), 500);
        assert_eq!(db.stats().flushes, 0);
        s.set_fault_plan(None);
        db.flush(&mut s).unwrap();
        assert_eq!(db.stats().flushes, 1);
        assert!(db.get(&mut s, 250).unwrap());
    }

    #[test]
    fn failed_compaction_leaves_store_unchanged() {
        use kernel_sim::{FaultConfig, FaultPlan};
        let mut s = sim();
        let mut db = Db::create(
            &mut s,
            DbConfig {
                memtable_keys: 1 << 20,
                l0_compaction_trigger: 100,
                ..DbConfig::default()
            },
        );
        for round in 0..3 {
            for k in 0..100 {
                db.put(&mut s, round * 1000 + k).unwrap();
            }
            db.flush(&mut s).unwrap();
        }
        let len_before = db.approximate_len();
        // Cold-start the tables so compaction must actually hit the device.
        s.drop_caches().unwrap();
        s.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed: 8,
            read_error: 1.0,
            ..FaultConfig::off()
        })));
        db.compact(&mut s).unwrap_err();
        assert_eq!(db.approximate_len(), len_before);
        assert_eq!(db.stats().compactions, 0);
        s.set_fault_plan(None);
        db.compact(&mut s).unwrap();
        assert_eq!(db.stats().compactions, 1);
        assert!(db.get(&mut s, 2050).unwrap());
    }

    #[test]
    fn failed_wal_append_rejects_the_put() {
        use kernel_sim::{DeviceProfile, FaultConfig, FaultPlan, SimConfig};
        // WAL writes are buffered; a zero-ish dirty threshold forces the
        // flusher to hit the (failing) device inside the logical write.
        let mut s = Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 64,
            dirty_threshold: 0.0,
            ..SimConfig::default()
        });
        // Every put hits the WAL so the error path is deterministic.
        let mut db = Db::create(
            &mut s,
            DbConfig {
                wal_entries_per_page: 1,
                ..DbConfig::default()
            },
        );
        s.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed: 6,
            write_error: 1.0,
            ..FaultConfig::off()
        })));
        db.put(&mut s, 42).unwrap_err();
        assert_eq!(db.approximate_len(), 0, "unlogged key must not be stored");
        // The put can be retried once the device recovers.
        s.set_fault_plan(None);
        db.put(&mut s, 42).unwrap();
        assert!(db.get(&mut s, 42).unwrap());
    }

    #[test]
    fn dst_bug_knob_loses_keys_on_failed_flush() {
        use kernel_sim::{FaultConfig, FaultPlan};
        let mut s = sim();
        let mut db = Db::create(&mut s, DbConfig::default());
        db.set_dst_bug_lose_failed_flush(true);
        for k in 0..100 {
            db.put(&mut s, k).unwrap();
        }
        s.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            seed: 4,
            write_error: 1.0,
            ..FaultConfig::off()
        })));
        db.flush(&mut s).unwrap_err();
        // The deliberate bug: the failed flush dropped the memtable.
        assert_eq!(db.approximate_len(), 0);
    }
}
