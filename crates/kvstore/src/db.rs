//! The LSM database: memtable → L0 tables → one big L1, with WAL appends
//! and L0→L1 compaction.
//!
//! Deliberately a *small* RocksDB: enough structure that its I/O pattern
//! mix matches what the paper's readahead model sees — point reads hitting
//! random blocks across levels, WAL appends dirtying pages, flushes and
//! compactions streaming sequentially while reads continue.

use crate::sstable::SsTable;
use kernel_sim::{FileId, Sim};
use std::collections::BTreeSet;

/// Tuning knobs of the store.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Keys per data block (≈ block bytes / entry bytes; 40 ≈ 16 KiB / 400 B).
    pub entries_per_block: usize,
    /// Memtable flush threshold, in keys.
    pub memtable_keys: usize,
    /// L0 table count that triggers compaction into L1.
    pub l0_compaction_trigger: usize,
    /// Entries per WAL page (how often a put dirties a new WAL page).
    pub wal_entries_per_page: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            entries_per_block: 40,
            memtable_keys: 8_192,
            l0_compaction_trigger: 4,
            wal_entries_per_page: 10,
        }
    }
}

/// Operational counters of the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Gets served from the memtable (no I/O).
    pub memtable_hits: u64,
    /// Gets that had to consult at least one table.
    pub table_reads: u64,
}

/// The LSM store. Keys are `u64`; values are implied (the simulation
/// charges their I/O without materializing bytes).
#[derive(Debug)]
pub struct Db {
    cfg: DbConfig,
    memtable: BTreeSet<u64>,
    l0: Vec<SsTable>,
    l1: Option<SsTable>,
    wal: FileId,
    wal_page: u64,
    wal_entries_in_page: usize,
    stats: DbStats,
}

impl Db {
    /// Maximum pages reserved for the write-ahead log file.
    const WAL_PAGES: u64 = 1 << 20;

    /// Creates an empty store backed by `sim`.
    pub fn create(sim: &mut Sim, cfg: DbConfig) -> Db {
        let wal = sim.create_file(Self::WAL_PAGES);
        Db {
            cfg,
            memtable: BTreeSet::new(),
            l0: Vec::new(),
            l1: None,
            wal,
            wal_page: 0,
            wal_entries_in_page: 0,
            stats: DbStats::default(),
        }
    }

    /// Bulk-loads a sorted, deduplicated key set directly into L1 (the
    /// `SstFileWriter` ingest path): one sequential write, no WAL, no
    /// compaction. Used to set up large benchmark databases cheaply.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty or unsorted, or the store is non-empty.
    pub fn bulk_load(&mut self, sim: &mut Sim, keys: Vec<u64>) {
        assert!(
            self.memtable.is_empty() && self.l0.is_empty() && self.l1.is_none(),
            "bulk_load requires an empty store"
        );
        self.l1 = Some(SsTable::build(sim, keys, self.cfg.entries_per_block));
    }

    /// Inserts (or overwrites) a key: WAL append + memtable insert, flushing
    /// and compacting when thresholds trip.
    pub fn put(&mut self, sim: &mut Sim, key: u64) {
        // WAL append: a page gets dirtied once per `wal_entries_per_page`.
        self.wal_entries_in_page += 1;
        if self.wal_entries_in_page >= self.cfg.wal_entries_per_page {
            sim.write(self.wal, self.wal_page % Self::WAL_PAGES, 1);
            self.wal_page += 1;
            self.wal_entries_in_page = 0;
        }
        self.memtable.insert(key);
        if self.memtable.len() >= self.cfg.memtable_keys {
            self.flush(sim);
        }
    }

    /// Flushes the memtable into a new L0 table (no-op when empty).
    pub fn flush(&mut self, sim: &mut Sim) {
        if self.memtable.is_empty() {
            return;
        }
        let keys: Vec<u64> = std::mem::take(&mut self.memtable).into_iter().collect();
        self.l0
            .push(SsTable::build(sim, keys, self.cfg.entries_per_block));
        self.stats.flushes += 1;
        if self.l0.len() >= self.cfg.l0_compaction_trigger {
            self.compact(sim);
        }
    }

    /// Merges all of L0 with L1 into a new L1, charging sequential reads of
    /// every input and a sequential write of the output.
    pub fn compact(&mut self, sim: &mut Sim) {
        if self.l0.is_empty() {
            return;
        }
        let mut merged: BTreeSet<u64> = BTreeSet::new();
        for t in &self.l0 {
            t.read_all(sim);
            merged.extend(t.keys().iter().copied());
        }
        if let Some(l1) = &self.l1 {
            l1.read_all(sim);
            merged.extend(l1.keys().iter().copied());
        }
        self.l0.clear();
        self.l1 = Some(SsTable::build(
            sim,
            merged.into_iter().collect(),
            self.cfg.entries_per_block,
        ));
        self.stats.compactions += 1;
    }

    /// Point lookup. Searches memtable, then L0 newest→oldest, then L1,
    /// charging block reads along the way (RocksDB's read amplification).
    pub fn get(&mut self, sim: &mut Sim, key: u64) -> bool {
        if self.memtable.contains(&key) {
            self.stats.memtable_hits += 1;
            return true;
        }
        self.stats.table_reads += 1;
        for t in self.l0.iter().rev() {
            if t.get(sim, key) {
                return true;
            }
        }
        if let Some(l1) = &self.l1 {
            return l1.get(sim, key);
        }
        false
    }

    /// Forward scan: visits `limit` keys starting at the first key ≥ `from`,
    /// charging sequential block reads. Returns the number of keys visited.
    pub fn scan(&mut self, sim: &mut Sim, from: u64, limit: usize) -> usize {
        self.scan_impl(sim, from, limit, false)
    }

    /// Backward scan: visits `limit` keys descending from the last key ≤
    /// `from`. Returns the number of keys visited.
    pub fn scan_reverse(&mut self, sim: &mut Sim, from: u64, limit: usize) -> usize {
        self.scan_impl(sim, from, limit, true)
    }

    fn scan_impl(&mut self, sim: &mut Sim, from: u64, limit: usize, reverse: bool) -> usize {
        // A real LSM iterator merges every sorted source: the memtable (no
        // I/O), each L0 run, and L1. Sources are walked by cursor over the
        // tables' resident key slices — nothing is copied (a scan must not
        // materialize the tail of a million-key table per burst).
        struct Source<'a> {
            table: Option<&'a SsTable>, // None = memtable
            keys: std::borrow::Cow<'a, [u64]>,
            /// Next position; counts down in reverse mode (i64 so -1 = done).
            idx: i64,
            last_block: usize,
        }
        impl Source<'_> {
            fn peek(&self, reverse: bool) -> Option<u64> {
                if reverse {
                    (self.idx >= 0).then(|| self.keys[self.idx as usize])
                } else {
                    self.keys.get(self.idx as usize).copied()
                }
            }
            fn advance(&mut self, reverse: bool) {
                self.idx += if reverse { -1 } else { 1 };
            }
        }

        let mut sources: Vec<Source<'_>> = Vec::new();
        // Memtable: copy at most `limit` keys (bounded, unlike the tables).
        let mem: Vec<u64> = if reverse {
            self.memtable
                .range(..=from)
                .rev()
                .take(limit)
                .copied()
                .collect()
        } else {
            self.memtable.range(from..).take(limit).copied().collect()
        };
        let mem_len = mem.len() as i64;
        sources.push(Source {
            table: None,
            keys: std::borrow::Cow::Owned(mem),
            idx: if reverse { mem_len - 1 } else { 0 },
            last_block: usize::MAX,
        });
        // The memtable copy above is already in scan order; flip reverse
        // handling for it by re-reversing into ascending order.
        if reverse {
            if let std::borrow::Cow::Owned(v) = &mut sources[0].keys {
                v.reverse();
            }
            sources[0].idx = mem_len - 1;
        }
        for table in self.l0.iter().chain(self.l1.as_ref()) {
            let keys = table.keys();
            let idx = if reverse {
                table.lower_bound(from.saturating_add(1)) as i64 - 1
            } else {
                table.lower_bound(from) as i64
            };
            sources.push(Source {
                table: Some(table),
                keys: std::borrow::Cow::Borrowed(keys),
                idx,
                last_block: usize::MAX,
            });
        }

        let entries_per_block = self.cfg.entries_per_block;
        let mut visited = 0;
        let mut last_key: Option<u64> = None;
        while visited < limit {
            // Pick the next key in scan order across all sources.
            let mut best: Option<(usize, u64)> = None;
            for (i, src) in sources.iter().enumerate() {
                if let Some(k) = src.peek(reverse) {
                    let better = match best {
                        None => true,
                        Some((_, bk)) => {
                            if reverse {
                                k > bk
                            } else {
                                k < bk
                            }
                        }
                    };
                    if better {
                        best = Some((i, k));
                    }
                }
            }
            let Some((i, key)) = best else { break };
            let key_idx = sources[i].idx as usize;
            sources[i].advance(reverse);
            if last_key == Some(key) {
                continue; // shadowed duplicate from an older run
            }
            last_key = Some(key);
            if let Some(table) = sources[i].table {
                // Charge the block read lazily, once per block per table.
                let block = key_idx / entries_per_block;
                if block != sources[i].last_block {
                    table.read_block_of(sim, key_idx);
                    sources[i].last_block = block;
                }
            }
            visited += 1;
        }
        visited
    }

    /// Total keys across memtable and tables (upper bound: counts
    /// overwritten keys in multiple runs once per run).
    pub fn approximate_len(&self) -> usize {
        self.memtable.len()
            + self.l0.iter().map(SsTable::len).sum::<usize>()
            + self.l1.as_ref().map_or(0, SsTable::len)
    }

    /// Smallest key in the compacted level, if any.
    pub fn min_key(&self) -> Option<u64> {
        self.l1.as_ref().map(SsTable::min_key)
    }

    /// Largest key in the compacted level, if any.
    pub fn max_key(&self) -> Option<u64> {
        self.l1.as_ref().map(SsTable::max_key)
    }

    /// Operational counters.
    pub fn stats(&self) -> DbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::{DeviceProfile, SimConfig};

    fn sim() -> Sim {
        Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 4096,
            ..SimConfig::default()
        })
    }

    fn filled_db(sim: &mut Sim, n: u64) -> Db {
        let mut db = Db::create(
            sim,
            DbConfig {
                memtable_keys: 1024,
                ..DbConfig::default()
            },
        );
        for k in 0..n {
            db.put(sim, k);
        }
        db.flush(sim);
        db.compact(sim);
        db
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = sim();
        let mut db = filled_db(&mut s, 10_000);
        assert!(db.get(&mut s, 0));
        assert!(db.get(&mut s, 9_999));
        assert!(db.get(&mut s, 5_000));
        assert!(!db.get(&mut s, 10_000));
    }

    #[test]
    fn memtable_hits_do_no_io() {
        let mut s = sim();
        let mut db = Db::create(&mut s, DbConfig::default());
        db.put(&mut s, 42);
        s.reset_stats();
        assert!(db.get(&mut s, 42));
        assert_eq!(s.stats().device.read_requests, 0);
        assert_eq!(db.stats().memtable_hits, 1);
    }

    #[test]
    fn flush_and_compaction_thresholds_fire() {
        let mut s = sim();
        let mut db = Db::create(
            &mut s,
            DbConfig {
                memtable_keys: 100,
                l0_compaction_trigger: 3,
                ..DbConfig::default()
            },
        );
        for k in 0..1000 {
            db.put(&mut s, k);
        }
        let stats = db.stats();
        assert!(stats.flushes >= 9, "flushes: {}", stats.flushes);
        assert!(stats.compactions >= 3, "compactions: {}", stats.compactions);
    }

    #[test]
    fn overwrites_do_not_duplicate_l1_keys() {
        let mut s = sim();
        let mut db = Db::create(
            &mut s,
            DbConfig {
                memtable_keys: 64,
                l0_compaction_trigger: 2,
                ..DbConfig::default()
            },
        );
        for _ in 0..4 {
            for k in 0..100 {
                db.put(&mut s, k);
            }
            db.flush(&mut s);
        }
        db.compact(&mut s);
        assert_eq!(db.approximate_len(), 100);
    }

    #[test]
    fn forward_scan_visits_in_order_with_block_batching() {
        let mut s = sim();
        let mut db = filled_db(&mut s, 10_000);
        s.drop_caches();
        s.reset_stats();
        let visited = db.scan(&mut s, 0, 4000);
        assert_eq!(visited, 4000);
        // 4000 keys / 40 per block = 100 block reads.
        let reads = s.stats().logical_reads;
        assert_eq!(reads, 100, "logical block reads: {reads}");
    }

    #[test]
    fn reverse_scan_visits_descending() {
        let mut s = sim();
        let mut db = filled_db(&mut s, 1_000);
        let visited = db.scan_reverse(&mut s, 999, 500);
        assert_eq!(visited, 500);
        // From the very beginning there is nothing below.
        assert_eq!(db.scan_reverse(&mut s, 0, 10), 1);
    }

    #[test]
    fn scan_from_middle_respects_bound() {
        let mut s = sim();
        let mut db = filled_db(&mut s, 1_000);
        assert_eq!(db.scan(&mut s, 990, 100), 10);
        assert_eq!(db.scan(&mut s, 2_000, 100), 0);
    }

    #[test]
    fn scan_merges_memtable_l0_and_l1() {
        let mut s = sim();
        let mut db = Db::create(
            &mut s,
            DbConfig {
                memtable_keys: 1 << 20,     // manual flushes only
                l0_compaction_trigger: 100, // no auto-compaction
                ..DbConfig::default()
            },
        );
        // L1: even keys 0..100.
        db.bulk_load(&mut s, (0..100).filter(|k| k % 2 == 0).collect());
        // L0: multiples of 3 (flushed).
        for k in (0..100).filter(|k| k % 3 == 0) {
            db.put(&mut s, k);
        }
        db.flush(&mut s);
        // Memtable: multiples of 5 (unflushed).
        for k in (0..100).filter(|k| k % 5 == 0) {
            db.put(&mut s, k);
        }
        let expected = (0..100u64)
            .filter(|k| k % 2 == 0 || k % 3 == 0 || k % 5 == 0)
            .count();
        assert_eq!(db.scan(&mut s, 0, 1000), expected);
        assert_eq!(db.scan_reverse(&mut s, 99, 1000), expected);
        // Duplicates across runs (e.g. 30 = 2·3·5) are visited once: a
        // bounded scan starting mid-range also agrees with the reference.
        let expected_mid = (40..100u64)
            .filter(|k| k % 2 == 0 || k % 3 == 0 || k % 5 == 0)
            .take(10)
            .count();
        assert_eq!(db.scan(&mut s, 40, 10), expected_mid);
    }

    #[test]
    fn wal_appends_write_pages() {
        let mut s = sim();
        let mut db = Db::create(&mut s, DbConfig::default());
        s.reset_stats();
        for k in 0..100 {
            db.put(&mut s, k);
        }
        // 100 puts / 10 per page = 10 WAL page writes.
        assert!(s.stats().logical_writes >= 10);
    }

    #[test]
    fn get_absent_key_is_usually_filtered_without_io() {
        // With per-table Bloom filters (RocksDB default), absent keys in
        // range skip the block read except on ~1% false positives.
        let mut s = sim();
        let mut db = Db::create(
            &mut s,
            DbConfig {
                memtable_keys: 1 << 20,
                ..DbConfig::default()
            },
        );
        for k in (0..1000).map(|k| k * 2) {
            db.put(&mut s, k);
        }
        db.flush(&mut s);
        db.compact(&mut s);
        s.drop_caches();
        s.reset_stats();
        for k in (0..1000u64).map(|k| k * 2 + 1) {
            assert!(!db.get(&mut s, k));
        }
        assert!(
            s.stats().logical_reads < 50,
            "absent-key gets paid I/O {} times",
            s.stats().logical_reads
        );
    }
}
