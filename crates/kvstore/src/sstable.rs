//! Sorted string tables: the on-"disk" format of the LSM store.
//!
//! An SSTable holds a sorted run of keys partitioned into fixed-size blocks
//! (default 4 pages = 16 KiB, the RocksDB-ish block size whose multi-page
//! reads interact with kernel readahead — see `kernel_sim::readahead`).
//! The block *index* is resident (as RocksDB pins index blocks), so a point
//! read costs exactly one block read; scans walk blocks in order.

use kernel_sim::{FileId, IoResult, Sim};

/// Pages per data block.
pub const BLOCK_PAGES: u64 = 4;

/// A blocked Bloom filter over the table's keys (RocksDB enables one per
/// table by default): ~10 bits/key, k=7 probes, giving ≈1% false positives.
/// Point lookups for absent keys skip the block read with 99% probability —
/// the read-amplification saver that makes L0 stacks tolerable.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
}

impl BloomFilter {
    const BITS_PER_KEY: usize = 10;
    const PROBES: u32 = 7;

    /// Builds a filter sized for `keys`.
    pub fn build(keys: &[u64]) -> BloomFilter {
        let num_bits = (keys.len() * Self::BITS_PER_KEY).max(64) as u64;
        let mut filter = BloomFilter {
            bits: vec![0; num_bits.div_ceil(64) as usize],
            num_bits,
        };
        for &k in keys {
            let (mut h1, h2) = Self::hashes(k);
            for _ in 0..Self::PROBES {
                let bit = h1 % filter.num_bits;
                filter.bits[(bit / 64) as usize] |= 1 << (bit % 64);
                h1 = h1.wrapping_add(h2);
            }
        }
        filter
    }

    /// Whether `key` may be present (false ⇒ definitely absent).
    pub fn may_contain(&self, key: u64) -> bool {
        let (mut h1, h2) = Self::hashes(key);
        for _ in 0..Self::PROBES {
            let bit = h1 % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
            h1 = h1.wrapping_add(h2);
        }
        true
    }

    /// Filter memory in bytes (resident, like RocksDB's cached filters).
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Double hashing: two independent 64-bit mixes of the key.
    fn hashes(key: u64) -> (u64, u64) {
        let mut h = key.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        let h2 = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31) | 1; // odd increment ⇒ full-period probing
        (h, h2)
    }
}

/// A single immutable sorted table.
#[derive(Debug, Clone)]
pub struct SsTable {
    /// Backing simulated file.
    file: FileId,
    /// Sorted keys, grouped into blocks of `entries_per_block`.
    keys: Vec<u64>,
    /// Entries per block (how many keys share one block read).
    entries_per_block: usize,
    /// Total pages occupied (for compaction read costing).
    pages: u64,
    /// Per-table Bloom filter (resident, like RocksDB's filter blocks).
    bloom: BloomFilter,
}

impl SsTable {
    /// Builds a table from a sorted, deduplicated run of keys, charging the
    /// simulator for writing every page sequentially. On an injected device
    /// error the build fails *before* the table exists: the caller keeps
    /// its in-memory data and may retry (the partially-written file is
    /// abandoned, like an aborted `.sst` creation).
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty or not strictly ascending.
    pub fn build(sim: &mut Sim, keys: Vec<u64>, entries_per_block: usize) -> IoResult<SsTable> {
        assert!(!keys.is_empty(), "sstable must hold at least one key");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "sstable keys must be strictly ascending"
        );
        let blocks = keys.len().div_ceil(entries_per_block) as u64;
        let pages = blocks * BLOCK_PAGES;
        let file = sim.create_file(pages);
        // Sequential flush of the whole table.
        let mut page = 0;
        while page < pages {
            let chunk = (pages - page).min(32);
            sim.write(file, page, chunk)?;
            page += chunk;
        }
        sim.sync()?; // flush: table data must be durable before serving reads
        let bloom = BloomFilter::build(&keys);
        Ok(SsTable {
            file,
            keys,
            entries_per_block,
            pages,
            bloom,
        })
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table is empty (never true for built tables).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Smallest key.
    pub fn min_key(&self) -> u64 {
        self.keys[0]
    }

    /// Largest key.
    pub fn max_key(&self) -> u64 {
        *self.keys.last().expect("non-empty")
    }

    /// Pages occupied on the simulated device.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// The sorted keys (for merges).
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Point lookup: returns whether the key exists, charging one block
    /// read if the key is within range and passes the Bloom filter. The
    /// block read may fail under an injected fault plan.
    pub fn get(&self, sim: &mut Sim, key: u64) -> IoResult<bool> {
        if key < self.min_key() || key > self.max_key() {
            return Ok(false); // index says "not here": no I/O
        }
        if !self.bloom.may_contain(key) {
            return Ok(false); // filter says "definitely not here": no I/O
        }
        let idx = match self.keys.binary_search(&key) {
            Ok(i) => i,
            Err(i) => {
                // Bloom false positive (~1%): the block read is still paid
                // before absence is known, exactly like RocksDB.
                let block = (i.min(self.keys.len() - 1) / self.entries_per_block) as u64;
                sim.read(self.file, block * BLOCK_PAGES, BLOCK_PAGES)?;
                return Ok(false);
            }
        };
        let block = (idx / self.entries_per_block) as u64;
        sim.read(self.file, block * BLOCK_PAGES, BLOCK_PAGES)?;
        Ok(true)
    }

    /// Resident filter memory in bytes.
    pub fn bloom_bytes(&self) -> usize {
        self.bloom.memory_bytes()
    }

    /// Charges the I/O of scanning keys `[from_idx, to_idx)` in order
    /// (forward if `from_idx < to_idx` block-wise, used by iterators).
    pub fn read_block_of(&self, sim: &mut Sim, key_idx: usize) -> IoResult<()> {
        let block = (key_idx / self.entries_per_block) as u64;
        sim.read(self.file, block * BLOCK_PAGES, BLOCK_PAGES)?;
        Ok(())
    }

    /// Charges a full sequential read of the table (compaction input).
    pub fn read_all(&self, sim: &mut Sim) -> IoResult<()> {
        let mut page = 0;
        while page < self.pages {
            let chunk = (self.pages - page).min(BLOCK_PAGES);
            sim.read(self.file, page, chunk)?;
            page += chunk;
        }
        Ok(())
    }

    /// Index of the first key ≥ `key`.
    pub fn lower_bound(&self, key: u64) -> usize {
        self.keys.partition_point(|&k| k < key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::{DeviceProfile, SimConfig};

    fn sim() -> Sim {
        Sim::new(SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 4096,
            ..SimConfig::default()
        })
    }

    fn table(sim: &mut Sim, keys: Vec<u64>) -> SsTable {
        SsTable::build(sim, keys, 40).unwrap()
    }

    #[test]
    fn build_charges_sequential_writes() {
        let mut s = sim();
        let t = table(&mut s, (0..1000).map(|k| k * 2).collect());
        assert_eq!(t.len(), 1000);
        // 1000 keys / 40 per block = 25 blocks = 100 pages.
        assert_eq!(t.pages(), 100);
        assert!(s.stats().device.pages_written >= 100);
    }

    #[test]
    fn get_finds_present_and_rejects_absent() {
        let mut s = sim();
        let t = table(&mut s, (0..1000).map(|k| k * 2).collect());
        assert!(t.get(&mut s, 500).unwrap()); // even: present
        assert!(!t.get(&mut s, 501).unwrap()); // odd: absent
        assert!(!t.get(&mut s, 5000).unwrap()); // out of range: no I/O needed
    }

    #[test]
    fn bloom_filter_has_no_false_negatives_and_few_false_positives() {
        let keys: Vec<u64> = (0..10_000).map(|k| k * 3).collect();
        let bloom = BloomFilter::build(&keys);
        for &k in &keys {
            assert!(bloom.may_contain(k), "false negative for {k}");
        }
        let false_positives = (0..10_000u64)
            .map(|k| k * 3 + 1) // definitely absent
            .filter(|&k| bloom.may_contain(k))
            .count();
        let rate = false_positives as f64 / 10_000.0;
        assert!(rate < 0.03, "false-positive rate {rate}");
        // ~10 bits/key.
        assert!(bloom.memory_bytes() < 10_000 * 2);
    }

    #[test]
    fn bloom_skips_io_for_most_absent_in_range_keys() {
        let mut s = sim();
        let t = table(&mut s, (0..10_000).map(|k| k * 2).collect());
        s.reset_stats();
        let mut io_paid = 0;
        for k in (0..2_000u64).map(|k| k * 2 + 1) {
            let before = s.stats().logical_reads;
            assert!(!t.get(&mut s, k).unwrap());
            if s.stats().logical_reads > before {
                io_paid += 1;
            }
        }
        // Only Bloom false positives (~1%) pay the block read.
        assert!(io_paid < 100, "absent-key lookups paid I/O {io_paid} times");
    }

    #[test]
    fn out_of_range_get_does_no_io() {
        let mut s = sim();
        let t = table(&mut s, vec![10, 20, 30]);
        let before = s.stats().device.read_requests;
        assert!(!t.get(&mut s, 5).unwrap());
        assert!(!t.get(&mut s, 100).unwrap());
        assert_eq!(s.stats().device.read_requests, before);
    }

    #[test]
    fn point_read_touches_one_block() {
        let mut s = sim();
        let t = table(&mut s, (0..10_000).collect());
        s.drop_caches().unwrap();
        s.reset_stats();
        t.get(&mut s, 5_000).unwrap();
        let stats = s.stats();
        // One block = 4 pages demanded (readahead may add more).
        assert!(stats.cache.misses >= 1);
        assert!(stats.device.read_requests >= 1);
    }

    #[test]
    fn lower_bound_semantics() {
        let mut s = sim();
        let t = table(&mut s, vec![10, 20, 30]);
        assert_eq!(t.lower_bound(5), 0);
        assert_eq!(t.lower_bound(10), 0);
        assert_eq!(t.lower_bound(11), 1);
        assert_eq!(t.lower_bound(31), 3);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_keys_panic() {
        let mut s = sim();
        let _ = SsTable::build(&mut s, vec![3, 1, 2], 40);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_keys_panic() {
        let mut s = sim();
        let _ = SsTable::build(&mut s, vec![], 40);
    }
}
