//! db_bench-style workload driver (paper §4).
//!
//! Implements the six workloads of Table 2 — `readseq`, `readrandom`,
//! `readreverse`, `readrandomwriterandom`, `updaterandom`, and `mixgraph`
//! (the Zipfian mixed workload of Cao et al., FAST '20) — against a [`Db`]
//! running on a [`kernel_sim::Sim`]. Throughput is ops per *simulated*
//! second, so runs are deterministic given a seed.
//!
//! The driver invokes a caller-supplied hook after every operation; the
//! readahead crate's closed loop uses it to run KML's once-a-second
//! inference and retuning against the advancing simulated clock.

use crate::db::{Db, DbConfig};
use kernel_sim::{IoResult, Sim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

/// The six benchmark workloads of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Forward iteration over the whole keyspace.
    ReadSeq,
    /// Uniform-random point reads.
    ReadRandom,
    /// Backward iteration.
    ReadReverse,
    /// 90% random reads / 10% random writes (db_bench default mix).
    ReadRandomWriteRandom,
    /// Random read-modify-write.
    UpdateRandom,
    /// Zipfian mixed get/put/seek workload modeled on Facebook traces.
    MixGraph,
}

impl Workload {
    /// All six, in the paper's Table 2 order.
    pub fn all() -> [Workload; 6] {
        [
            Workload::ReadSeq,
            Workload::ReadRandom,
            Workload::ReadReverse,
            Workload::ReadRandomWriteRandom,
            Workload::UpdateRandom,
            Workload::MixGraph,
        ]
    }

    /// The four workloads the paper trains on (chosen for diversity in
    /// sequentiality vs. randomness); the other two are never-seen tests.
    pub fn training_set() -> [Workload; 4] {
        [
            Workload::ReadRandom,
            Workload::ReadSeq,
            Workload::ReadReverse,
            Workload::ReadRandomWriteRandom,
        ]
    }

    /// db_bench-style name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ReadSeq => "readseq",
            Workload::ReadRandom => "readrandom",
            Workload::ReadReverse => "readreverse",
            Workload::ReadRandomWriteRandom => "readrandomwriterandom",
            Workload::UpdateRandom => "updaterandom",
            Workload::MixGraph => "mixgraph",
        }
    }

    /// Parses a db_bench-style name.
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::all().into_iter().find(|w| w.name() == name)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the benchmark database is populated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillMode {
    /// `put` every key through the full write path (WAL, flush, compact).
    WritePath,
    /// Bulk-load one compacted run (fast setup for readahead studies).
    Bulk,
}

/// Parameters of one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Which workload to run.
    pub workload: Workload,
    /// Number of distinct keys in the database.
    pub num_keys: u64,
    /// Operations to execute (keys visited, for the scan workloads).
    pub ops: u64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Keys per seek burst in `mixgraph`.
    pub scan_burst: usize,
    /// Zipf exponent for `mixgraph` key popularity.
    pub zipf_exponent: f64,
}

impl WorkloadConfig {
    /// A sensible default configuration for `workload`.
    pub fn new(workload: Workload) -> Self {
        WorkloadConfig {
            workload,
            num_keys: 1 << 20,
            ops: 20_000,
            seed: 0xDB,
            scan_burst: 50,
            zipf_exponent: 0.99,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadReport {
    /// Operations executed.
    pub ops: u64,
    /// Simulated time consumed, ns.
    pub sim_ns: u64,
    /// Throughput in operations per simulated second.
    pub ops_per_sec: f64,
    /// Operations that hit an injected I/O error (always 0 without a fault
    /// plan). Failed operations still count toward `ops`.
    pub io_errors: u64,
}

/// Creates and populates a database with keys `0..num_keys`. Fails only
/// under an injected fault plan (fill is usually run fault-free).
pub fn fill_db(sim: &mut Sim, cfg: &WorkloadConfig, mode: FillMode) -> IoResult<Db> {
    let mut db = Db::create(sim, DbConfig::default());
    match mode {
        FillMode::Bulk => {
            db.bulk_load(sim, (0..cfg.num_keys).collect())?;
        }
        FillMode::WritePath => {
            for k in 0..cfg.num_keys {
                db.put(sim, k)?;
            }
            db.flush(sim)?;
            db.compact(sim)?;
        }
    }
    Ok(db)
}

/// Runs a workload to completion, invoking `on_op` (with the simulator,
/// for clock inspection and readahead retuning) after every operation.
/// Returns the throughput report.
///
/// Operations that hit an injected I/O error do not abort the run: the
/// error is counted in [`WorkloadReport::io_errors`], the operation counts
/// as executed, and the workload continues — the graceful-degradation
/// behavior a benchmark driver needs under device faults.
pub fn run_workload(
    sim: &mut Sim,
    db: &mut Db,
    cfg: &WorkloadConfig,
    mut on_op: impl FnMut(&mut Sim),
) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let start_ns = sim.now_ns();
    let mut ops = 0u64;
    let mut io_errors = 0u64;
    // Per-op latency in *simulated* ns, labeled by workload — deterministic,
    // and a no-op handle unless the sim has a telemetry registry attached.
    let op_latency_ns = sim
        .telemetry()
        .histogram(&format!("kvstore.{}.op_latency_ns", cfg.workload.name()));
    let mut last_op_start = start_ns;
    let zipf = Zipf::new(cfg.num_keys, cfg.zipf_exponent)
        .expect("num_keys >= 1 and exponent > 0 hold by construction");
    // Spread Zipf ranks over the keyspace so popularity is not co-located
    // with key order (Facebook traces show scattered hot keys).
    let spread = |rank: u64, n: u64| (rank.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % n;

    let mut cursor = 0u64;
    while ops < cfg.ops {
        match cfg.workload {
            Workload::ReadSeq => {
                let burst = 40.min(cfg.ops - ops) as usize;
                let visited = match db.scan(sim, cursor, burst) {
                    Ok(v) => v,
                    Err(_) => {
                        // Count the failed burst as one op and advance the
                        // cursor so an always-failing scan cannot loop
                        // forever on the same position.
                        io_errors += 1;
                        cursor += 1;
                        ops += 1;
                        0
                    }
                };
                if visited == 0 {
                    if cursor >= cfg.num_keys {
                        cursor = 0; // wrapped past the end: restart the scan
                    }
                    continue;
                }
                cursor += visited as u64;
                ops += visited as u64;
            }
            Workload::ReadReverse => {
                let burst = 40.min(cfg.ops - ops) as usize;
                let from = if cursor == 0 {
                    cfg.num_keys - 1
                } else {
                    cursor
                };
                let visited = match db.scan_reverse(sim, from, burst) {
                    Ok(v) => v,
                    Err(_) => {
                        io_errors += 1;
                        0
                    }
                };
                if visited == 0 || from < visited as u64 {
                    cursor = cfg.num_keys - 1;
                } else {
                    cursor = from - visited as u64;
                }
                ops += visited.max(1) as u64;
            }
            Workload::ReadRandom => {
                let k = rng.gen_range(0..cfg.num_keys);
                if db.get(sim, k).is_err() {
                    io_errors += 1;
                }
                ops += 1;
            }
            Workload::ReadRandomWriteRandom => {
                if rng.gen_range(0..100) < 90 {
                    let k = rng.gen_range(0..cfg.num_keys);
                    if db.get(sim, k).is_err() {
                        io_errors += 1;
                    }
                } else {
                    let k = rng.gen_range(0..cfg.num_keys);
                    if db.put(sim, k).is_err() {
                        io_errors += 1;
                    }
                }
                ops += 1;
            }
            Workload::UpdateRandom => {
                let k = rng.gen_range(0..cfg.num_keys);
                if db.get(sim, k).is_err() {
                    io_errors += 1;
                }
                if db.put(sim, k).is_err() {
                    io_errors += 1;
                }
                ops += 1;
            }
            Workload::MixGraph => {
                let rank = zipf.sample(&mut rng) as u64;
                let k = spread(rank.saturating_sub(1), cfg.num_keys);
                let dice = rng.gen_range(0..100);
                let failed = if dice < 85 {
                    db.get(sim, k).is_err()
                } else if dice < 99 {
                    db.put(sim, k).is_err()
                } else {
                    db.scan(sim, k, cfg.scan_burst).is_err()
                };
                if failed {
                    io_errors += 1;
                }
                ops += 1;
            }
        }
        // One loop iteration = one logical operation (scan bursts count as
        // one multi-key op here; `ops` still counts keys visited).
        let now = sim.now_ns();
        op_latency_ns.record(now - last_op_start);
        last_op_start = now;
        on_op(sim);
    }
    let sim_ns = sim.now_ns() - start_ns;
    WorkloadReport {
        ops,
        sim_ns,
        ops_per_sec: if sim_ns == 0 {
            0.0
        } else {
            ops as f64 * 1e9 / sim_ns as f64
        },
        io_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::{DeviceProfile, SimConfig};

    fn sim(device: DeviceProfile) -> Sim {
        Sim::new(SimConfig {
            device,
            cache_pages: 4096,
            ..SimConfig::default()
        })
    }

    fn quick_cfg(w: Workload) -> WorkloadConfig {
        WorkloadConfig {
            num_keys: 1 << 16,
            ops: 2_000,
            ..WorkloadConfig::new(w)
        }
    }

    #[test]
    fn names_round_trip() {
        for w in Workload::all() {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("nosuch"), None);
    }

    #[test]
    fn training_set_is_a_strict_subset() {
        let all = Workload::all();
        for w in Workload::training_set() {
            assert!(all.contains(&w));
        }
        assert!(!Workload::training_set().contains(&Workload::MixGraph));
        assert!(!Workload::training_set().contains(&Workload::UpdateRandom));
    }

    #[test]
    fn every_workload_completes_and_reports_positive_throughput() {
        for w in Workload::all() {
            let mut s = sim(DeviceProfile::nvme());
            let cfg = quick_cfg(w);
            let mut db = fill_db(&mut s, &cfg, FillMode::Bulk).unwrap();
            s.drop_caches().unwrap();
            let report = run_workload(&mut s, &mut db, &cfg, |_| {});
            assert!(report.ops >= cfg.ops, "{w}: only {} ops", report.ops);
            assert!(report.ops_per_sec > 0.0, "{w}: zero throughput");
        }
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let run = || {
            let mut s = sim(DeviceProfile::sata_ssd());
            let cfg = quick_cfg(Workload::MixGraph);
            let mut db = fill_db(&mut s, &cfg, FillMode::Bulk).unwrap();
            s.drop_caches().unwrap();
            run_workload(&mut s, &mut db, &cfg, |_| {})
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn readseq_is_much_faster_than_readrandom() {
        let throughput = |w| {
            let mut s = sim(DeviceProfile::sata_ssd());
            let cfg = quick_cfg(w);
            let mut db = fill_db(&mut s, &cfg, FillMode::Bulk).unwrap();
            s.drop_caches().unwrap();
            run_workload(&mut s, &mut db, &cfg, |_| {}).ops_per_sec
        };
        let seq = throughput(Workload::ReadSeq);
        let random = throughput(Workload::ReadRandom);
        assert!(
            seq > 5.0 * random,
            "seq {seq:.0} should dwarf random {random:.0}"
        );
    }

    #[test]
    fn on_op_hook_fires_per_operation() {
        let mut s = sim(DeviceProfile::nvme());
        let cfg = quick_cfg(Workload::ReadRandom);
        let mut db = fill_db(&mut s, &cfg, FillMode::Bulk).unwrap();
        let mut calls = 0u64;
        run_workload(&mut s, &mut db, &cfg, |_| calls += 1);
        assert_eq!(calls, cfg.ops);
    }

    #[test]
    fn mixgraph_concentrates_on_hot_keys() {
        // Zipf(0.99): a small set of hot keys dominates accesses —
        // verified indirectly: cache hit ratio far above uniform random.
        let hit_ratio = |w| {
            let mut s = sim(DeviceProfile::nvme());
            let cfg = WorkloadConfig {
                num_keys: 1 << 18,
                ops: 12_000,
                ..WorkloadConfig::new(w)
            };
            let mut db = fill_db(&mut s, &cfg, FillMode::Bulk).unwrap();
            s.drop_caches().unwrap();
            s.reset_stats();
            run_workload(&mut s, &mut db, &cfg, |_| {});
            let st = s.stats().cache;
            st.hits as f64 / (st.hits + st.misses) as f64
        };
        let zipf = hit_ratio(Workload::MixGraph);
        let uniform = hit_ratio(Workload::ReadRandom);
        // The within-block hits (3 per 4-page block read) put both ratios
        // near 0.75; the Zipfian hot set adds real cache reuse on top.
        assert!(
            zipf > uniform + 0.01,
            "mixgraph hit ratio {zipf:.3} vs uniform {uniform:.3}"
        );
    }

    #[test]
    fn op_latency_recorded_per_workload_in_simulated_ns() {
        use kml_telemetry::Registry;
        let reg = Registry::new();
        let mut s = sim(DeviceProfile::nvme());
        s.attach_telemetry(&reg);
        let cfg = quick_cfg(Workload::ReadRandom);
        let mut db = fill_db(&mut s, &cfg, FillMode::Bulk).unwrap();
        s.drop_caches().unwrap();
        let report = run_workload(&mut s, &mut db, &cfg, |_| {});
        if reg.is_enabled() {
            let snap = reg.snapshot();
            let h = snap.histogram("kvstore.readrandom.op_latency_ns").unwrap();
            assert_eq!(h.count, cfg.ops);
            // Latencies sum to the whole run's simulated time.
            assert_eq!(h.sum, report.sim_ns);
            assert!(h.p50 > 0);
        }
    }

    #[test]
    fn write_path_fill_exercises_flush_and_compaction() {
        let mut s = sim(DeviceProfile::nvme());
        let cfg = WorkloadConfig {
            num_keys: 40_000,
            ..WorkloadConfig::new(Workload::ReadRandom)
        };
        let db = fill_db(&mut s, &cfg, FillMode::WritePath).unwrap();
        assert!(db.stats().flushes > 0);
        assert!(db.stats().compactions > 0);
        assert_eq!(db.approximate_len(), 40_000);
    }
}
