//! # kvstore — an LSM key-value store over the simulated storage stack
//!
//! The paper drives its readahead evaluation with RocksDB `db_bench`
//! workloads. This crate is the RocksDB stand-in (DESIGN.md §1): a
//! log-structured merge store whose read paths generate the same *access
//! pattern classes* the KML readahead model classifies —
//!
//! - point reads touching random 16 KiB blocks (`readrandom`),
//! - forward scans streaming blocks sequentially (`readseq`),
//! - backward scans (`readreverse`),
//! - mixed read/write traffic with WAL appends, memtable flushes, and
//!   compaction streams (`readrandomwriterandom`, `updaterandom`),
//! - a Zipfian mixed-operation workload modeled on Facebook's `mixgraph`
//!   (`mixgraph`).
//!
//! Key/value *contents* live in host memory (we are simulating I/O cost,
//! not durability); every page the real store would touch is charged to the
//! [`kernel_sim::Sim`] clock, so readahead tuning changes throughput the
//! same way it does under RocksDB.
//!
//! ## Example
//!
//! ```
//! use kernel_sim::{DeviceProfile, Sim, SimConfig};
//! use kvstore::{Db, DbConfig};
//!
//! let mut sim = Sim::new(SimConfig { device: DeviceProfile::nvme(), ..SimConfig::default() });
//! let mut db = Db::create(&mut sim, DbConfig::default());
//! for k in 0..10_000u64 {
//!     db.put(&mut sim, k).unwrap();
//! }
//! db.flush(&mut sim).unwrap();
//! assert!(db.get(&mut sim, 1234).unwrap());
//! assert!(!db.get(&mut sim, 999_999).unwrap());
//! ```
//!
//! Store operations return [`kernel_sim::IoResult`]: infallible without a
//! fault plan (the `.unwrap()`s above), fallible with graceful degradation
//! under the deterministic-simulation fault layer.

pub mod db;
pub mod sstable;
pub mod workload;

pub use db::{Db, DbConfig, DbStats};
pub use workload::{fill_db, run_workload, FillMode, Workload, WorkloadConfig, WorkloadReport};
