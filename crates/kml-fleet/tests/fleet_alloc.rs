//! Steady-state allocation accounting for the fleet serving tick.
//!
//! The pipelined fleet reuses every per-round buffer — staging queues,
//! slot scratch, response vectors, per-slot feature batches and model
//! replicas — so after warm-up a serving tick must perform **zero** heap
//! allocations, in both the serial batched path and the pool fan-out
//! path. This test installs [`CountingSystemAlloc`] as its binary's
//! global allocator and pins that property with the *process-wide*
//! counters, which see pool-worker allocations too (the per-thread
//! counters that `zero_alloc.rs` uses would miss them).
//!
//! Lives in its own integration-test binary with a single `#[test]` so
//! no sibling test thread perturbs the process-wide counters.

use kml_fleet::server::{
    FleetModels, InferRequest, InferenceServer, ModelKind, ServeOptions, MAX_FEATURES,
};
use kml_platform::alloc::CountingSystemAlloc;

#[global_allocator]
static ALLOC: CountingSystemAlloc = CountingSystemAlloc;

fn req(tenant_id: u64, kind: ModelKind, seed: u64) -> InferRequest {
    let dim = match kind {
        ModelKind::Iosched => 4,
        _ => 5,
    };
    let mut features = [0.0; MAX_FEATURES];
    for (i, f) in features.iter_mut().enumerate().take(dim) {
        *f = ((seed.wrapping_mul(0x9E37_79B9) >> (i * 7)) & 0xFF) as f64 / 16.0;
    }
    InferRequest {
        tenant_id,
        kind,
        features,
        dim,
    }
}

fn mixed_requests(n: u64) -> Vec<InferRequest> {
    (0..n)
        .map(|t| {
            let kind = ModelKind::ALL[(t % 3) as usize];
            req(t, kind, t * 31 + 7)
        })
        .collect()
}

fn steady_ticks_allocate_nothing(options: ServeOptions, label: &str) {
    let mut server = InferenceServer::new(FleetModels::untrained(0xA110C).unwrap(), options);
    // Replica warm-up makes every slot's clone and scratch growth happen
    // now, whichever slots the scheduler picks during the measured ticks.
    server.warm_replicas().unwrap();
    let requests = mixed_requests(120);
    let mut responses = Vec::new();
    // Warm ticks: size the staging groups, chunk plan, class buffer, the
    // response vector, and the stats map's batch-size entries.
    for _ in 0..5 {
        server.serve_into(&requests, &mut responses).unwrap();
    }

    let allocs_before = CountingSystemAlloc::process_allocations();
    let frees_before = CountingSystemAlloc::process_frees();
    for _ in 0..50 {
        server.serve_into(&requests, &mut responses).unwrap();
        assert_eq!(responses.len(), requests.len());
    }
    let allocs = CountingSystemAlloc::process_allocations() - allocs_before;
    let frees = CountingSystemAlloc::process_frees() - frees_before;
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "{label}: steady-state serving ticks must not touch the heap"
    );
}

#[test]
fn steady_state_serving_ticks_allocate_nothing() {
    // The serial batched tick (the single-worker fleet's serving phase).
    steady_ticks_allocate_nothing(
        ServeOptions {
            max_batch: 16,
            workers: 1,
            ..ServeOptions::default()
        },
        "serial batched tick",
    );
    // The pool fan-out tick (the multi-worker fleet's serving phase):
    // chunks run on pool workers against per-slot replicas, so this also
    // proves the dispatch protocol itself is allocation-free.
    steady_ticks_allocate_nothing(
        ServeOptions {
            max_batch: 16,
            workers: 4,
            ..ServeOptions::default()
        },
        "pool fan-out tick",
    );
}
