//! The shared model-inference server.
//!
//! Every tenant's tuner runs the same §3.3 loop, but in a fleet the
//! inference step is the part worth centralizing: one window's feature
//! vector is a single row, and the blocked-GEMM forward pass amortizes
//! beautifully over row-stacked batches (one `B × features` matmul per
//! layer instead of `B` single-row passes). The server coalesces the
//! pending windows of a whole serving tick into per-model batches, runs
//! each batch through [`kml_core::model::Model::predict_batch_into`], and
//! routes every class back to the tenant that submitted the window.
//!
//! Batching changes *when* arithmetic happens, never *what* it computes:
//! `tests/batch_parity.rs` in `kml-core` proves the batched forward is
//! bit-identical to serial single-row inference, and the server's
//! [`ServeOptions::verify_parity`] mode re-derives every batched class
//! with a serial `predict` call and panics on any divergence (the DST
//! fleet scenario runs with it on).

use std::collections::BTreeMap;
use std::sync::Mutex;

use kml_collect::FeatureBatch;
use kml_core::model::Model;
use kml_core::{KmlError, Result};
use kml_lifecycle::{Generational, Pinned, ShadowStats};
use kml_platform::threading;

/// Which of the fleet's shared models a request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelKind {
    /// The readahead workload classifier (5 features → 4 classes).
    Readahead,
    /// The I/O-scheduler traffic classifier (4 features → 2 classes).
    Iosched,
    /// The NFS rsize link classifier (5 features → 2 classes).
    Netfs,
}

impl ModelKind {
    /// All kinds, in the fixed batching order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Readahead, ModelKind::Iosched, ModelKind::Netfs];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Readahead => "readahead",
            ModelKind::Iosched => "iosched",
            ModelKind::Netfs => "netfs",
        }
    }

    /// Stable index into per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            ModelKind::Readahead => 0,
            ModelKind::Iosched => 1,
            ModelKind::Netfs => 2,
        }
    }

    /// The `.kmlm` artifact kind serving this lane — what a lifecycle
    /// install/stage against the fleet server verifies bytes as.
    pub fn artifact_kind(self) -> kml_lifecycle::ArtifactKind {
        match self {
            ModelKind::Readahead => kml_lifecycle::ArtifactKind::Readahead,
            ModelKind::Iosched => kml_lifecycle::ArtifactKind::Iosched,
            ModelKind::Netfs => kml_lifecycle::ArtifactKind::NetfsRsize,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Upper bound on per-window feature dimensionality across the fleet's
/// tuners (readahead and netfs use 5, iosched 4) — lets a request hold its
/// features inline instead of heap-allocating per window.
pub const MAX_FEATURES: usize = 5;

/// One pending tenant window awaiting a class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferRequest {
    /// The submitting tenant (globally unique across the fleet).
    pub tenant_id: u64,
    /// Which shared model serves this tenant.
    pub kind: ModelKind,
    /// The window's feature vector, inline (first `dim` entries valid).
    pub features: [f64; MAX_FEATURES],
    /// Valid feature count.
    pub dim: usize,
}

impl InferRequest {
    /// The valid feature slice.
    pub fn features(&self) -> &[f64] {
        &self.features[..self.dim]
    }
}

/// A served class, tagged with the tenant that asked for it so routing
/// mistakes are detectable (the DST fleet invariant checks the tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferResponse {
    /// The tenant the class belongs to.
    pub tenant_id: u64,
    /// The model that produced it.
    pub kind: ModelKind,
    /// Predicted class.
    pub class: usize,
}

/// The fleet's three shared classifiers.
#[derive(Debug)]
pub struct FleetModels {
    /// Readahead workload classifier.
    pub readahead: Model<f32>,
    /// I/O-scheduler traffic classifier.
    pub iosched: Model<f32>,
    /// NFS rsize link classifier.
    pub netfs: Model<f32>,
}

impl FleetModels {
    /// Cheap deterministic stand-ins with the deployed topologies but no
    /// training — decisions are arbitrary yet reproducible, which is all
    /// the serving-infrastructure tests (parity, routing, exactly-once)
    /// need. `repro fleet` swaps in the actually-trained models.
    ///
    /// # Errors
    ///
    /// Propagates model construction failures.
    pub fn untrained(seed: u64) -> Result<FleetModels> {
        use kml_core::model::ModelBuilder;
        Ok(FleetModels {
            // 5 → 15 → σ → 10 → σ → 4, the paper topology readahead deploys.
            readahead: ModelBuilder::new(readahead::NUM_FEATURES)
                .linear(15)
                .sigmoid()
                .linear(10)
                .sigmoid()
                .linear(4)
                .seed(seed ^ 0xF1EE7)
                .build::<f32>()?,
            // 4 → 10 → σ → 2, matching `SchedTuner::train_model`.
            iosched: ModelBuilder::new(iosched::tuner::NUM_SCHED_FEATURES)
                .linear(10)
                .sigmoid()
                .linear(2)
                .seed(seed ^ 0x5C4ED)
                .build::<f32>()?,
            // 5 → 10 → σ → 2, matching `train_rsize_model`.
            netfs: ModelBuilder::new(netfs::tuner::NUM_RSIZE_FEATURES)
                .linear(10)
                .sigmoid()
                .linear(2)
                .seed(seed ^ 0x4E7F5)
                .build::<f32>()?,
        })
    }

    fn model_mut(&mut self, kind: ModelKind) -> &mut Model<f32> {
        match kind {
            ModelKind::Readahead => &mut self.readahead,
            ModelKind::Iosched => &mut self.iosched,
            ModelKind::Netfs => &mut self.netfs,
        }
    }
}

/// Serving-policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Largest batch per forward pass; pending requests beyond this are
    /// split into further batches within the same tick.
    pub max_batch: usize,
    /// Serve every window with a single-row `predict` instead of batching
    /// — the baseline configuration the fleet bench compares against.
    pub serial_inference: bool,
    /// Re-derive every batched class with a serial `predict` and panic on
    /// divergence (the DST harness runs with this on).
    pub verify_parity: bool,
    /// Serve through the per-model int8 engines
    /// ([`kml_core::model::Model::enable_q8`]) instead of the exact f32
    /// forward pass. Decisions carry the engine's bounded error — the
    /// agreement gate in this crate's tests holds them to ≥ 99.5%
    /// agreement with f32 — in exchange for a much cheaper serving tick.
    /// Off by default: the DST fleet scenario and E10 artifacts pin the
    /// bit-exact f32 path.
    pub q8_serving: bool,
    /// Fan same-kind row-chunks out across the persistent worker pool
    /// (`0`/`1` serves on the calling thread). Chunk boundaries are the
    /// exact `max_batch` chunks the serial batched path uses and each
    /// chunk's classes depend only on its rows and the pinned weights, so
    /// responses and stats are bit-identical at any setting.
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_batch: 256,
            serial_inference: false,
            verify_parity: false,
            q8_serving: false,
            workers: 1,
        }
    }
}

/// Per-slot serving context for the pool fan-out. A slot is exclusive to
/// one pool participant per dispatch, so the mutex is uncontended — it
/// exists to make sharing `&InferenceServer` across workers sound.
#[derive(Debug)]
struct SlotCtx {
    /// Per-kind staging batch (indexed by `ModelKind::index`).
    batches: [FeatureBatch; 3],
    /// Per-kind inference replica, cached and keyed by the generation it
    /// was cloned from; refreshed lazily after a hot-swap.
    replicas: [Option<(u64, Model<f32>)>; 3],
    /// Class output scratch for one chunk.
    classes: Vec<usize>,
}

impl SlotCtx {
    fn new() -> Self {
        SlotCtx {
            batches: [
                FeatureBatch::new(readahead::NUM_FEATURES),
                FeatureBatch::new(iosched::tuner::NUM_SCHED_FEATURES),
                FeatureBatch::new(netfs::tuner::NUM_RSIZE_FEATURES),
            ],
            replicas: [None, None, None],
            classes: Vec::new(),
        }
    }
}

/// One planned forward pass of a serving tick: a `max_batch`-bounded run
/// of same-kind requests, with its output range in the tick's class
/// buffer. The plan depends only on the request stream, never on worker
/// scheduling.
#[derive(Debug, Clone, Copy)]
struct ChunkPlan {
    kind: ModelKind,
    /// Start within the kind's group-index array.
    gstart: u32,
    /// Row count.
    len: u32,
    /// Start of this chunk's classes in the tick's class buffer.
    ostart: u32,
}

/// Raw shared view of the tick's class buffer. Chunks write disjoint
/// `[ostart, ostart + len)` ranges (the plan partitions the buffer), so
/// concurrent writers never alias; the pool's epoch hand-off provides the
/// happens-before edge back to the dispatcher.
struct SharedClasses(*mut usize);

// SAFETY: disjoint-range writes only; see type docs.
unsafe impl Send for SharedClasses {}
unsafe impl Sync for SharedClasses {}

impl SharedClasses {
    /// # Safety
    ///
    /// `start..start + classes.len()` must be in bounds and disjoint from
    /// every concurrent writer's range.
    unsafe fn write(&self, start: usize, classes: &[usize]) {
        std::ptr::copy_nonoverlapping(classes.as_ptr(), self.0.add(start), classes.len());
    }
}

/// Cumulative serving statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Windows served.
    pub requests: u64,
    /// Forward passes executed (batched or single-row).
    pub forward_passes: u64,
    /// Batch-size distribution: `size → number of batches of that size`.
    pub batch_sizes: BTreeMap<usize, u64>,
}

/// The shared batched-inference server.
///
/// Each model kind lives in its own generation-tagged swap cell
/// ([`Generational`]): a serving tick pins every kind once at entry, so
/// all batches within the tick — including split `max_batch` chunks —
/// are answered by one coherent generation even if a hot-swap lands
/// mid-tick. [`InferenceServer::swap_model`] installs a new generation
/// for *future* ticks without waiting for in-flight work, and an optional
/// per-kind shadow lane evaluates a candidate on live batches without
/// ever affecting responses.
#[derive(Debug)]
pub struct InferenceServer {
    /// Per-kind generational swap cells (indexed by `ModelKind::index`).
    cells: [Generational<Model<f32>>; 3],
    /// Per-kind shadow candidates: infer on every served batch, never
    /// answer (indexed by `ModelKind::index`).
    shadows: [Option<Model<f32>>; 3],
    shadow_stats: [ShadowStats; 3],
    options: ServeOptions,
    stats: ServerStats,
    // Reused per-kind staging buffers so steady-state serving allocates
    // nothing (indexed by `ModelKind::index`).
    batches: [FeatureBatch; 3],
    classes: Vec<usize>,
    shadow_classes: Vec<usize>,
    /// Reused per-kind request-index groups (indexed by `ModelKind::index`).
    groups: [Vec<u32>; 3],
    /// Reused chunk plan for the parallel fan-out.
    chunk_plan: Vec<ChunkPlan>,
    /// Reused tick-wide class buffer the parallel chunks scatter into.
    class_buf: Vec<usize>,
    /// Per-slot contexts for the pool fan-out (slot 0 = the caller); a
    /// single slot when serving stays on the calling thread.
    slots: Vec<Mutex<SlotCtx>>,
}

impl InferenceServer {
    /// Creates a server over the shared models (each installed as
    /// generation 1 of its kind).
    ///
    /// # Panics
    ///
    /// With [`ServeOptions::q8_serving`] on, panics if any fleet model is
    /// not a quantizable linear/sigmoid/relu chain (the deployed
    /// topologies all are — hitting this means a deployment bug).
    pub fn new(mut models: FleetModels, options: ServeOptions) -> Self {
        if options.q8_serving {
            for kind in ModelKind::ALL {
                models
                    .model_mut(kind)
                    .enable_q8()
                    .expect("fleet models are q8-compatible chains");
            }
        }
        InferenceServer {
            cells: [
                Generational::new(models.readahead),
                Generational::new(models.iosched),
                Generational::new(models.netfs),
            ],
            shadows: [None, None, None],
            shadow_stats: [ShadowStats::default(); 3],
            options,
            stats: ServerStats::default(),
            batches: [
                FeatureBatch::new(readahead::NUM_FEATURES),
                FeatureBatch::new(iosched::tuner::NUM_SCHED_FEATURES),
                FeatureBatch::new(netfs::tuner::NUM_RSIZE_FEATURES),
            ],
            classes: Vec::new(),
            shadow_classes: Vec::new(),
            groups: [Vec::new(), Vec::new(), Vec::new()],
            chunk_plan: Vec::new(),
            class_buf: Vec::new(),
            slots: {
                // One context per pool slot when fanning out; just the
                // caller's otherwise (keeps single-threaded servers from
                // waking the global pool at all).
                let n = if options.workers > 1 {
                    threading::global_pool().max_slot() + 1
                } else {
                    1
                };
                (0..n).map(|_| Mutex::new(SlotCtx::new())).collect()
            },
        }
    }

    /// Serving statistics so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The serving options in force.
    pub fn options(&self) -> ServeOptions {
        self.options
    }

    /// The generation currently serving `kind`.
    pub fn generation(&self, kind: ModelKind) -> u64 {
        self.cells[kind.index()].generation()
    }

    /// Atomically installs `model` as `kind`'s next generation and returns
    /// its tag. The swap takes effect at the next serving tick; a tick
    /// already in flight finishes on the generation it pinned at entry.
    ///
    /// # Errors
    ///
    /// With [`ServeOptions::q8_serving`] on, propagates quantization
    /// failures (the cell is untouched — the old generation keeps serving).
    pub fn swap_model(&mut self, kind: ModelKind, mut model: Model<f32>) -> Result<u64> {
        if self.options.q8_serving {
            model.enable_q8()?;
        }
        Ok(self.cells[kind.index()].publish(model))
    }

    /// Stages `model` as `kind`'s shadow candidate (replacing any previous
    /// one and resetting its stats). Shadows infer on every served batch
    /// of their kind but never answer requests.
    pub fn set_shadow(&mut self, kind: ModelKind, model: Model<f32>) {
        self.shadows[kind.index()] = Some(model);
        self.shadow_stats[kind.index()] = ShadowStats::default();
    }

    /// Discards `kind`'s shadow candidate and returns its final stats.
    pub fn clear_shadow(&mut self, kind: ModelKind) -> ShadowStats {
        self.shadows[kind.index()] = None;
        std::mem::take(&mut self.shadow_stats[kind.index()])
    }

    /// Agreement stats for `kind`'s staged shadow (zeroed when none).
    pub fn shadow_stats(&self, kind: ModelKind) -> ShadowStats {
        self.shadow_stats[kind.index()]
    }

    /// A per-kind [`kml_lifecycle::LifecycleTarget`] view of this server,
    /// so a `LifecycleController` (or the continual-learning loop on top
    /// of it) can drive `kind`'s lane from `.kmlm` bytes: installs land
    /// as explicitly tagged generations in the swap cell, stages land in
    /// the shadow lane, and the other kinds are untouched.
    pub fn lifecycle_lane(&mut self, kind: ModelKind) -> LifecycleLane<'_> {
        LifecycleLane { server: self, kind }
    }

    /// Serves one tick: answers every pending request, in order, exactly
    /// once. Requests are grouped per model kind (in [`ModelKind::ALL`]
    /// order, stable within a kind) and each group is chunked to
    /// `max_batch` rows per forward pass; the returned responses are in
    /// the same grouped order.
    ///
    /// # Errors
    ///
    /// Propagates model inference failures (dimension mismatch — a
    /// deployment bug).
    ///
    /// # Panics
    ///
    /// With [`ServeOptions::verify_parity`] on, panics if any batched
    /// class differs from its serially-derived counterpart.
    pub fn serve(&mut self, requests: &[InferRequest]) -> Result<Vec<InferResponse>> {
        let mut responses = Vec::with_capacity(requests.len());
        self.serve_into(requests, &mut responses)?;
        Ok(responses)
    }

    /// [`Self::serve`] into a caller-owned buffer (cleared first), so a
    /// steady-state serving loop reuses one response allocation across
    /// ticks. With [`ServeOptions::workers`] above 1, same-kind row-chunks
    /// fan out across the persistent worker pool onto per-slot model
    /// replicas — bit-identical to the on-thread path because the chunk
    /// plan and each chunk's arithmetic are independent of scheduling.
    ///
    /// # Errors
    ///
    /// Propagates model inference failures (dimension mismatch — a
    /// deployment bug).
    ///
    /// # Panics
    ///
    /// With [`ServeOptions::verify_parity`] on, panics if any batched
    /// class differs from its serially-derived counterpart.
    pub fn serve_into(
        &mut self,
        requests: &[InferRequest],
        responses: &mut Vec<InferResponse>,
    ) -> Result<()> {
        responses.clear();
        // Index-based grouping keeps the per-kind order identical to the
        // submission order (shard-major, tenant-minor) — the stability the
        // exactly-once accounting and the `--threads` byte-identity
        // guarantee both lean on.
        for g in &mut self.groups {
            g.clear();
        }
        for (i, r) in requests.iter().enumerate() {
            self.groups[r.kind.index()].push(i as u32);
        }
        let fan_out = !self.options.serial_inference
            && self.options.workers > 1
            && requests.len() > 1
            && threading::global_pool().threads() > 0;
        if fan_out {
            self.serve_parallel_into(requests, responses)?;
        } else {
            for kind in ModelKind::ALL {
                // Pin the kind's generation once per tick: every chunk of
                // this group — and the tick's parity re-checks — runs on
                // one coherent model even if a swap is published mid-tick.
                let pin = self.cells[kind.index()].pin();
                let group = std::mem::take(&mut self.groups[kind.index()]);
                for chunk in group.chunks(self.options.max_batch.max(1)) {
                    self.serve_chunk(kind, &pin, requests, chunk, responses)?;
                }
                self.groups[kind.index()] = group;
            }
        }
        self.stats.requests += requests.len() as u64;
        Ok(())
    }

    fn serve_chunk(
        &mut self,
        kind: ModelKind,
        pin: &Pinned<Model<f32>>,
        requests: &[InferRequest],
        chunk: &[u32],
        responses: &mut Vec<InferResponse>,
    ) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        if self.options.serial_inference {
            // Baseline mode: one single-row forward pass per window.
            for &gi in chunk {
                let req = &requests[gi as usize];
                let class = pin.with(|model| model.predict(req.features()))?;
                self.stats.forward_passes += 1;
                *self.stats.batch_sizes.entry(1).or_insert(0) += 1;
                self.observe_shadow_row(kind, req, class);
                responses.push(InferResponse {
                    tenant_id: req.tenant_id,
                    kind,
                    class,
                });
            }
            return Ok(());
        }
        let batch = &mut self.batches[kind.index()];
        batch.clear();
        for &gi in chunk {
            batch.push_row(requests[gi as usize].features());
        }
        let classes = &mut self.classes;
        pin.with(|model| model.predict_batch_into(batch.as_slice(), batch.rows(), classes))?;
        self.stats.forward_passes += 1;
        *self.stats.batch_sizes.entry(chunk.len()).or_insert(0) += 1;
        self.observe_shadow_batch(kind, chunk.len());
        for (i, &gi) in chunk.iter().enumerate() {
            let req = &requests[gi as usize];
            let class = self.classes[i];
            if self.options.verify_parity {
                let serial = pin.with(|model| model.predict(req.features()))?;
                assert_eq!(
                    serial, class,
                    "batched class diverged from serial for tenant {} ({kind})",
                    req.tenant_id
                );
            }
            if let Some(&shadow_class) = self.shadow_classes.get(i) {
                self.shadow_stats[kind.index()].record(shadow_class == class);
            }
            responses.push(InferResponse {
                tenant_id: req.tenant_id,
                kind,
                class,
            });
        }
        self.shadow_classes.clear();
        Ok(())
    }

    /// The parallel serve path: plan `max_batch` chunks over the per-kind
    /// groups (identical boundaries to the serial batched path), fan the
    /// chunks across the pool onto per-slot replicas writing disjoint
    /// ranges of the tick's class buffer, then do the deterministic
    /// bookkeeping (stats, shadow lane, parity re-checks, response
    /// assembly) serially in plan order.
    fn serve_parallel_into(
        &mut self,
        requests: &[InferRequest],
        responses: &mut Vec<InferResponse>,
    ) -> Result<()> {
        let max_batch = self.options.max_batch.max(1);
        let pins = self.pin_kinds();
        self.chunk_plan.clear();
        let mut ostart = 0u32;
        for kind in ModelKind::ALL {
            let glen = self.groups[kind.index()].len();
            let mut s = 0usize;
            while s < glen {
                let len = (glen - s).min(max_batch);
                self.chunk_plan.push(ChunkPlan {
                    kind,
                    gstart: s as u32,
                    len: len as u32,
                    ostart,
                });
                ostart += len as u32;
                s += len;
            }
        }
        self.class_buf.clear();
        self.class_buf.resize(requests.len(), 0);
        {
            let chunks = &self.chunk_plan;
            let groups = &self.groups;
            let slots = &self.slots;
            let pins_ref = &pins;
            let out = SharedClasses(self.class_buf.as_mut_ptr());
            let failure: Mutex<Option<KmlError>> = Mutex::new(None);
            threading::global_pool().run(self.options.workers, chunks.len(), |slot, ci| {
                let c = chunks[ci];
                let idx = &groups[c.kind.index()][c.gstart as usize..(c.gstart + c.len) as usize];
                let served = Self::serve_rows_on_slot(
                    slots,
                    slot,
                    &pins_ref[c.kind.index()],
                    c.kind,
                    |batch| {
                        for &gi in idx {
                            batch.push_row(requests[gi as usize].features());
                        }
                    },
                );
                match served {
                    // SAFETY: the plan partitions the class buffer; this
                    // chunk's range is disjoint from every other writer's.
                    Ok(ctx) => unsafe { out.write(c.ostart as usize, &ctx.classes) },
                    Err(e) => {
                        let mut f = failure.lock().expect("failure slot poisoned");
                        if f.is_none() {
                            *f = Some(e);
                        }
                    }
                }
            });
            if let Some(e) = failure.into_inner().expect("failure slot poisoned") {
                return Err(e);
            }
        }
        // Deterministic post-pass in plan order — identical bookkeeping to
        // the serial batched path, reading classes from the scatter buffer.
        for ci in 0..self.chunk_plan.len() {
            let c = self.chunk_plan[ci];
            let kind = c.kind;
            self.stats.forward_passes += 1;
            *self.stats.batch_sizes.entry(c.len as usize).or_insert(0) += 1;
            if self.shadows[kind.index()].is_some() {
                // Re-stage the chunk for the (single) shadow model; the
                // shadow lane is an evaluation tool, not a serving path,
                // so it stays serial.
                let batch = &mut self.batches[kind.index()];
                batch.clear();
                for j in 0..c.len as usize {
                    let gi = self.groups[kind.index()][c.gstart as usize + j] as usize;
                    batch.push_row(requests[gi].features());
                }
                self.observe_shadow_batch(kind, c.len as usize);
            } else {
                self.shadow_classes.clear();
            }
            for j in 0..c.len as usize {
                let gi = self.groups[kind.index()][c.gstart as usize + j] as usize;
                let req = &requests[gi];
                let class = self.class_buf[c.ostart as usize + j];
                if self.options.verify_parity {
                    let serial = pins[kind.index()].with(|model| model.predict(req.features()))?;
                    assert_eq!(
                        serial, class,
                        "batched class diverged from serial for tenant {} ({kind})",
                        req.tenant_id
                    );
                }
                if let Some(&shadow_class) = self.shadow_classes.get(j) {
                    self.shadow_stats[kind.index()].record(shadow_class == class);
                }
                responses.push(InferResponse {
                    tenant_id: req.tenant_id,
                    kind,
                    class,
                });
            }
            self.shadow_classes.clear();
        }
        Ok(())
    }

    /// Pins every kind's generation for one tick. Shared across pool
    /// workers (pin access is `&self`), so the whole tick — however its
    /// chunks are scheduled — answers from one coherent generation per
    /// kind.
    pub(crate) fn pin_kinds(&self) -> [Pinned<Model<f32>>; 3] {
        [
            self.cells[0].pin(),
            self.cells[1].pin(),
            self.cells[2].pin(),
        ]
    }

    /// Stages one chunk via `fill` into `slot`'s per-kind batch and runs
    /// the slot's replica (cloned from `pin`'s generation on first use or
    /// after a swap) over it. Returns the locked slot context whose
    /// `classes` holds one class per staged row. `&self` on purpose: pool
    /// workers share the server while the orchestrator owns the tick.
    fn serve_rows_on_slot<'a>(
        slots: &'a [Mutex<SlotCtx>],
        slot: usize,
        pin: &Pinned<Model<f32>>,
        kind: ModelKind,
        fill: impl FnOnce(&mut FeatureBatch),
    ) -> Result<std::sync::MutexGuard<'a, SlotCtx>> {
        let mut guard = slots[slot].lock().expect("slot ctx poisoned");
        let ctx = &mut *guard;
        let cached = &mut ctx.replicas[kind.index()];
        if cached.as_ref().is_none_or(|(g, _)| *g != pin.generation()) {
            let replica = pin.with(|m| m.try_clone_replica()).ok_or_else(|| {
                KmlError::InvalidConfig("fleet model is not worker-cloneable".into())
            })?;
            *cached = Some((pin.generation(), replica));
        }
        let (_, model) = cached.as_mut().expect("replica just ensured");
        let batch = &mut ctx.batches[kind.index()];
        batch.clear();
        fill(batch);
        model.predict_batch_into(batch.as_slice(), batch.rows(), &mut ctx.classes)?;
        Ok(guard)
    }

    /// Eagerly clones every slot's replica of every kind at the current
    /// generations and runs one full-width (`max_batch` zero rows)
    /// forward pass through each, so every slot's batch and scratch
    /// buffers reach their steady-state size up front. After warming, a
    /// tick of at most `max_batch`-row chunks allocates nothing on any
    /// worker, whichever slots the scheduler happens to pick — the
    /// property the fleet's steady-state allocation test pins.
    ///
    /// # Errors
    ///
    /// Fails if any model is not worker-cloneable or a warming forward
    /// pass fails.
    pub fn warm_replicas(&mut self) -> Result<()> {
        let pins = self.pin_kinds();
        let max_batch = self.options.max_batch.max(1);
        for slot in 0..self.slots.len() {
            for kind in ModelKind::ALL {
                let pin = &pins[kind.index()];
                let zero = vec![0.0f64; pin.with(|m| m.input_dim())];
                drop(Self::serve_rows_on_slot(
                    &self.slots,
                    slot,
                    pin,
                    kind,
                    |batch| {
                        for _ in 0..max_batch {
                            batch.push_row(&zero);
                        }
                    },
                )?);
            }
        }
        Ok(())
    }

    /// Fleet-pipeline entry: serves one contiguous run of same-kind
    /// `requests` on `slot`'s replica, appending one tagged response per
    /// request. Does **no** stats/shadow bookkeeping — the orchestrator
    /// accounts the tick deterministically via [`Self::note_batches`].
    /// With [`ServeOptions::verify_parity`] on, every class is re-derived
    /// serially against the pinned original and divergence panics.
    pub(crate) fn serve_run_on_slot(
        &self,
        slot: usize,
        pins: &[Pinned<Model<f32>>; 3],
        kind: ModelKind,
        run: &[InferRequest],
        responses: &mut Vec<InferResponse>,
    ) -> Result<()> {
        if run.is_empty() {
            return Ok(());
        }
        let pin = &pins[kind.index()];
        let ctx = Self::serve_rows_on_slot(&self.slots, slot, pin, kind, |batch| {
            for req in run {
                batch.push_row(req.features());
            }
        })?;
        for (req, &class) in run.iter().zip(&ctx.classes) {
            if self.options.verify_parity {
                let serial = pin.with(|model| model.predict(req.features()))?;
                assert_eq!(
                    serial, class,
                    "batched class diverged from serial for tenant {} ({kind})",
                    req.tenant_id
                );
            }
            responses.push(InferResponse {
                tenant_id: req.tenant_id,
                kind,
                class,
            });
        }
        Ok(())
    }

    /// Deterministic tick accounting for the fleet pipeline: `sizes` holds
    /// the row count of every forward pass the tick executed, in plan
    /// order, and `requests` the windows served. Produces exactly the
    /// stats the barriered `serve` path would have recorded.
    pub(crate) fn note_batches(&mut self, sizes: impl IntoIterator<Item = usize>, requests: u64) {
        for size in sizes {
            self.stats.forward_passes += 1;
            *self.stats.batch_sizes.entry(size).or_insert(0) += 1;
        }
        self.stats.requests += requests;
    }

    /// Whether any shadow candidate is staged (the fleet pipeline falls
    /// back to the barriered path so the shadow lane's serial bookkeeping
    /// stays exact).
    pub(crate) fn has_shadow(&self) -> bool {
        self.shadows.iter().any(Option::is_some)
    }

    /// Runs `kind`'s shadow (if staged) over the batch already staged in
    /// the kind's feature buffer, filling `shadow_classes` for the
    /// per-row agreement fold. A shadow inference failure counts as an
    /// error per row and never affects responses.
    fn observe_shadow_batch(&mut self, kind: ModelKind, rows: usize) {
        self.shadow_classes.clear();
        let Some(shadow) = &mut self.shadows[kind.index()] else {
            return;
        };
        let batch = &self.batches[kind.index()];
        if shadow
            .predict_batch_into(batch.as_slice(), batch.rows(), &mut self.shadow_classes)
            .is_err()
        {
            self.shadow_classes.clear();
            self.shadow_stats[kind.index()].errors += rows as u64;
        }
    }

    /// Serial-mode counterpart of [`Self::observe_shadow_batch`]: one
    /// shadow prediction per served row.
    fn observe_shadow_row(&mut self, kind: ModelKind, req: &InferRequest, active_class: usize) {
        let Some(shadow) = &mut self.shadows[kind.index()] else {
            return;
        };
        match shadow.predict(req.features()) {
            Ok(shadow_class) => {
                self.shadow_stats[kind.index()].record(shadow_class == active_class);
            }
            Err(_) => self.shadow_stats[kind.index()].errors += 1,
        }
    }
}

/// One model kind's lifecycle view of an [`InferenceServer`] — see
/// [`InferenceServer::lifecycle_lane`].
#[derive(Debug)]
pub struct LifecycleLane<'a> {
    server: &'a mut InferenceServer,
    kind: ModelKind,
}

impl kml_lifecycle::LifecycleTarget for LifecycleLane<'_> {
    fn install_artifact(
        &mut self,
        bytes: &[u8],
        generation: u64,
    ) -> std::result::Result<(), kml_lifecycle::ArtifactError> {
        let loaded = kml_lifecycle::load_model_for::<f32>(bytes, self.kind.artifact_kind())?;
        let mut model = loaded.model;
        if self.server.options.q8_serving && !model.q8_enabled() {
            // This lane serves quantized; a candidate without embedded
            // calibration must quantize cleanly or it cannot install.
            model
                .enable_q8()
                .map_err(|e| kml_lifecycle::ArtifactError::Model(e.to_string()))?;
        }
        self.server.cells[self.kind.index()].publish_tagged(model, generation);
        Ok(())
    }

    fn stage_shadow_artifact(
        &mut self,
        bytes: &[u8],
    ) -> std::result::Result<(), kml_lifecycle::ArtifactError> {
        let loaded = kml_lifecycle::load_model_for::<f32>(bytes, self.kind.artifact_kind())?;
        self.server.set_shadow(self.kind, loaded.model);
        Ok(())
    }

    fn clear_shadow(&mut self) {
        self.server.clear_shadow(self.kind);
    }

    fn generation(&self) -> u64 {
        self.server.generation(self.kind)
    }

    fn shadow_stats(&self) -> ShadowStats {
        self.server.shadow_stats(self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tenant_id: u64, kind: ModelKind, seed: u64) -> InferRequest {
        let dim = match kind {
            ModelKind::Iosched => 4,
            _ => 5,
        };
        let mut features = [0.0; MAX_FEATURES];
        for (i, f) in features.iter_mut().enumerate().take(dim) {
            *f = ((seed.wrapping_mul(0x9E37_79B9) >> (i * 7)) & 0xFF) as f64 / 16.0;
        }
        InferRequest {
            tenant_id,
            kind,
            features,
            dim,
        }
    }

    fn mixed_requests(n: u64) -> Vec<InferRequest> {
        (0..n)
            .map(|t| {
                let kind = ModelKind::ALL[(t % 3) as usize];
                req(t, kind, t * 31 + 7)
            })
            .collect()
    }

    #[test]
    fn batched_serving_matches_serial_serving_exactly() {
        let requests = mixed_requests(97);
        let mut batched = InferenceServer::new(
            FleetModels::untrained(11).unwrap(),
            ServeOptions {
                max_batch: 16,
                ..ServeOptions::default()
            },
        );
        let mut serial = InferenceServer::new(
            FleetModels::untrained(11).unwrap(),
            ServeOptions {
                serial_inference: true,
                ..ServeOptions::default()
            },
        );
        let a = batched.serve(&requests).unwrap();
        let b = serial.serve(&requests).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), requests.len());
        // Batched mode coalesced: far fewer forward passes than windows.
        assert!(batched.stats().forward_passes < serial.stats().forward_passes);
        assert_eq!(serial.stats().forward_passes, 97);
    }

    #[test]
    fn every_request_is_answered_exactly_once_with_its_own_tag() {
        let requests = mixed_requests(41);
        let mut server =
            InferenceServer::new(FleetModels::untrained(3).unwrap(), ServeOptions::default());
        let responses = server.serve(&requests).unwrap();
        assert_eq!(responses.len(), requests.len());
        let mut seen: Vec<u64> = responses.iter().map(|r| r.tenant_id).collect();
        seen.sort_unstable();
        let mut expect: Vec<u64> = requests.iter().map(|r| r.tenant_id).collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
        for r in &responses {
            let orig = requests
                .iter()
                .find(|q| q.tenant_id == r.tenant_id)
                .unwrap();
            assert_eq!(orig.kind, r.kind, "response routed to the wrong model");
        }
    }

    #[test]
    fn verify_parity_mode_serves_cleanly() {
        let requests = mixed_requests(64);
        let mut server = InferenceServer::new(
            FleetModels::untrained(5).unwrap(),
            ServeOptions {
                verify_parity: true,
                max_batch: 8,
                ..ServeOptions::default()
            },
        );
        let responses = server.serve(&requests).unwrap();
        assert_eq!(responses.len(), 64);
    }

    #[test]
    fn q8_serving_agrees_with_f32_on_995_per_mille() {
        // The int8 serving tier carries a bounded quantization error; the
        // fleet-level contract is that decisions still agree with the
        // exact f32 path on at least 99.5% of windows (the E10 sweep
        // shape: a large mixed request set across all three models).
        let requests = mixed_requests(4096);
        let mut exact =
            InferenceServer::new(FleetModels::untrained(11).unwrap(), ServeOptions::default());
        let mut q8 = InferenceServer::new(
            FleetModels::untrained(11).unwrap(),
            ServeOptions {
                q8_serving: true,
                ..ServeOptions::default()
            },
        );
        let a = exact.serve(&requests).unwrap();
        let b = q8.serve(&requests).unwrap();
        assert_eq!(a.len(), b.len());
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        let ratio = agree as f64 / a.len() as f64;
        assert!(
            ratio >= 0.995,
            "q8/f32 decision agreement {ratio:.4} < 0.995 ({agree}/{})",
            a.len()
        );
    }

    #[test]
    fn q8_serving_is_self_consistent_across_batching_modes() {
        // Batched q8, serial q8, and parity-armed q8 must all produce the
        // same decisions: the engine serves row-by-row either way.
        let requests = mixed_requests(257);
        let opts = [
            ServeOptions {
                q8_serving: true,
                max_batch: 16,
                ..ServeOptions::default()
            },
            ServeOptions {
                q8_serving: true,
                serial_inference: true,
                ..ServeOptions::default()
            },
            ServeOptions {
                q8_serving: true,
                verify_parity: true,
                ..ServeOptions::default()
            },
        ];
        let mut outs = Vec::new();
        for o in opts {
            let mut server = InferenceServer::new(FleetModels::untrained(7).unwrap(), o);
            outs.push(server.serve(&requests).unwrap());
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
    }

    #[test]
    fn post_swap_decisions_match_a_fresh_server_with_the_new_model() {
        let requests = mixed_requests(97);
        let mut server =
            InferenceServer::new(FleetModels::untrained(11).unwrap(), ServeOptions::default());
        assert_eq!(server.generation(ModelKind::Readahead), 1);
        let before = server.serve(&requests).unwrap();

        // Hot-swap the readahead model to a different seed's weights.
        let new_gen = server
            .swap_model(
                ModelKind::Readahead,
                FleetModels::untrained(77).unwrap().readahead,
            )
            .unwrap();
        assert_eq!(new_gen, 2);
        assert_eq!(server.generation(ModelKind::Readahead), 2);
        assert_eq!(
            server.generation(ModelKind::Iosched),
            1,
            "other kinds untouched"
        );
        let after = server.serve(&requests).unwrap();

        // Post-swap decisions are exactly what a fresh server built with
        // the swapped-in composition produces.
        let fresh_models = FleetModels {
            readahead: FleetModels::untrained(77).unwrap().readahead,
            iosched: FleetModels::untrained(11).unwrap().iosched,
            netfs: FleetModels::untrained(11).unwrap().netfs,
        };
        let mut fresh = InferenceServer::new(fresh_models, ServeOptions::default());
        let expected = fresh.serve(&requests).unwrap();
        assert_eq!(after, expected);
        // And the swap was real: readahead decisions changed.
        assert_ne!(before, after, "swap produced identical decisions");
        // Non-swapped kinds are untouched.
        for (b, a) in before.iter().zip(&after) {
            if b.kind != ModelKind::Readahead {
                assert_eq!(b, a);
            }
        }
    }

    #[test]
    fn shadow_lane_never_changes_responses_and_accumulates_stats() {
        let requests = mixed_requests(120);
        let mut plain =
            InferenceServer::new(FleetModels::untrained(11).unwrap(), ServeOptions::default());
        let mut shadowed =
            InferenceServer::new(FleetModels::untrained(11).unwrap(), ServeOptions::default());
        shadowed.set_shadow(
            ModelKind::Readahead,
            FleetModels::untrained(42).unwrap().readahead,
        );
        let a = plain.serve(&requests).unwrap();
        let b = shadowed.serve(&requests).unwrap();
        assert_eq!(a, b, "shadow affected served decisions");
        let stats = shadowed.shadow_stats(ModelKind::Readahead);
        assert_eq!(stats.windows, 40, "one comparison per readahead window");
        assert_eq!(stats.errors, 0);
        // Clearing returns the final stats and zeroes the lane.
        let finished = shadowed.clear_shadow(ModelKind::Readahead);
        assert_eq!(finished, stats);
        assert_eq!(
            shadowed.shadow_stats(ModelKind::Readahead),
            ShadowStats::default()
        );
        let c = shadowed.serve(&requests).unwrap();
        assert_eq!(a, c);
        assert_eq!(shadowed.shadow_stats(ModelKind::Readahead).windows, 0);
    }

    #[test]
    fn shadow_agrees_with_itself_and_serial_mode_matches_batched() {
        // A shadow identical to the active model agrees on every window,
        // in both serving modes.
        let requests = mixed_requests(90);
        for serial in [false, true] {
            let mut server = InferenceServer::new(
                FleetModels::untrained(11).unwrap(),
                ServeOptions {
                    serial_inference: serial,
                    ..ServeOptions::default()
                },
            );
            server.set_shadow(
                ModelKind::Iosched,
                FleetModels::untrained(11).unwrap().iosched,
            );
            server.serve(&requests).unwrap();
            let stats = server.shadow_stats(ModelKind::Iosched);
            assert_eq!(stats.windows, 30);
            assert_eq!(
                stats.agreements, 30,
                "identical shadow must agree (serial={serial})"
            );
        }
    }

    #[test]
    fn parallel_fanout_is_bit_identical_to_on_thread_serving() {
        // Same models, same requests: the pooled fan-out must reproduce
        // the on-thread batched responses AND stats exactly, at several
        // worker counts and chunkings.
        let requests = mixed_requests(1031);
        for (max_batch, workers) in [(16, 4), (256, 2), (7, 8), (256, 9)] {
            let mut on_thread = InferenceServer::new(
                FleetModels::untrained(11).unwrap(),
                ServeOptions {
                    max_batch,
                    ..ServeOptions::default()
                },
            );
            let mut fanned = InferenceServer::new(
                FleetModels::untrained(11).unwrap(),
                ServeOptions {
                    max_batch,
                    workers,
                    ..ServeOptions::default()
                },
            );
            let a = on_thread.serve(&requests).unwrap();
            let b = fanned.serve(&requests).unwrap();
            assert_eq!(a, b, "max_batch={max_batch} workers={workers}");
            assert_eq!(
                on_thread.stats(),
                fanned.stats(),
                "stats diverged at max_batch={max_batch} workers={workers}"
            );
        }
    }

    #[test]
    fn parallel_fanout_matches_q8_and_parity_modes() {
        let requests = mixed_requests(600);
        for q8 in [false, true] {
            let mut reference = InferenceServer::new(
                FleetModels::untrained(7).unwrap(),
                ServeOptions {
                    q8_serving: q8,
                    ..ServeOptions::default()
                },
            );
            let mut fanned = InferenceServer::new(
                FleetModels::untrained(7).unwrap(),
                ServeOptions {
                    q8_serving: q8,
                    workers: 4,
                    verify_parity: !q8,
                    max_batch: 64,
                    ..ServeOptions::default()
                },
            );
            // max_batch differs → chunk stats differ, but per-row classes
            // must still agree row-for-row (chunking never changes rows).
            let a = reference.serve(&requests).unwrap();
            let b = fanned.serve(&requests).unwrap();
            assert_eq!(a, b, "q8={q8}");
        }
    }

    #[test]
    fn parallel_fanout_survives_hot_swap_between_ticks() {
        // Slot replicas are generation-keyed: after a swap they must
        // refresh, and decisions must match a fresh server either side.
        let requests = mixed_requests(300);
        let mut fanned = InferenceServer::new(
            FleetModels::untrained(11).unwrap(),
            ServeOptions {
                workers: 4,
                max_batch: 32,
                ..ServeOptions::default()
            },
        );
        let mut reference = InferenceServer::new(
            FleetModels::untrained(11).unwrap(),
            ServeOptions {
                max_batch: 32,
                ..ServeOptions::default()
            },
        );
        assert_eq!(
            fanned.serve(&requests).unwrap(),
            reference.serve(&requests).unwrap()
        );
        let swapped = FleetModels::untrained(99).unwrap().iosched;
        let swapped_ref = FleetModels::untrained(99).unwrap().iosched;
        fanned.swap_model(ModelKind::Iosched, swapped).unwrap();
        reference
            .swap_model(ModelKind::Iosched, swapped_ref)
            .unwrap();
        for _ in 0..3 {
            assert_eq!(
                fanned.serve(&requests).unwrap(),
                reference.serve(&requests).unwrap()
            );
        }
    }

    #[test]
    fn parallel_fanout_keeps_shadow_lane_exact() {
        let requests = mixed_requests(240);
        let mut on_thread =
            InferenceServer::new(FleetModels::untrained(11).unwrap(), ServeOptions::default());
        let mut fanned = InferenceServer::new(
            FleetModels::untrained(11).unwrap(),
            ServeOptions {
                workers: 4,
                max_batch: 32,
                ..ServeOptions::default()
            },
        );
        for server in [&mut on_thread, &mut fanned] {
            server.set_shadow(
                ModelKind::Readahead,
                FleetModels::untrained(42).unwrap().readahead,
            );
        }
        let a = on_thread.serve(&requests).unwrap();
        let b = fanned.serve(&requests).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            on_thread.shadow_stats(ModelKind::Readahead),
            fanned.shadow_stats(ModelKind::Readahead)
        );
        assert_eq!(fanned.shadow_stats(ModelKind::Readahead).windows, 80);
    }

    #[test]
    fn serve_into_reuses_the_response_buffer() {
        let requests = mixed_requests(64);
        let mut server =
            InferenceServer::new(FleetModels::untrained(3).unwrap(), ServeOptions::default());
        let mut buf = Vec::new();
        server.serve_into(&requests, &mut buf).unwrap();
        let first: Vec<InferResponse> = buf.clone();
        let cap = buf.capacity();
        server.serve_into(&requests, &mut buf).unwrap();
        assert_eq!(buf, first);
        assert_eq!(buf.capacity(), cap, "steady-state serve_into reallocated");
    }

    #[test]
    fn batch_size_distribution_reflects_chunking() {
        // 10 readahead requests at max_batch 4 → batches of 4, 4, 2.
        let requests: Vec<InferRequest> = (0..10)
            .map(|t| req(t, ModelKind::Readahead, t + 1))
            .collect();
        let mut server = InferenceServer::new(
            FleetModels::untrained(9).unwrap(),
            ServeOptions {
                max_batch: 4,
                ..ServeOptions::default()
            },
        );
        server.serve(&requests).unwrap();
        let sizes = &server.stats().batch_sizes;
        assert_eq!(sizes.get(&4), Some(&2));
        assert_eq!(sizes.get(&2), Some(&1));
        assert_eq!(server.stats().forward_passes, 3);
    }
}
