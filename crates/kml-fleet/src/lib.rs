//! Multi-tenant fleet serving with a shared batched-inference model server.
//!
//! The paper deploys one KML model instance per machine, inside that
//! machine's kernel. This crate explores the fleet-scale shape of the same
//! idea: thousands of concurrent *tenants* — each a deterministic,
//! seed-derived combination of workload mix (Zipfian popularity over the
//! six db_bench-style workloads of Table 2 plus netfs-backed files),
//! device profile, and network profile — whose closed-loop tuners all
//! share **one** model-inference server. Instead of every tenant paying a
//! ~400 ns single-row inference per window, the server coalesces the
//! pending windows of a serving tick into row-stacked batches and runs
//! one blocked-GEMM forward pass per batch, then routes every decision
//! back to the tenant that asked (readahead KiB, scheduler batch wait, or
//! NFS rsize, per tenant type).
//!
//! The design leans on three properties proven elsewhere in the
//! workspace and re-checked here end to end:
//!
//! - **Batching is bit-exact** — `kml-core`'s `batch_parity` proptests
//!   show `infer_batch_into` equals N single-row `infer_into` calls bit
//!   for bit, so a batched fleet takes *exactly* the decisions a serial
//!   one would ([`fleet`] re-verifies this whole-fleet).
//! - **Sharding is worker-free** — tenants derive from `(seed, id)` and
//!   shard by `id % shards`; `parallel_map` returns shard results in
//!   shard order, so reports are byte-identical at any `--threads`.
//! - **Serving is exactly-once** — every submitted window is answered
//!   once and routed to its submitting tenant, enforced by per-tenant
//!   accounting and asserted at every tick.

pub mod fleet;
pub mod server;
pub mod tenant;

pub use fleet::{
    run_fleet, FleetConfig, FleetReport, FleetSummary, PlannedSwap, MAX_PLANNED_SWAPS, NO_SWAPS,
};
pub use server::{
    FleetModels, InferRequest, InferResponse, InferenceServer, LifecycleLane, ModelKind,
    ServeOptions,
};
pub use tenant::{FleetSampler, Tenant, TenantWorkload};
