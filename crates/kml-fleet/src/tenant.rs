//! Simulated tenants: deterministic seed-derived combinations of workload,
//! device, and (for network tenants) link profile.
//!
//! A tenant is one independent storage stack — its own simulator, its own
//! tracepoint ring, its own tuner — driving a db_bench-style access
//! pattern. The *only* thing tenants share is the fleet's model-inference
//! server: each tuner is built in remote mode ([`TunerModel::Remote`] and
//! friends), so a tenant harvests feature windows through the tuners'
//! `poll_*` APIs, ships them to the server as [`InferRequest`]s, and
//! routes the served class back through `apply_class`.
//!
//! Everything about a tenant derives from `(fleet_seed, tenant_id)`
//! through [`SplitMix64`]: workload category (Zipfian popularity over the
//! six Table 2 workloads plus netfs-backed files), device profile, link
//! profile, and the per-tenant traffic RNG. Tenant construction and
//! per-round execution touch no global state, which is what lets the
//! fleet shard tenants across workers and stay byte-identical at any
//! `--threads` count.

use iosched::scheduler::{IoRequest, IoScheduler, SchedulerConfig};
use iosched::SchedTuner;
use kernel_sim::{DeviceProfile, FileId, Sim, SimConfig};
use kml_collect::RingBuffer;
use kml_platform::sampler::{Categorical, SplitMix64, Zipfian};
use kml_telemetry::Log2Hist;
use netfs::transport::NetProfile;
use netfs::tuner::{RsizePolicy, RsizeTuner, RsizeTunerModel};
use netfs::NfsMount;
use readahead::tuner::{KmlTuner, RaPolicy, TunerModel};

use crate::server::{InferRequest, InferResponse, ModelKind, MAX_FEATURES};

/// A tenant's workload category: the paper's six db_bench-style workloads
/// plus network-filesystem-backed file serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantWorkload {
    /// Uniform-random point reads (readahead-tuned).
    ReadRandom,
    /// Forward scans (readahead-tuned).
    ReadSeq,
    /// 90/10 random read/write mix (readahead-tuned).
    ReadRandomWriteRandom,
    /// Random read-modify-write against the block scheduler (iosched-tuned).
    UpdateRandom,
    /// Bursty mixed traffic against the block scheduler (iosched-tuned).
    MixGraph,
    /// Backward scans (readahead-tuned).
    ReadReverse,
    /// Files served over the simulated network path (rsize-tuned).
    NetfsFiles,
}

impl TenantWorkload {
    /// All categories in Zipfian popularity order: index = popularity
    /// rank, so the fleet skews toward point reads and scans the way a
    /// shared-storage customer base does, with network tenants mid-tail.
    pub const POPULARITY: [TenantWorkload; 7] = [
        TenantWorkload::ReadRandom,
        TenantWorkload::ReadSeq,
        TenantWorkload::ReadRandomWriteRandom,
        TenantWorkload::NetfsFiles,
        TenantWorkload::MixGraph,
        TenantWorkload::UpdateRandom,
        TenantWorkload::ReadReverse,
    ];

    /// Display name (db_bench spelling where one exists).
    pub fn name(self) -> &'static str {
        match self {
            TenantWorkload::ReadRandom => "readrandom",
            TenantWorkload::ReadSeq => "readseq",
            TenantWorkload::ReadRandomWriteRandom => "readrandomwriterandom",
            TenantWorkload::UpdateRandom => "updaterandom",
            TenantWorkload::MixGraph => "mixgraph",
            TenantWorkload::ReadReverse => "readreverse",
            TenantWorkload::NetfsFiles => "netfsfiles",
        }
    }

    /// Stable index into per-workload count arrays (POPULARITY order).
    pub fn index(self) -> usize {
        TenantWorkload::POPULARITY
            .iter()
            .position(|&w| w == self)
            .expect("every workload appears in POPULARITY")
    }

    /// Which shared model serves this category.
    pub fn model_kind(self) -> ModelKind {
        match self {
            TenantWorkload::ReadRandom
            | TenantWorkload::ReadSeq
            | TenantWorkload::ReadRandomWriteRandom
            | TenantWorkload::ReadReverse => ModelKind::Readahead,
            TenantWorkload::UpdateRandom | TenantWorkload::MixGraph => ModelKind::Iosched,
            TenantWorkload::NetfsFiles => ModelKind::Netfs,
        }
    }
}

impl std::fmt::Display for TenantWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fleet's population distributions, built once and shared by every
/// tenant derivation (the distributions are fixed; only the draws are
/// per-tenant).
#[derive(Debug, Clone)]
pub struct FleetSampler {
    workload: Zipfian,
    device: Categorical,
    net: Categorical,
}

impl Default for FleetSampler {
    fn default() -> Self {
        FleetSampler {
            // Zipf over the 7 categories: rank 1 (~36%) down to rank 7 (~5%).
            workload: Zipfian::new(TenantWorkload::POPULARITY.len(), 1.0),
            // nvme-heavy with an HDD tail, like a mixed-generation fleet.
            device: Categorical::new(&[0.45, 0.35, 0.20]),
            // Mostly in-datacenter clients, some WAN, some last-mile wifi.
            net: Categorical::new(&[0.50, 0.30, 0.20]),
        }
    }
}

impl FleetSampler {
    /// Creates the default fleet population distributions.
    pub fn new() -> Self {
        FleetSampler::default()
    }
}

/// Per-workload file size, pages (virtual — the sim stores no data).
const RA_FILE_PAGES: u64 = 1 << 14;
/// Netfs tenant file size, pages.
const NET_FILE_PAGES: u64 = 1 << 16;
/// Iosched tenants address this many pages of one inode.
const IO_FILE_PAGES: u64 = 1 << 18;

/// Readahead tenants: per-class best readahead KiB, indexed by the
/// training-class order `[readrandom, readseq, readreverse, rrwr]`.
const RA_POLICY_KB: [u32; 4] = [16, 1024, 256, 64];
/// Iosched tenants: batch wait per class `[latency-sensitive, mergeable]`.
const IO_POLICY_NS: [u64; 2] = [0, 150_000];

/// Readahead tenants infer on 1 ms windows of simulated time — fast
/// enough that every round harvests a window on all device tiers.
const RA_WINDOW_NS: u64 = 1_000_000;

/// Per-round operation caps (a round stops early once a window is
/// harvested, so these are upper bounds, not budgets to fill).
const RA_OPS_CAP: u32 = 192;
const IO_OPS_CAP: u32 = 160;
const NET_OPS_CAP: u32 = 48;

// The simulated worlds are boxed so a mixed fleet's `Vec<Tenant>` costs
// the small-variant size per element, not the largest world's.
#[derive(Debug)]
enum TenantState {
    Readahead {
        sim: Box<Sim>,
        file: FileId,
        tuner: KmlTuner,
    },
    Iosched {
        sched: Box<IoScheduler>,
        // Boxed for the same reason: the tuner carries its model inline.
        tuner: Box<SchedTuner>,
        now_ns: u64,
    },
    Netfs {
        mount: Box<NfsMount>,
        file: FileId,
        tuner: RsizeTuner,
    },
}

/// One simulated tenant.
#[derive(Debug)]
pub struct Tenant {
    /// Globally unique tenant id (stable across runs).
    pub id: u64,
    /// The tenant's workload category.
    pub workload: TenantWorkload,
    state: TenantState,
    rng: SplitMix64,
    pos: u64,
    /// True between submitting a window and receiving its decision — the
    /// exactly-once accounting the fleet invariants check.
    pub outstanding: bool,
    /// Windows submitted to the server so far.
    pub windows_submitted: u64,
    /// Decisions routed back and applied so far.
    pub decisions_applied: u64,
}

impl Tenant {
    /// Derives tenant `id` of the fleet seeded by `fleet_seed`. The whole
    /// configuration — workload, device, link, traffic stream — is a pure
    /// function of the two seeds and the shared population distributions.
    pub fn derive(fleet_seed: u64, id: u64, sampler: &FleetSampler) -> Tenant {
        // Domain-separated per-tenant stream: tenants draw nothing from a
        // shared RNG, so construction order (and sharding) cannot matter.
        let mut rng = SplitMix64::new(fleet_seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let workload = TenantWorkload::POPULARITY[sampler.workload.sample(&mut rng)];
        let device = match sampler.device.sample(&mut rng) {
            0 => DeviceProfile::nvme(),
            1 => DeviceProfile::sata_ssd(),
            _ => DeviceProfile::hdd(),
        };
        let state = match workload.model_kind() {
            ModelKind::Readahead => {
                let mut sim = Sim::new(SimConfig {
                    device,
                    cache_pages: 256,
                    ..SimConfig::default()
                });
                let file = sim.create_file(RA_FILE_PAGES);
                let (producer, consumer) = RingBuffer::with_capacity(1 << 12).split();
                sim.attach_trace(producer);
                let tuner = KmlTuner::new(
                    TunerModel::Remote,
                    RaPolicy::new(RA_POLICY_KB.to_vec()),
                    consumer,
                    RA_WINDOW_NS,
                    128,
                );
                TenantState::Readahead {
                    sim: Box::new(sim),
                    file,
                    tuner,
                }
            }
            ModelKind::Iosched => TenantState::Iosched {
                sched: Box::new(IoScheduler::new(device, SchedulerConfig::default())),
                tuner: Box::new(SchedTuner::remote(IO_POLICY_NS)),
                now_ns: 0,
            },
            ModelKind::Netfs => {
                let link_seed = rng.next_u64();
                let profile = match sampler.net.sample(&mut rng) {
                    0 => NetProfile::datacenter(link_seed),
                    1 => NetProfile::congested_wan(link_seed),
                    _ => NetProfile::lossy_wifi(link_seed),
                };
                let mut mount = NfsMount::new(
                    profile,
                    SimConfig {
                        cache_pages: 256,
                        ..SimConfig::default()
                    },
                );
                let file = mount.create_file(NET_FILE_PAGES);
                let (producer, consumer) = RingBuffer::with_capacity(1 << 12).split();
                mount.attach_rpc_trace(producer);
                let tuner = RsizeTuner::new(
                    RsizeTunerModel::Remote,
                    RsizePolicy::experiment_default(),
                    consumer,
                    RsizeTuner::DEFAULT_WINDOW_NS,
                );
                TenantState::Netfs {
                    mount: Box::new(mount),
                    file,
                    tuner,
                }
            }
        };
        let pos = match workload {
            TenantWorkload::ReadReverse => RA_FILE_PAGES,
            _ => 0,
        };
        Tenant {
            id,
            workload,
            state,
            rng,
            pos,
            outstanding: false,
            windows_submitted: 0,
            decisions_applied: 0,
        }
    }

    /// Which shared model serves this tenant.
    pub fn model_kind(&self) -> ModelKind {
        self.workload.model_kind()
    }

    /// Runs one round of tenant traffic: issues operations (recording each
    /// tenant-visible latency into `hist`) until the tuner harvests a
    /// feature window or the round's op cap is reached. Returns the
    /// harvested window as a server request, if any.
    pub fn run_round(&mut self, hist: &mut Log2Hist) -> Option<InferRequest> {
        debug_assert!(!self.outstanding, "round started with a window in flight");
        let (id, kind) = (self.id, self.model_kind());
        let features: Option<InferRequest> = match &mut self.state {
            TenantState::Readahead { sim, file, tuner } => {
                let mut harvested = None;
                for _ in 0..RA_OPS_CAP {
                    let (page, npages, write) =
                        readahead_access(self.workload, &mut self.rng, &mut self.pos);
                    let latency = if write {
                        sim.write(*file, page, npages)
                    } else {
                        sim.read(*file, page, npages)
                    }
                    .expect("fault-free tenant sim");
                    hist.record(latency);
                    if let Some(f) = tuner.poll_window(sim) {
                        harvested = Some(f);
                        break;
                    }
                }
                harvested.map(|f| request(id, kind, &f))
            }
            TenantState::Iosched {
                sched,
                tuner,
                now_ns,
            } => iosched_round(self.workload, sched, tuner, now_ns, &mut self.rng, hist)
                .map(|f| request(id, kind, &f)),
            TenantState::Netfs { mount, file, tuner } => {
                let mut harvested = None;
                for _ in 0..NET_OPS_CAP {
                    const OP_PAGES: u64 = 128;
                    let page = self.pos % (NET_FILE_PAGES - OP_PAGES);
                    self.pos += OP_PAGES;
                    // Give-ups under total loss are part of tenant life;
                    // the failed attempt still advanced the clock.
                    if let Ok(latency) = mount.read(*file, page, OP_PAGES) {
                        hist.record(latency);
                    }
                    if let Some(f) = tuner.poll_window(mount) {
                        harvested = Some(f);
                        break;
                    }
                }
                harvested.map(|f| request(id, kind, &f))
            }
        };
        if features.is_some() {
            self.outstanding = true;
            self.windows_submitted += 1;
        }
        features
    }

    /// Routes a served decision back into the tenant's tuner.
    ///
    /// # Panics
    ///
    /// Panics if the response belongs to another tenant or model kind, or
    /// if no window is in flight — the routing and exactly-once invariants
    /// the DST fleet scenario asserts.
    pub fn apply(&mut self, response: &InferResponse) {
        assert_eq!(
            response.tenant_id, self.id,
            "decision routed to wrong tenant"
        );
        assert_eq!(
            response.kind,
            self.model_kind(),
            "decision routed to wrong model kind"
        );
        assert!(self.outstanding, "decision with no window in flight");
        self.outstanding = false;
        self.decisions_applied += 1;
        match &mut self.state {
            TenantState::Readahead { sim, tuner, .. } => tuner.apply_class(sim, response.class),
            TenantState::Iosched {
                sched,
                tuner,
                now_ns,
            } => tuner.apply_class(sched, *now_ns, response.class),
            TenantState::Netfs { mount, tuner, .. } => tuner.apply_class(mount, response.class),
        }
    }

    /// The knob currently in force, for inspection: readahead KiB, batch
    /// wait ns, or rsize KiB depending on the tenant kind.
    pub fn current_knob(&self) -> u64 {
        match &self.state {
            TenantState::Readahead { tuner, .. } => u64::from(tuner.current_ra_kb()),
            TenantState::Iosched { sched, .. } => sched.config().batch_wait_ns,
            TenantState::Netfs { mount, .. } => u64::from(mount.rsize_kb()),
        }
    }
}

fn request(tenant_id: u64, kind: ModelKind, features: &[f64]) -> InferRequest {
    let mut buf = [0.0; MAX_FEATURES];
    buf[..features.len()].copy_from_slice(features);
    InferRequest {
        tenant_id,
        kind,
        features: buf,
        dim: features.len(),
    }
}

/// One access of a readahead tenant: `(page, npages, write)`.
fn readahead_access(
    workload: TenantWorkload,
    rng: &mut SplitMix64,
    pos: &mut u64,
) -> (u64, u64, bool) {
    match workload {
        TenantWorkload::ReadSeq => {
            let page = *pos % (RA_FILE_PAGES - 8);
            *pos += 8;
            (page, 8, false)
        }
        TenantWorkload::ReadReverse => {
            if *pos < 8 {
                *pos = RA_FILE_PAGES;
            }
            *pos -= 8;
            (*pos, 8, false)
        }
        TenantWorkload::ReadRandom => (rng.next_below(RA_FILE_PAGES - 4), 4, false),
        _ => {
            // readrandomwriterandom: db_bench's default 90/10 mix.
            let write = rng.next_below(10) == 0;
            (rng.next_below(RA_FILE_PAGES - 4), 4, write)
        }
    }
}

/// One round of an iosched tenant: dependent-random traffic for
/// `updaterandom`, shuffled adjacent bursts for `mixgraph` (the two
/// antagonistic patterns of the scheduler case study).
fn iosched_round(
    workload: TenantWorkload,
    sched: &mut IoScheduler,
    tuner: &mut SchedTuner,
    now_ns: &mut u64,
    rng: &mut SplitMix64,
    hist: &mut Log2Hist,
) -> Option<[f64; iosched::tuner::NUM_SCHED_FEATURES]> {
    let mut harvested = None;
    let mut issued = 0u32;
    let burst_mode = workload == TenantWorkload::MixGraph;
    while issued < IO_OPS_CAP && harvested.is_none() {
        if burst_mode {
            // A burst of 16 adjacent 4-page requests in a fixed shuffled
            // order, arriving over ~25 µs.
            let base = rng.next_below(IO_FILE_PAGES / 128) * 64;
            for k in 0..16u64 {
                let idx = (k * 7 + 3) % 16; // deterministic shuffle
                let req = IoRequest {
                    inode: 1,
                    page: base + idx * 4,
                    npages: 4,
                    write: false,
                    arrival_ns: *now_ns + k * 1_500,
                };
                sched.submit(req);
                if harvested.is_none() {
                    harvested = tuner.poll_request(sched, &req);
                }
                for c in sched.drain(req.arrival_ns) {
                    hist.record(c.latency_ns);
                }
                issued += 1;
            }
            *now_ns += 25_000;
            for c in sched.drain(*now_ns) {
                hist.record(c.latency_ns);
            }
            *now_ns = (*now_ns).max(sched.busy_until_ns());
            for c in sched.drain(*now_ns) {
                hist.record(c.latency_ns);
            }
            *now_ns += 100_000;
            for c in sched.drain(*now_ns) {
                hist.record(c.latency_ns);
            }
        } else {
            // Synchronous read-modify-write client, one outstanding op.
            let page = rng.next_below(IO_FILE_PAGES / 4) * 4;
            let req = IoRequest {
                inode: 1,
                page,
                npages: 4,
                write: rng.next_below(2) == 1,
                arrival_ns: *now_ns,
            };
            sched.submit(req);
            if harvested.is_none() {
                harvested = tuner.poll_request(sched, &req);
            }
            let mut guard = 0u32;
            loop {
                let done = sched.drain(*now_ns);
                let mut finished = false;
                for c in &done {
                    hist.record(c.latency_ns);
                    if c.request == req {
                        finished = true;
                    }
                }
                if finished {
                    let latest = done
                        .iter()
                        .map(|c| c.completion_ns)
                        .max()
                        .unwrap_or(*now_ns);
                    *now_ns = (*now_ns).max(latest);
                    break;
                }
                *now_ns += sched.config().batch_wait_ns.max(1_000);
                guard += 1;
                assert!(guard < 10_000, "tenant request never completed");
            }
            *now_ns += 2_000; // think time
            issued += 1;
        }
    }
    harvested
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_order_free() {
        let sampler = FleetSampler::new();
        let a = Tenant::derive(42, 7, &sampler);
        let b = Tenant::derive(42, 7, &sampler);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.current_knob(), b.current_knob());
        // A different id or seed lands elsewhere in the population.
        let ids: Vec<TenantWorkload> = (0..64)
            .map(|id| Tenant::derive(42, id, &sampler).workload)
            .collect();
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() > 2, "population collapsed to {distinct:?}");
    }

    #[test]
    fn population_skews_toward_the_popular_ranks() {
        let sampler = FleetSampler::new();
        let mut counts = [0u64; 7];
        for id in 0..2_000 {
            counts[Tenant::derive(9, id, &sampler).workload.index()] += 1;
        }
        // Rank 1 strictly more popular than rank 7, and every model kind
        // is represented.
        assert!(counts[0] > counts[6]);
        assert!(counts.iter().all(|&c| c > 0), "empty category: {counts:?}");
    }

    #[test]
    fn a_readahead_tenant_round_trips_a_window() {
        let sampler = FleetSampler::new();
        // Find a readahead tenant deterministically.
        let mut tenant = (0..64)
            .map(|id| Tenant::derive(1, id, &sampler))
            .find(|t| t.model_kind() == ModelKind::Readahead)
            .expect("population contains readahead tenants");
        let mut hist = Log2Hist::new();
        let req = loop {
            if let Some(r) = tenant.run_round(&mut hist) {
                break r;
            }
        };
        assert!(tenant.outstanding);
        assert_eq!(req.tenant_id, tenant.id);
        assert_eq!(req.dim, readahead::NUM_FEATURES);
        assert!(hist.count() > 0, "ops recorded latencies");
        tenant.apply(&InferResponse {
            tenant_id: tenant.id,
            kind: req.kind,
            class: 1,
        });
        assert!(!tenant.outstanding);
        assert_eq!(tenant.decisions_applied, 1);
    }

    #[test]
    #[should_panic(expected = "routed to wrong tenant")]
    fn misrouted_decision_is_rejected() {
        let sampler = FleetSampler::new();
        let mut tenant = Tenant::derive(1, 0, &sampler);
        let kind = tenant.model_kind();
        tenant.outstanding = true;
        tenant.apply(&InferResponse {
            tenant_id: tenant.id + 1,
            kind,
            class: 0,
        });
    }
}
