//! Fleet orchestration: shards of tenants in pipelined serving rounds.
//!
//! A fleet run is a sequence of rounds. Logically each round has three
//! phases — **run** (every tenant issues operations until its tuner
//! harvests a feature window), **serve** (harvested windows are answered
//! by the shared [`InferenceServer`] in coalesced batches), and **apply**
//! (decisions are routed back into their tenants' tuners). The engine
//! executes them in one of two ways:
//!
//! - **Pipelined** (the default at >1 worker): one dispatch on the
//!   persistent [`threading::WorkerPool`] per round. Workers first drain
//!   a shard-simulation cursor; as shards finish, a watermark batcher
//!   stages their windows in shard-id order and emits `max_batch` chunks,
//!   which idle workers serve on per-slot model replicas and scatter
//!   straight back into the owning shards — inference for fast shards
//!   overlaps simulation of slow ones, and the serial orchestrator
//!   collect/scatter loops disappear.
//! - **Barriered** (1 worker, or [`ServeOptions::serial_inference`]): the
//!   classic three-phase lockstep, retained as the reference twin the
//!   pipelined engine must match byte for byte.
//!
//! Determinism: tenants are derived from `(seed, tenant_id)` alone and
//! sharded by `tenant_id % shards` — a fixed shard count independent of
//! the worker count. The watermark batcher stages windows strictly in
//! shard-id order and cuts chunks purely by row count, so chunk contents
//! and boundaries are identical to the barriered collect regardless of
//! which worker serves what when; each chunk's classes depend only on
//! (weights, rows) (kml-core's `batch_parity` proptests plus the
//! server's `verify_parity` mode), and a round applies at most one
//! decision per tenant, so apply order cannot matter. The whole report
//! is therefore byte-identical at any `--threads` value, which CI
//! enforces by hashing `repro fleet` artifacts across worker counts.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use kml_core::{KmlError, Result};
use kml_platform::threading;
use kml_telemetry::{HistSnapshot, Histogram, Log2Hist, Registry};

use crate::server::{
    FleetModels, InferRequest, InferResponse, InferenceServer, ModelKind, ServeOptions,
};
use crate::tenant::{FleetSampler, Tenant, TenantWorkload};

/// A model hot-swap scheduled at a round boundary: after round
/// `after_round` completes (responses applied), `kind`'s model is
/// replaced by a fresh seed-derived model published as a new generation.
/// Scheduled swaps keep lifecycle runs deterministic — the swap point is
/// part of the configuration, not of the scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedSwap {
    /// 0-based round after which the swap is published.
    pub after_round: usize,
    /// The model kind to swap.
    pub kind: ModelKind,
    /// Seed of the replacement model (`FleetModels::untrained(seed)`).
    pub seed: u64,
}

/// Most planned swaps a single run can carry (a fixed-size slot array
/// keeps [`FleetConfig`] `Copy`).
pub const MAX_PLANNED_SWAPS: usize = 4;

/// No scheduled swaps — the default, and the value every pre-lifecycle
/// call site uses.
pub const NO_SWAPS: [Option<PlannedSwap>; MAX_PLANNED_SWAPS] = [None; MAX_PLANNED_SWAPS];

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of tenants.
    pub tenants: usize,
    /// Serving rounds to execute.
    pub rounds: usize,
    /// Fleet seed: tenants, traffic, and links all derive from it.
    pub seed: u64,
    /// Shard count — fixed and independent of the worker count, so
    /// results do not depend on available parallelism.
    pub shards: usize,
    /// Serving-policy knobs (batch size, serial baseline, parity checks).
    pub options: ServeOptions,
    /// Model hot-swaps scheduled at round boundaries ([`NO_SWAPS`] for
    /// none).
    pub swaps: [Option<PlannedSwap>; MAX_PLANNED_SWAPS],
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            tenants: 2_048,
            rounds: 4,
            seed: 0xF1EE7,
            shards: 64,
            options: ServeOptions::default(),
            swaps: NO_SWAPS,
        }
    }
}

/// The deterministic outcome of a fleet run — everything here is
/// byte-identical across worker counts, between the pipelined and
/// barriered engines, and between batched and serial-inference serving.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Tenants simulated.
    pub tenants: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Shards used.
    pub shards: usize,
    /// Tenants per model kind (`ModelKind::index` order).
    pub kind_counts: [u64; 3],
    /// Tenants per workload category (`TenantWorkload::POPULARITY` order).
    pub workload_counts: [u64; 7],
    /// Feature windows submitted to the server.
    pub windows_submitted: u64,
    /// Decisions served back.
    pub decisions_returned: u64,
    /// Decisions applied, per model kind.
    pub decisions_applied: [u64; 3],
    /// Model forward passes executed.
    pub forward_passes: u64,
    /// Batch-size distribution: `(size, batches)` ascending by size.
    pub batch_sizes: Vec<(usize, u64)>,
    /// Aggregate tenant-visible operation latency (merged from the
    /// per-shard histograms).
    pub latency: HistSnapshot,
}

/// Outcome of a fleet run: the deterministic summary plus wall-clock
/// serving throughput (which is machine-dependent by nature and must stay
/// out of byte-compared artifacts).
#[derive(Debug)]
pub struct FleetReport {
    /// The deterministic part.
    pub summary: FleetSummary,
    /// Wall-clock duration of the run, seconds.
    pub wall_secs: f64,
}

impl FleetReport {
    /// Tuner-decision throughput: tenant windows served per wall-clock
    /// second.
    pub fn tenant_windows_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.summary.decisions_returned as f64 / self.wall_secs
        }
    }
}

/// One shard: a disjoint slice of the tenant population plus its local
/// telemetry. Shards never touch each other's state.
#[derive(Debug)]
struct Shard {
    tenants: Vec<Tenant>,
    hist: Log2Hist,
    pending: Vec<InferRequest>,
    inbound: Vec<InferResponse>,
}

impl Shard {
    fn run_round(&mut self) {
        for tenant in &mut self.tenants {
            if let Some(request) = tenant.run_round(&mut self.hist) {
                self.pending.push(request);
            }
        }
    }

    fn apply_inbound(&mut self) {
        for i in 0..self.inbound.len() {
            let response = self.inbound[i];
            let tenant = self
                .tenants
                .iter_mut()
                .find(|t| t.id == response.tenant_id)
                .expect("response routed to a shard that owns its tenant");
            tenant.apply(&response);
        }
        self.inbound.clear();
    }
}

/// One emitted forward pass of the streaming harvest: `len` rows of
/// `kind` starting at `start` in the kind's staging buffer.
#[derive(Clone, Copy)]
struct Chunk {
    kind: ModelKind,
    start: u32,
    len: u32,
}

/// The streaming harvest: per-kind staging buffers filled in shard-id
/// (watermark) order plus the chunks emitted over them so far. All
/// buffers are reused across rounds.
struct RoundPipeline {
    staged: [Vec<InferRequest>; 3],
    emitted: [usize; 3],
    chunks: Vec<Chunk>,
    next_shard: usize,
    next_chunk: usize,
    final_flushed: bool,
}

impl RoundPipeline {
    fn new() -> RoundPipeline {
        RoundPipeline {
            staged: [Vec::new(), Vec::new(), Vec::new()],
            emitted: [0; 3],
            chunks: Vec::new(),
            next_shard: 0,
            next_chunk: 0,
            final_flushed: false,
        }
    }

    /// Resets for a new round, keeping every buffer's capacity.
    fn reset(&mut self) {
        for staged in &mut self.staged {
            staged.clear();
        }
        self.emitted = [0; 3];
        self.chunks.clear();
        self.next_shard = 0;
        self.next_chunk = 0;
        self.final_flushed = false;
    }

    /// Advances the harvest watermark: drains `pending` from every
    /// finished shard strictly in shard-id order — so staging order is
    /// exactly the shard-major, tenant-minor order of the barriered
    /// collect — then emits every complete `max_batch` chunk, plus, once
    /// all shards are staged, the final partial chunk per kind. Chunk
    /// boundaries depend only on staged row counts, never on timing, so
    /// the emitted batches equal the barriered tick's batches exactly.
    fn advance(&mut self, shards: &[Mutex<Shard>], done: &[AtomicBool], max_batch: usize) {
        while self.next_shard < shards.len() && done[self.next_shard].load(Ordering::Acquire) {
            let mut shard = shards[self.next_shard].lock().expect("shard lock");
            for request in shard.pending.drain(..) {
                self.staged[request.kind.index()].push(request);
            }
            self.next_shard += 1;
        }
        for kind in ModelKind::ALL {
            let k = kind.index();
            while self.staged[k].len() - self.emitted[k] >= max_batch {
                self.chunks.push(Chunk {
                    kind,
                    start: self.emitted[k] as u32,
                    len: max_batch as u32,
                });
                self.emitted[k] += max_batch;
            }
        }
        if self.next_shard == shards.len() && !self.final_flushed {
            for kind in ModelKind::ALL {
                let k = kind.index();
                let rem = self.staged[k].len() - self.emitted[k];
                if rem > 0 {
                    self.chunks.push(Chunk {
                        kind,
                        start: self.emitted[k] as u32,
                        len: rem as u32,
                    });
                    self.emitted[k] += rem;
                }
            }
            self.final_flushed = true;
        }
    }
}

/// Per-slot working memory for the pipelined round, reused across chunks
/// and rounds.
#[derive(Default)]
struct SlotScratch {
    rows: Vec<InferRequest>,
    responses: Vec<InferResponse>,
}

/// What a pipelined worker does next after failing to claim a
/// simulation task.
enum Step {
    /// Serve the chunk just copied into the slot's scratch rows.
    Serve(ModelKind),
    /// The round is complete — exit the loop.
    Done,
    /// Chunks are still in flight on other workers — yield and re-poll.
    Wait,
}

/// Sets its flag if dropped during a panic, so sibling workers spinning
/// on round progress exit instead of waiting for a chunk that will never
/// be served; the pool then resumes the panic on the dispatcher.
struct BailGuard<'a>(&'a AtomicBool);

impl Drop for BailGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// Phase-span histograms, nanoseconds. In the pipelined engine the
/// phases overlap by design: `run` is round start → last shard done
/// simulating, `serve` is round start → last chunk applied (the round's
/// full wall), and `apply` is the summed in-worker scatter time. In the
/// barriered engine each phase is its own wall-clock segment, so
/// `run + serve + apply ≈ serve`'s pipelined value is the overlap win.
struct PhaseHists {
    run: Histogram,
    serve: Histogram,
    apply: Histogram,
}

impl PhaseHists {
    fn register() -> PhaseHists {
        let reg = Registry::global();
        PhaseHists {
            run: reg.histogram("fleet.phase_run_ns"),
            serve: reg.histogram("fleet.phase_serve_ns"),
            apply: reg.histogram("fleet.phase_apply_ns"),
        }
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Applies one chunk's responses directly to their owning shards,
/// grouped into per-shard runs so each shard lock is taken once per run.
/// Safe from any worker: a request only reaches a chunk after its shard
/// finished simulating, a round carries at most one decision per tenant,
/// and the shard mutex serializes concurrent chunks touching the same
/// shard — so apply order cannot affect any state.
fn apply_responses(shards: &[Mutex<Shard>], shard_count: usize, responses: &[InferResponse]) {
    let mut i = 0;
    while i < responses.len() {
        let s = (responses[i].tenant_id as usize) % shard_count;
        let mut j = i + 1;
        while j < responses.len() && (responses[j].tenant_id as usize) % shard_count == s {
            j += 1;
        }
        let mut shard = shards[s].lock().expect("shard lock");
        for response in &responses[i..j] {
            let tenant = shard
                .tenants
                .iter_mut()
                .find(|t| t.id == response.tenant_id)
                .expect("response routed to a shard that owns its tenant");
            tenant.apply(response);
        }
        i = j;
    }
}

/// One pipelined round: a single pool dispatch in which every
/// participant alternates between draining the shard-simulation cursor
/// and serving watermark-emitted chunks, scattering decisions straight
/// back into the shards. Returns `(windows_submitted, decisions)`.
#[allow(clippy::too_many_arguments)]
fn run_round_pipelined(
    server: &mut InferenceServer,
    shards: &[Mutex<Shard>],
    workers: usize,
    max_batch: usize,
    pipe: &Mutex<RoundPipeline>,
    done: &[AtomicBool],
    scratches: &[Mutex<SlotScratch>],
    phases: &PhaseHists,
) -> Result<(u64, u64)> {
    let shard_count = shards.len();
    pipe.lock().expect("pipeline lock").reset();
    for flag in done {
        flag.store(false, Ordering::Relaxed);
    }
    let sim_cursor = AtomicUsize::new(0);
    let sims_left = AtomicUsize::new(shard_count);
    let chunks_served = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let bailed = AtomicBool::new(false);
    let failure: Mutex<Option<KmlError>> = Mutex::new(None);
    let sim_done_ns = AtomicU64::new(0);
    let apply_ns = AtomicU64::new(0);
    let pins = server.pin_kinds();
    let server_ref: &InferenceServer = server;
    let round_start = Instant::now();

    threading::global_pool().broadcast(workers - 1, |slot| {
        let _bail = BailGuard(&bailed);
        loop {
            if failed.load(Ordering::Acquire) || bailed.load(Ordering::Acquire) {
                break;
            }
            // Simulate first: finished shards are what feeds the batcher.
            let s = sim_cursor.fetch_add(1, Ordering::Relaxed);
            if s < shard_count {
                shards[s].lock().expect("shard lock").run_round();
                done[s].store(true, Ordering::Release);
                if sims_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                    sim_done_ns.store(elapsed_ns(round_start), Ordering::Relaxed);
                }
                continue;
            }
            let step = {
                let mut p = pipe.lock().expect("pipeline lock");
                p.advance(shards, done, max_batch);
                if p.next_chunk < p.chunks.len() {
                    let chunk = p.chunks[p.next_chunk];
                    p.next_chunk += 1;
                    // Copy the rows out under the lock: the staging buffer
                    // may grow (and reallocate) while the chunk is served.
                    let rows = &p.staged[chunk.kind.index()]
                        [chunk.start as usize..(chunk.start as usize + chunk.len as usize)];
                    let mut scratch = scratches[slot].lock().expect("scratch lock");
                    scratch.rows.clear();
                    scratch.rows.extend_from_slice(rows);
                    Step::Serve(chunk.kind)
                } else if p.final_flushed && chunks_served.load(Ordering::Acquire) == p.chunks.len()
                {
                    Step::Done
                } else {
                    Step::Wait
                }
            };
            match step {
                Step::Serve(kind) => {
                    let mut guard = scratches[slot].lock().expect("scratch lock");
                    let scratch = &mut *guard;
                    scratch.responses.clear();
                    let served = server_ref.serve_run_on_slot(
                        slot,
                        &pins,
                        kind,
                        &scratch.rows,
                        &mut scratch.responses,
                    );
                    match served {
                        Ok(()) => {
                            let apply_start = Instant::now();
                            apply_responses(shards, shard_count, &scratch.responses);
                            apply_ns.fetch_add(elapsed_ns(apply_start), Ordering::Relaxed);
                            chunks_served.fetch_add(1, Ordering::Release);
                        }
                        Err(e) => {
                            let mut first = failure.lock().expect("failure lock");
                            if first.is_none() {
                                *first = Some(e);
                            }
                            failed.store(true, Ordering::Release);
                        }
                    }
                }
                Step::Done => break,
                Step::Wait => std::thread::yield_now(),
            }
        }
    });

    let round_ns = elapsed_ns(round_start);
    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }
    let p = pipe.lock().expect("pipeline lock");
    let windows: u64 = p.staged.iter().map(|v| v.len() as u64).sum();
    let decisions: u64 = p.chunks.iter().map(|c| u64::from(c.len)).sum();
    assert_eq!(
        windows, decisions,
        "serving tick dropped or duplicated windows"
    );
    server.note_batches(p.chunks.iter().map(|c| c.len as usize), windows);
    phases.run.record(sim_done_ns.load(Ordering::Relaxed));
    phases.serve.record(round_ns);
    phases.apply.record(apply_ns.load(Ordering::Relaxed));
    Ok((windows, decisions))
}

/// One barriered round: the classic three-phase lockstep, kept as the
/// reference twin of the pipelined engine (and the only engine for
/// serial-inference runs). Returns `(windows_submitted, decisions)`.
fn run_round_barriered(
    server: &mut InferenceServer,
    shards: &[Mutex<Shard>],
    workers: usize,
    requests: &mut Vec<InferRequest>,
    responses: &mut Vec<InferResponse>,
    phases: &PhaseHists,
) -> Result<(u64, u64)> {
    let shard_count = shards.len();
    let pool = threading::global_pool();
    // Phase 1: run tenant traffic, shard-parallel.
    let t = Instant::now();
    pool.run(workers, shard_count, |_, s| {
        shards[s].lock().expect("shard lock").run_round();
    });
    phases.run.record(elapsed_ns(t));
    // Phase 2: collect in shard-major order and serve one tick.
    requests.clear();
    for shard in shards {
        requests.append(&mut shard.lock().expect("shard lock").pending);
    }
    let t = Instant::now();
    server.serve_into(requests, responses)?;
    phases.serve.record(elapsed_ns(t));
    assert_eq!(
        requests.len(),
        responses.len(),
        "serving tick dropped or duplicated windows"
    );
    // Phase 3: scatter decisions back and apply, shard-parallel.
    let t = Instant::now();
    for response in responses.iter() {
        let s = (response.tenant_id as usize) % shard_count;
        shards[s]
            .lock()
            .expect("shard lock")
            .inbound
            .push(*response);
    }
    pool.run(workers, shard_count, |_, s| {
        shards[s].lock().expect("shard lock").apply_inbound();
    });
    phases.apply.record(elapsed_ns(t));
    Ok((requests.len() as u64, responses.len() as u64))
}

/// Runs a fleet to completion.
///
/// # Errors
///
/// Propagates model inference failures.
///
/// # Panics
///
/// Panics if any serving invariant breaks: a window answered zero or
/// multiple times, a decision routed to the wrong tenant or model kind,
/// or (with [`ServeOptions::verify_parity`]) a batched class diverging
/// from its serial counterpart.
pub fn run_fleet(cfg: &FleetConfig, models: FleetModels) -> Result<FleetReport> {
    let start = Instant::now();
    let workers = threading::default_workers();
    let shard_count = cfg.shards.max(1);
    let sampler = FleetSampler::new();
    let pool = threading::global_pool();
    let phases = PhaseHists::register();
    Registry::global()
        .gauge("kml.pool_workers")
        .set(pool.threads() as u64);

    // Build tenants sharded by id: shard s owns ids ≡ s (mod shards).
    // Construction is derivation-only, so it parallelizes cleanly too.
    let shard_ids: Vec<usize> = (0..shard_count).collect();
    let shards: Vec<Mutex<Shard>> = threading::pool_map(&shard_ids, workers, |_, &s| {
        let tenants = (s as u64..cfg.tenants as u64)
            .step_by(shard_count)
            .map(|id| Tenant::derive(cfg.seed, id, &sampler))
            .collect();
        Mutex::new(Shard {
            tenants,
            hist: Log2Hist::new(),
            pending: Vec::new(),
            inbound: Vec::new(),
        })
    });

    // The fleet's worker count governs the server's fan-out too, so a
    // standalone `serve` call (the barriered twin) splits batches across
    // the same pool.
    let mut options = cfg.options;
    options.workers = workers;
    let mut server = InferenceServer::new(models, options);
    // The streaming engine does its own (serial, deterministic) stats
    // bookkeeping but no shadow-lane bookkeeping, so a server with a
    // staged shadow falls back to the barriered twin.
    let pipelined =
        workers > 1 && !options.serial_inference && !server.has_shadow() && pool.threads() > 0;

    // Round state, allocated once and reused by every round.
    let pipe = Mutex::new(RoundPipeline::new());
    let done: Vec<AtomicBool> = (0..shard_count).map(|_| AtomicBool::new(false)).collect();
    let scratches: Vec<Mutex<SlotScratch>> = if pipelined {
        server.warm_replicas()?;
        (0..=pool.max_slot())
            .map(|_| Mutex::new(SlotScratch::default()))
            .collect()
    } else {
        Vec::new()
    };
    let mut requests: Vec<InferRequest> = Vec::new();
    let mut responses: Vec<InferResponse> = Vec::new();

    let mut windows_submitted = 0u64;
    let mut decisions_returned = 0u64;
    for round in 0..cfg.rounds {
        let (windows, decisions) = if pipelined {
            run_round_pipelined(
                &mut server,
                &shards,
                workers,
                options.max_batch.max(1),
                &pipe,
                &done,
                &scratches,
                &phases,
            )?
        } else {
            run_round_barriered(
                &mut server,
                &shards,
                workers,
                &mut requests,
                &mut responses,
                &phases,
            )?
        };
        windows_submitted += windows;
        decisions_returned += decisions;
        // Round boundary: publish any scheduled hot-swaps. The swap
        // happens on the orchestration thread between ticks, so it is
        // deterministic at any worker count; the next round's tick pins
        // the new generation.
        for swap in cfg.swaps.iter().flatten() {
            if swap.after_round == round {
                let replacement = FleetModels::untrained(swap.seed)?;
                let model = match swap.kind {
                    ModelKind::Readahead => replacement.readahead,
                    ModelKind::Iosched => replacement.iosched,
                    ModelKind::Netfs => replacement.netfs,
                };
                server.swap_model(swap.kind, model)?;
            }
        }
    }

    // Merge shard telemetry and check the end-of-run invariants.
    let mut hist = Log2Hist::new();
    let mut kind_counts = [0u64; 3];
    let mut workload_counts = [0u64; 7];
    let mut decisions_applied = [0u64; 3];
    let mut applied_total = 0u64;
    for shard in &shards {
        let shard = shard.lock().expect("shard lock");
        hist.merge(&shard.hist);
        for tenant in &shard.tenants {
            assert!(
                !tenant.outstanding,
                "tenant {} ended the run with an unanswered window",
                tenant.id
            );
            assert_eq!(tenant.windows_submitted, tenant.decisions_applied);
            kind_counts[tenant.model_kind().index()] += 1;
            workload_counts[tenant.workload.index()] += 1;
            decisions_applied[tenant.model_kind().index()] += tenant.decisions_applied;
            applied_total += tenant.decisions_applied;
        }
    }
    assert_eq!(windows_submitted, decisions_returned);
    assert_eq!(windows_submitted, applied_total);

    let stats = server.stats();
    Ok(FleetReport {
        summary: FleetSummary {
            tenants: cfg.tenants,
            rounds: cfg.rounds,
            shards: shard_count,
            kind_counts,
            workload_counts,
            windows_submitted,
            decisions_returned,
            decisions_applied,
            forward_passes: stats.forward_passes,
            batch_sizes: stats.batch_sizes.iter().map(|(&s, &n)| (s, n)).collect(),
            latency: hist.snapshot(),
        },
        wall_secs: start.elapsed().as_secs_f64(),
    })
}

/// Convenience label for per-kind tables.
pub fn kind_name(index: usize) -> &'static str {
    ModelKind::ALL[index].name()
}

/// Convenience label for per-workload tables.
pub fn workload_name(index: usize) -> &'static str {
    TenantWorkload::POPULARITY[index].name()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            tenants: 96,
            rounds: 2,
            shards: 16,
            seed: 0xABCD,
            options: ServeOptions::default(),
            swaps: NO_SWAPS,
        }
    }

    #[test]
    fn a_small_fleet_runs_and_accounts_every_window_exactly_once() {
        let cfg = small_cfg();
        let report = run_fleet(&cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
        let s = &report.summary;
        assert_eq!(s.tenants, 96);
        assert_eq!(s.windows_submitted, s.decisions_returned);
        assert_eq!(s.windows_submitted, s.decisions_applied.iter().sum::<u64>());
        assert!(s.windows_submitted > 0, "no tenant harvested a window");
        assert!(s.latency.count > 0, "no latencies recorded");
        assert_eq!(s.kind_counts.iter().sum::<u64>(), 96);
        assert_eq!(s.workload_counts.iter().sum::<u64>(), 96);
    }

    #[test]
    fn worker_count_never_changes_the_summary() {
        // 1 worker runs the barriered engine, >1 the pipelined one — so
        // this is also the pipelined-vs-barriered byte-identity check.
        let cfg = small_cfg();
        let run_with = |threads: &str| {
            std::env::set_var(threading::WORKERS_ENV, threads);
            let r = run_fleet(&cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
            std::env::remove_var(threading::WORKERS_ENV);
            r.summary
        };
        let one = run_with("1");
        let three = run_with("3");
        let eight = run_with("8");
        assert_eq!(one, three);
        assert_eq!(one, eight);
    }

    #[test]
    fn pipelined_engine_matches_barriered_with_parity_armed() {
        // Small max_batch forces many chunks per round (partial final
        // chunks included), verify_parity re-derives every class against
        // the pinned original, and the single-worker run is the barriered
        // reference the pipelined runs must equal.
        let cfg = FleetConfig {
            options: ServeOptions {
                max_batch: 4,
                verify_parity: true,
                ..ServeOptions::default()
            },
            rounds: 3,
            ..small_cfg()
        };
        let run_with = |threads: &str| {
            std::env::set_var(threading::WORKERS_ENV, threads);
            let r = run_fleet(&cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
            std::env::remove_var(threading::WORKERS_ENV);
            r.summary
        };
        let barriered = run_with("1");
        let pipelined = run_with("8");
        assert_eq!(barriered, pipelined);
    }

    #[test]
    fn mid_run_swap_is_deterministic_at_any_worker_count() {
        let cfg = FleetConfig {
            rounds: 3,
            swaps: [
                Some(PlannedSwap {
                    after_round: 0,
                    kind: ModelKind::Readahead,
                    seed: 0x51AB,
                }),
                Some(PlannedSwap {
                    after_round: 1,
                    kind: ModelKind::Netfs,
                    seed: 0x51AC,
                }),
                None,
                None,
            ],
            ..small_cfg()
        };
        let run_with = |threads: &str| {
            std::env::set_var(threading::WORKERS_ENV, threads);
            let r = run_fleet(&cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
            std::env::remove_var(threading::WORKERS_ENV);
            r.summary
        };
        let one = run_with("1");
        let three = run_with("3");
        let eight = run_with("8");
        assert_eq!(one, three);
        assert_eq!(one, eight);
        // The swap is real: the same fleet without it decides differently
        // (replacement models are seeded to differ from the originals).
        let unswapped = run_fleet(
            &FleetConfig {
                swaps: NO_SWAPS,
                ..cfg
            },
            FleetModels::untrained(cfg.seed).unwrap(),
        )
        .unwrap();
        assert_ne!(one, unswapped.summary, "planned swaps had no effect");
    }

    #[test]
    fn batched_and_serial_serving_produce_identical_fleets() {
        let cfg = small_cfg();
        let batched = run_fleet(&cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
        let serial_cfg = FleetConfig {
            options: ServeOptions {
                serial_inference: true,
                ..ServeOptions::default()
            },
            ..cfg
        };
        let serial = run_fleet(&serial_cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
        // Everything but the serving mechanics (forward-pass count and
        // batch-size distribution) must match bit for bit.
        let mut b = batched.summary.clone();
        let mut s = serial.summary.clone();
        assert!(b.forward_passes < s.forward_passes, "batching coalesced");
        b.forward_passes = 0;
        s.forward_passes = 0;
        b.batch_sizes.clear();
        s.batch_sizes.clear();
        assert_eq!(b, s);
    }
}
