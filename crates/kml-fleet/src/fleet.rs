//! Fleet orchestration: shards of tenants in lockstep serving rounds.
//!
//! A fleet run is a sequence of rounds, each in three phases:
//!
//! 1. **Run** — shards execute in parallel ([`parallel_map`]); every
//!    tenant issues operations until its tuner harvests a feature window
//!    (or the round's op cap), recording each tenant-visible latency into
//!    the shard's [`Log2Hist`].
//! 2. **Serve** — the harvested windows are collected in shard-major,
//!    tenant-minor order and answered by the shared
//!    [`InferenceServer`] in coalesced batches (one `B × features`
//!    forward pass per batch instead of one pass per tenant window).
//! 3. **Route** — responses are scattered back to their shards, which
//!    apply each class to its tenant's tuner in parallel.
//!
//! Determinism: tenants are derived from `(seed, tenant_id)` alone and
//! sharded by `tenant_id % shards` — a fixed shard count independent of
//! the worker count — and `parallel_map` returns shard results in shard
//! order regardless of scheduling. The worker count therefore never
//! influences any state, and the whole report is byte-identical at any
//! `--threads` value. The serving phase is bit-identical to per-tenant
//! serial inference (kml-core's `batch_parity` proptests plus the
//! server's `verify_parity` mode), so batching changes wall-clock
//! throughput and nothing else.

use std::sync::Mutex;
use std::time::Instant;

use kml_core::Result;
use kml_platform::threading::{self, parallel_map};
use kml_telemetry::{HistSnapshot, Log2Hist};

use crate::server::{
    FleetModels, InferRequest, InferResponse, InferenceServer, ModelKind, ServeOptions,
};
use crate::tenant::{FleetSampler, Tenant, TenantWorkload};

/// A model hot-swap scheduled at a round boundary: after round
/// `after_round` completes (responses applied), `kind`'s model is
/// replaced by a fresh seed-derived model published as a new generation.
/// Scheduled swaps keep lifecycle runs deterministic — the swap point is
/// part of the configuration, not of the scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedSwap {
    /// 0-based round after which the swap is published.
    pub after_round: usize,
    /// The model kind to swap.
    pub kind: ModelKind,
    /// Seed of the replacement model (`FleetModels::untrained(seed)`).
    pub seed: u64,
}

/// Most planned swaps a single run can carry (a fixed-size slot array
/// keeps [`FleetConfig`] `Copy`).
pub const MAX_PLANNED_SWAPS: usize = 4;

/// No scheduled swaps — the default, and the value every pre-lifecycle
/// call site uses.
pub const NO_SWAPS: [Option<PlannedSwap>; MAX_PLANNED_SWAPS] = [None; MAX_PLANNED_SWAPS];

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of tenants.
    pub tenants: usize,
    /// Serving rounds to execute.
    pub rounds: usize,
    /// Fleet seed: tenants, traffic, and links all derive from it.
    pub seed: u64,
    /// Shard count — fixed and independent of the worker count, so
    /// results do not depend on available parallelism.
    pub shards: usize,
    /// Serving-policy knobs (batch size, serial baseline, parity checks).
    pub options: ServeOptions,
    /// Model hot-swaps scheduled at round boundaries ([`NO_SWAPS`] for
    /// none).
    pub swaps: [Option<PlannedSwap>; MAX_PLANNED_SWAPS],
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            tenants: 2_048,
            rounds: 4,
            seed: 0xF1EE7,
            shards: 64,
            options: ServeOptions::default(),
            swaps: NO_SWAPS,
        }
    }
}

/// The deterministic outcome of a fleet run — everything here is
/// byte-identical across worker counts and between batched and
/// serial-inference serving.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Tenants simulated.
    pub tenants: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// Shards used.
    pub shards: usize,
    /// Tenants per model kind (`ModelKind::index` order).
    pub kind_counts: [u64; 3],
    /// Tenants per workload category (`TenantWorkload::POPULARITY` order).
    pub workload_counts: [u64; 7],
    /// Feature windows submitted to the server.
    pub windows_submitted: u64,
    /// Decisions served back.
    pub decisions_returned: u64,
    /// Decisions applied, per model kind.
    pub decisions_applied: [u64; 3],
    /// Model forward passes executed.
    pub forward_passes: u64,
    /// Batch-size distribution: `(size, batches)` ascending by size.
    pub batch_sizes: Vec<(usize, u64)>,
    /// Aggregate tenant-visible operation latency (merged from the
    /// per-shard histograms).
    pub latency: HistSnapshot,
}

/// Outcome of a fleet run: the deterministic summary plus wall-clock
/// serving throughput (which is machine-dependent by nature and must stay
/// out of byte-compared artifacts).
#[derive(Debug)]
pub struct FleetReport {
    /// The deterministic part.
    pub summary: FleetSummary,
    /// Wall-clock duration of the run, seconds.
    pub wall_secs: f64,
}

impl FleetReport {
    /// Tuner-decision throughput: tenant windows served per wall-clock
    /// second.
    pub fn tenant_windows_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.summary.decisions_returned as f64 / self.wall_secs
        }
    }
}

/// One shard: a disjoint slice of the tenant population plus its local
/// telemetry. Shards never touch each other's state.
#[derive(Debug)]
struct Shard {
    tenants: Vec<Tenant>,
    hist: Log2Hist,
    pending: Vec<InferRequest>,
    inbound: Vec<InferResponse>,
}

impl Shard {
    fn run_round(&mut self) {
        for tenant in &mut self.tenants {
            if let Some(request) = tenant.run_round(&mut self.hist) {
                self.pending.push(request);
            }
        }
    }

    fn apply_inbound(&mut self) {
        for i in 0..self.inbound.len() {
            let response = self.inbound[i];
            let tenant = self
                .tenants
                .iter_mut()
                .find(|t| t.id == response.tenant_id)
                .expect("response routed to a shard that owns its tenant");
            tenant.apply(&response);
        }
        self.inbound.clear();
    }
}

/// Runs a fleet to completion.
///
/// # Errors
///
/// Propagates model inference failures.
///
/// # Panics
///
/// Panics if any serving invariant breaks: a window answered zero or
/// multiple times, a decision routed to the wrong tenant or model kind,
/// or (with [`ServeOptions::verify_parity`]) a batched class diverging
/// from its serial counterpart.
pub fn run_fleet(cfg: &FleetConfig, models: FleetModels) -> Result<FleetReport> {
    let start = Instant::now();
    let workers = threading::default_workers();
    let shard_count = cfg.shards.max(1);
    let sampler = FleetSampler::new();

    // Build tenants sharded by id: shard s owns ids ≡ s (mod shards).
    // Construction is derivation-only, so it parallelizes cleanly too.
    let shard_ids: Vec<usize> = (0..shard_count).collect();
    let shards: Vec<Mutex<Shard>> = parallel_map(&shard_ids, workers, |_, &s| {
        let tenants = (s as u64..cfg.tenants as u64)
            .step_by(shard_count)
            .map(|id| Tenant::derive(cfg.seed, id, &sampler))
            .collect();
        Mutex::new(Shard {
            tenants,
            hist: Log2Hist::new(),
            pending: Vec::new(),
            inbound: Vec::new(),
        })
    });

    let mut server = InferenceServer::new(models, cfg.options);
    let mut windows_submitted = 0u64;
    let mut decisions_returned = 0u64;
    for round in 0..cfg.rounds {
        // Phase 1: run tenant traffic, shard-parallel.
        parallel_map(&shards, workers, |_, shard| {
            shard.lock().expect("shard lock").run_round();
        });
        // Phase 2: collect in shard-major order and serve one tick.
        let mut requests: Vec<InferRequest> = Vec::new();
        for shard in &shards {
            requests.append(&mut shard.lock().expect("shard lock").pending);
        }
        windows_submitted += requests.len() as u64;
        let responses = server.serve(&requests)?;
        decisions_returned += responses.len() as u64;
        assert_eq!(
            requests.len(),
            responses.len(),
            "serving tick dropped or duplicated windows"
        );
        // Phase 3: scatter decisions back and apply, shard-parallel.
        for response in responses {
            let s = (response.tenant_id as usize) % shard_count;
            shards[s].lock().expect("shard lock").inbound.push(response);
        }
        parallel_map(&shards, workers, |_, shard| {
            shard.lock().expect("shard lock").apply_inbound();
        });
        // Round boundary: publish any scheduled hot-swaps. The swap
        // happens on the orchestration thread between ticks, so it is
        // deterministic at any worker count; the next round's tick pins
        // the new generation.
        for swap in cfg.swaps.iter().flatten() {
            if swap.after_round == round {
                let replacement = FleetModels::untrained(swap.seed)?;
                let model = match swap.kind {
                    ModelKind::Readahead => replacement.readahead,
                    ModelKind::Iosched => replacement.iosched,
                    ModelKind::Netfs => replacement.netfs,
                };
                server.swap_model(swap.kind, model)?;
            }
        }
    }

    // Merge shard telemetry and check the end-of-run invariants.
    let mut hist = Log2Hist::new();
    let mut kind_counts = [0u64; 3];
    let mut workload_counts = [0u64; 7];
    let mut decisions_applied = [0u64; 3];
    let mut applied_total = 0u64;
    for shard in &shards {
        let shard = shard.lock().expect("shard lock");
        hist.merge(&shard.hist);
        for tenant in &shard.tenants {
            assert!(
                !tenant.outstanding,
                "tenant {} ended the run with an unanswered window",
                tenant.id
            );
            assert_eq!(tenant.windows_submitted, tenant.decisions_applied);
            kind_counts[tenant.model_kind().index()] += 1;
            workload_counts[tenant.workload.index()] += 1;
            decisions_applied[tenant.model_kind().index()] += tenant.decisions_applied;
            applied_total += tenant.decisions_applied;
        }
    }
    assert_eq!(windows_submitted, decisions_returned);
    assert_eq!(windows_submitted, applied_total);

    let stats = server.stats();
    Ok(FleetReport {
        summary: FleetSummary {
            tenants: cfg.tenants,
            rounds: cfg.rounds,
            shards: shard_count,
            kind_counts,
            workload_counts,
            windows_submitted,
            decisions_returned,
            decisions_applied,
            forward_passes: stats.forward_passes,
            batch_sizes: stats.batch_sizes.iter().map(|(&s, &n)| (s, n)).collect(),
            latency: hist.snapshot(),
        },
        wall_secs: start.elapsed().as_secs_f64(),
    })
}

/// Convenience label for per-kind tables.
pub fn kind_name(index: usize) -> &'static str {
    ModelKind::ALL[index].name()
}

/// Convenience label for per-workload tables.
pub fn workload_name(index: usize) -> &'static str {
    TenantWorkload::POPULARITY[index].name()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            tenants: 96,
            rounds: 2,
            shards: 16,
            seed: 0xABCD,
            options: ServeOptions::default(),
            swaps: NO_SWAPS,
        }
    }

    #[test]
    fn a_small_fleet_runs_and_accounts_every_window_exactly_once() {
        let cfg = small_cfg();
        let report = run_fleet(&cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
        let s = &report.summary;
        assert_eq!(s.tenants, 96);
        assert_eq!(s.windows_submitted, s.decisions_returned);
        assert_eq!(s.windows_submitted, s.decisions_applied.iter().sum::<u64>());
        assert!(s.windows_submitted > 0, "no tenant harvested a window");
        assert!(s.latency.count > 0, "no latencies recorded");
        assert_eq!(s.kind_counts.iter().sum::<u64>(), 96);
        assert_eq!(s.workload_counts.iter().sum::<u64>(), 96);
    }

    #[test]
    fn worker_count_never_changes_the_summary() {
        let cfg = small_cfg();
        let run_with = |threads: &str| {
            // parallel_map reads KML_REPRO_THREADS through default_workers.
            std::env::set_var(threading::WORKERS_ENV, threads);
            let r = run_fleet(&cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
            std::env::remove_var(threading::WORKERS_ENV);
            r.summary
        };
        let one = run_with("1");
        let three = run_with("3");
        let eight = run_with("8");
        assert_eq!(one, three);
        assert_eq!(one, eight);
    }

    #[test]
    fn mid_run_swap_is_deterministic_at_any_worker_count() {
        let cfg = FleetConfig {
            rounds: 3,
            swaps: [
                Some(PlannedSwap {
                    after_round: 0,
                    kind: ModelKind::Readahead,
                    seed: 0x51AB,
                }),
                Some(PlannedSwap {
                    after_round: 1,
                    kind: ModelKind::Netfs,
                    seed: 0x51AC,
                }),
                None,
                None,
            ],
            ..small_cfg()
        };
        let run_with = |threads: &str| {
            std::env::set_var(threading::WORKERS_ENV, threads);
            let r = run_fleet(&cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
            std::env::remove_var(threading::WORKERS_ENV);
            r.summary
        };
        let one = run_with("1");
        let three = run_with("3");
        let eight = run_with("8");
        assert_eq!(one, three);
        assert_eq!(one, eight);
        // The swap is real: the same fleet without it decides differently
        // (replacement models are seeded to differ from the originals).
        let unswapped = run_fleet(
            &FleetConfig {
                swaps: NO_SWAPS,
                ..cfg
            },
            FleetModels::untrained(cfg.seed).unwrap(),
        )
        .unwrap();
        assert_ne!(one, unswapped.summary, "planned swaps had no effect");
    }

    #[test]
    fn batched_and_serial_serving_produce_identical_fleets() {
        let cfg = small_cfg();
        let batched = run_fleet(&cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
        let serial_cfg = FleetConfig {
            options: ServeOptions {
                serial_inference: true,
                ..ServeOptions::default()
            },
            ..cfg
        };
        let serial = run_fleet(&serial_cfg, FleetModels::untrained(cfg.seed).unwrap()).unwrap();
        // Everything but the serving mechanics (forward-pass count and
        // batch-size distribution) must match bit for bit.
        let mut b = batched.summary.clone();
        let mut s = serial.summary.clone();
        assert!(b.forward_passes < s.forward_passes, "batching coalesced");
        b.forward_passes = 0;
        s.forward_passes = 0;
        b.batch_sizes.clear();
        s.batch_sizes.clear();
        assert_eq!(b, s);
    }
}
