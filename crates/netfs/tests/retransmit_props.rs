//! Property tests for the RPC retransmission state machine: under *any*
//! seeded fault schedule — arbitrary loss, duplication, reordering and
//! jitter rates, bursty or steady — every call the client issues completes
//! exactly once, the double-entry packet accounting reconciles, and lost
//! packets always cost virtual time.

use kernel_sim::{DeviceProfile, FaultConfig, SimConfig};
use netfs::{NetProfile, NfsMount, RSIZE_MAX_KB, RSIZE_MIN_KB};
use proptest::prelude::*;

/// A mount over an arbitrary fault shape. Rates are capped below 1.0 so
/// runs terminate via completion rather than give-up in most cases, but
/// loss up to 0.6 still forces deep backoff ladders.
fn arbitrary_mount(
    seed: u64,
    net_loss: f64,
    net_dup: f64,
    net_reorder: f64,
    net_jitter: f64,
    burst_period_ns: u64,
    burst_frac: f64,
) -> NfsMount {
    let profile = NetProfile {
        name: "proptest",
        rtt_ns: 1_000_000,
        ns_per_page: 10_000,
        per_rpc_ns: 20_000,
        base_rto_ns: 5_000_000,
        frag_pages: 8,
        faults: FaultConfig {
            seed,
            net_loss,
            net_dup,
            net_reorder,
            net_jitter,
            net_jitter_ns: 500_000,
            ..FaultConfig::off()
        },
        burst_period_ns,
        burst_frac,
    };
    NfsMount::new(
        profile,
        SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: 4096,
            ..SimConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once completion: whatever the packet weather, every issued
    /// RPC returns to the caller exactly once (success or give-up error),
    /// and the full double-entry packet ledger reconciles at quiescence.
    #[test]
    fn every_rpc_completes_exactly_once_under_any_fault_schedule(
        seed in any::<u64>(),
        net_loss in 0.0f64..0.6,
        net_dup in 0.0f64..0.3,
        net_reorder in 0.0f64..0.3,
        net_jitter in 0.0f64..0.5,
        steady in any::<bool>(),
        burst_period_ns in 100_000_000u64..2_000_000_000,
        burst_frac in 0.1f64..0.9,
        rsize_kb in RSIZE_MIN_KB..=RSIZE_MAX_KB,
        ops in proptest::collection::vec((0u64..4000, 1u64..128, any::<bool>()), 1..40)
    ) {
        let mut m = arbitrary_mount(
            seed, net_loss, net_dup, net_reorder, net_jitter,
            if steady { 0 } else { burst_period_ns }, burst_frac,
        );
        let f = m.create_file(1 << 13);
        m.set_rsize_kb(rsize_kb);
        m.set_wsize_kb(rsize_kb);
        let mut callers_completions: u64 = 0;
        for (page, npages, is_write) in ops {
            let page = page.min((1 << 13) - npages);
            // A failed multi-chunk op stops at the failing chunk, so count
            // completions from the client's own ledger delta instead.
            let before = m.stats().rpcs_completed;
            let _ = if is_write {
                m.write(f, page, npages)
            } else {
                m.read(f, page, npages)
            };
            let after = m.stats().rpcs_completed;
            callers_completions += after - before;
        }
        let s = m.stats();
        prop_assert_eq!(s.rpcs_completed, s.rpcs_issued,
            "every issued RPC must complete exactly once");
        prop_assert_eq!(s.rpcs_completed, callers_completions);
        if let Err(e) = s.reconcile() {
            return Err(TestCaseError(format!("ledger does not balance: {e}")));
        }
    }

    /// Lost packets are never free: any run that loses at least one packet
    /// must burn strictly more virtual time than the same op stream over a
    /// clean link, and every timeout corresponds to clock movement.
    #[test]
    fn dropped_packets_always_cost_virtual_time(
        seed in any::<u64>(),
        net_loss in 0.05f64..0.5,
        ops in proptest::collection::vec((0u64..2000, 1u64..64), 1..30)
    ) {
        let run = |loss: f64| {
            let mut m = arbitrary_mount(seed, loss, 0.0, 0.0, 0.0, 0, 0.0);
            let f = m.create_file(1 << 12);
            for &(page, npages) in &ops {
                let page = page.min((1 << 12) - npages);
                let _ = m.read(f, page, npages);
            }
            (m.now_ns(), m.stats())
        };
        let (clean_ns, clean_stats) = run(0.0);
        let (lossy_ns, lossy_stats) = run(net_loss);
        prop_assert_eq!(clean_stats.packets_lost(), 0);
        if lossy_stats.packets_lost() > 0 {
            prop_assert!(lossy_ns > clean_ns,
                "{} lost packets left the clock untouched: {lossy_ns} vs {clean_ns}",
                lossy_stats.packets_lost());
            prop_assert!(lossy_stats.timeouts > 0);
        }
        if let Err(e) = lossy_stats.reconcile() {
            return Err(TestCaseError(format!("lossy ledger: {e}")));
        }
    }

    /// Determinism: the same seed and op stream produce bit-identical
    /// stats and final clocks, regardless of how hostile the schedule is.
    #[test]
    fn fault_schedules_replay_bit_identically(
        seed in any::<u64>(),
        net_loss in 0.0f64..0.5,
        net_dup in 0.0f64..0.3,
        ops in proptest::collection::vec((0u64..2000, 1u64..64), 1..20)
    ) {
        let run = || {
            let mut m = arbitrary_mount(seed, net_loss, net_dup, 0.1, 0.2,
                500_000_000, 0.5);
            let f = m.create_file(1 << 12);
            for &(page, npages) in &ops {
                let page = page.min((1 << 12) - npages);
                let _ = m.read(f, page, npages);
            }
            (m.now_ns(), m.stats())
        };
        prop_assert_eq!(run(), run());
    }
}
