//! netfs: the simulated network-storage path and its KML closed loop.
//!
//! The paper's framework tunes storage knobs wherever a workload-dependent
//! sweet spot exists; NFS's per-mount `rsize`/`wsize` transfer sizes are
//! the canonical network-side example (§6 names network file systems as a
//! target). This crate builds that path end to end, deterministically:
//!
//! - [`transport`] — the link model: latency, bandwidth, per-fragment
//!   loss, duplication, reordering and jitter, optionally phased into
//!   congestion bursts, all driven by the counter-based
//!   [`kernel_sim::FaultPlan`] packet extension so schedules replay
//!   byte-identically.
//! - [`server`] — an NFS-like server over a [`kernel_sim::Sim`] kernel,
//!   with the duplicate-request cache that makes at-least-once delivery
//!   safe.
//! - [`mount`] — the robust client: timeout, exponential backoff,
//!   retransmission with xid reuse, exactly-once completion, and the
//!   clamped `rsize`/`wsize` knobs. Every packet is double-entry
//!   accounted in [`NetStats`].
//! - [`tuner`] — the KML application: RPC tracepoints → shared windowed
//!   featurizer → calm/congested classifier → rsize actuation.
//! - [`closed_loop`] — the E9 experiment: fixed-rsize baselines vs the
//!   tuned mount across three network profiles.
//!
//! Large transfers amortize round trips; small transfers bound the blast
//! radius of a lost fragment. On a phased link neither choice wins both
//! regimes — the closed loop's job is to track the phase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_loop;
pub mod mount;
pub mod server;
pub mod transport;
pub mod tuner;

pub use closed_loop::{
    compare, run_fixed, run_kml, NetOutcome, NetRunConfig, NetRunReport, FIXED_RSIZES_KB,
};
pub use mount::{NetStats, NfsMount, DEFAULT_RSIZE_KB, RSIZE_MAX_KB, RSIZE_MIN_KB};
pub use server::{NfsServer, RpcOp};
pub use transport::{Leg, NetProfile, Transport};
pub use tuner::{
    train_rsize_model, RsizeDecision, RsizeFeatures, RsizePolicy, RsizeTuner, RsizeTunerModel,
    NUM_RSIZE_FEATURES,
};
