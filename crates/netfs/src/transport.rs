//! The deterministic RPC transport model.
//!
//! One [`NetProfile`] describes a link the way
//! [`kernel_sim::DeviceProfile`] describes a disk: propagation latency,
//! serialization bandwidth, a per-RPC processing overhead, and a fault
//! shape (per-fragment loss, duplication, reordering, background jitter),
//! optionally phased into congestion bursts. All packet-level decisions
//! come from a dedicated [`FaultPlan`] — the same counter-based splitmix64
//! machinery the device layer uses, extended with
//! [`FaultPlan::on_packet_sized`] — so a transport schedule is a pure
//! function of `(seed, packet index, clock)` and replays byte-identically.
//!
//! The transport is deliberately *not* a packet-level discrete-event
//! simulator: the client is synchronous (NFSv3 READs over a mount are
//! serviced serially per handle here), so reordering cannot express itself
//! as cross-RPC overtaking. It is instead modeled as the reordered packet
//! arriving behind the packet that overtook it — a doubled propagation
//! delay, separately counted. DESIGN.md §8 spells out the fidelity
//! argument.

use kernel_sim::{FaultConfig, FaultPlan, FaultStats, NetFault, PAGE_SIZE};

/// Shape of one simulated network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetProfile {
    /// Human-readable name (used in tables and JSON output).
    pub name: &'static str,
    /// Round-trip propagation time, ns (each leg pays half).
    pub rtt_ns: u64,
    /// Serialization cost per 4 KiB page, ns (the bandwidth term).
    pub ns_per_page: u64,
    /// Fixed server-side processing overhead per RPC, ns.
    pub per_rpc_ns: u64,
    /// Base retransmission timeout, ns (the NFS `timeo` analogue; the
    /// effective RTO adds two payload serializations and doubles per
    /// retry).
    pub base_rto_ns: u64,
    /// Wire fragment size, pages: a leg carrying `n` pages spans
    /// `ceil(n / frag_pages)` fragments and its loss probability scales
    /// accordingly.
    pub frag_pages: u64,
    /// Packet fault rates (the `net_*` fields; device rates are unused
    /// here — server-side device faults belong to the server's own plan).
    pub faults: FaultConfig,
    /// Congestion-burst period, ns. 0 means the fault rates apply steadily.
    pub burst_period_ns: u64,
    /// Fraction of each period that is the burst (loss/dup/reorder apply
    /// only inside it; background jitter applies throughout).
    pub burst_frac: f64,
}

impl NetProfile {
    /// A clean intra-datacenter link: 100 µs RTT, ~4 GiB/s, no faults.
    /// Large rsize wins outright here — per-RPC latency is the only tax.
    pub fn datacenter(seed: u64) -> NetProfile {
        NetProfile {
            name: "datacenter",
            rtt_ns: 100_000,
            ns_per_page: 1_000,
            per_rpc_ns: 15_000,
            base_rto_ns: 3_000_000,
            frag_pages: 8,
            faults: FaultConfig {
                seed,
                ..FaultConfig::off()
            },
            burst_period_ns: 0,
            burst_frac: 0.0,
        }
    }

    /// A congested WAN: 8 ms RTT, ~100 MiB/s, steady jitter, and long
    /// congestion episodes (per-fragment loss + reordering) covering 70%
    /// of each 4 s period. High RTT makes large transfers win the calm
    /// phase; per-fragment loss makes them bleed in the burst — no fixed
    /// rsize wins both.
    pub fn congested_wan(seed: u64) -> NetProfile {
        NetProfile {
            name: "congested_wan",
            rtt_ns: 8_000_000,
            ns_per_page: 40_000,
            per_rpc_ns: 50_000,
            base_rto_ns: 30_000_000,
            frag_pages: 8,
            faults: FaultConfig {
                seed,
                net_loss: 0.045,
                net_dup: 0.002,
                net_reorder: 0.01,
                net_jitter: 0.15,
                net_jitter_ns: 2_000_000,
                ..FaultConfig::off()
            },
            burst_period_ns: 4_000_000_000,
            burst_frac: 0.7,
        }
    }

    /// A lossy wireless link: 3 ms RTT, ~60 MiB/s, heavy jitter, and
    /// half-duty interference bursts with aggressive per-fragment loss
    /// and duplication. The other phased profile.
    pub fn lossy_wifi(seed: u64) -> NetProfile {
        NetProfile {
            name: "lossy_wifi",
            rtt_ns: 3_000_000,
            ns_per_page: 60_000,
            per_rpc_ns: 40_000,
            base_rto_ns: 12_000_000,
            frag_pages: 8,
            faults: FaultConfig {
                seed,
                net_loss: 0.05,
                net_dup: 0.005,
                net_reorder: 0.015,
                net_jitter: 0.25,
                net_jitter_ns: 1_500_000,
                ..FaultConfig::off()
            },
            burst_period_ns: 3_000_000_000,
            burst_frac: 0.6,
        }
    }

    /// The three experiment profiles in E9 order.
    pub fn experiment_profiles(seed: u64) -> [NetProfile; 3] {
        [
            NetProfile::datacenter(seed),
            NetProfile::congested_wan(seed),
            NetProfile::lossy_wifi(seed),
        ]
    }

    /// Whether loss/dup/reorder faults are live at simulated time `t`.
    pub fn faults_gated_on(&self, t_ns: u64) -> bool {
        if self.burst_period_ns == 0 {
            return true;
        }
        let burst_ns = (self.burst_period_ns as f64 * self.burst_frac) as u64;
        t_ns % self.burst_period_ns < burst_ns
    }

    /// Serialization time for a payload of `pages`, ns.
    pub fn wire_ns(&self, pages: u64) -> u64 {
        pages * self.ns_per_page
    }

    /// Bytes-per-second implied by `ns_per_page` (for reports).
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        PAGE_SIZE as f64 * 1e9 / self.ns_per_page.max(1) as f64
    }
}

/// Fate of one packet leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// The packet never arrives; the sender discovers this by timeout.
    Lost,
    /// The packet arrives `delay_ns` after being sent.
    Delivered {
        /// Propagation + serialization + any jitter/reorder penalty, ns.
        delay_ns: u64,
        /// The receiver sees a second copy right behind the first.
        duplicated: bool,
        /// The delay includes a reordering penalty (packet was overtaken).
        reordered: bool,
    },
}

/// The link: a profile plus its seeded packet-decision stream.
#[derive(Debug, Clone)]
pub struct Transport {
    profile: NetProfile,
    plan: FaultPlan,
}

impl Transport {
    /// Creates a transport over `profile`, seeding the packet stream from
    /// `profile.faults.seed`.
    pub fn new(profile: NetProfile) -> Transport {
        Transport {
            plan: FaultPlan::new(profile.faults),
            profile,
        }
    }

    /// The profile this transport models.
    pub fn profile(&self) -> &NetProfile {
        &self.profile
    }

    /// Packet-fault counters injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.plan.stats()
    }

    /// Decides the fate of one leg carrying `payload_pages` at simulated
    /// time `now_ns`.
    pub fn leg(&mut self, payload_pages: u64, now_ns: u64) -> Leg {
        let frags = payload_pages
            .div_ceil(self.profile.frag_pages.max(1))
            .max(1);
        let gated = self.profile.faults_gated_on(now_ns);
        let nominal = self.profile.rtt_ns / 2 + self.profile.wire_ns(payload_pages);
        match self.plan.on_packet_sized(frags, gated) {
            Some(NetFault::Drop) => Leg::Lost,
            Some(NetFault::Duplicate) => Leg::Delivered {
                delay_ns: nominal,
                duplicated: true,
                reordered: false,
            },
            Some(NetFault::Reorder) => Leg::Delivered {
                delay_ns: nominal * 2,
                duplicated: false,
                reordered: true,
            },
            Some(NetFault::Jitter { ns }) => Leg::Delivered {
                delay_ns: nominal + ns,
                duplicated: false,
                reordered: false,
            },
            None => Leg::Delivered {
                delay_ns: nominal,
                duplicated: false,
                reordered: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_profile_delivers_everything_at_nominal_delay() {
        let mut t = Transport::new(NetProfile::datacenter(1));
        for _ in 0..1000 {
            match t.leg(8, 0) {
                Leg::Delivered {
                    delay_ns,
                    duplicated,
                    reordered,
                } => {
                    assert_eq!(delay_ns, 50_000 + 8 * 1_000);
                    assert!(!duplicated && !reordered);
                }
                Leg::Lost => panic!("clean link dropped a packet"),
            }
        }
        assert_eq!(t.fault_stats().total(), 0);
    }

    #[test]
    fn loss_scales_with_payload_size() {
        let count_losses = |pages: u64| {
            let mut t = Transport::new(NetProfile::lossy_wifi(7));
            // Always in-burst (t=0 is inside the burst window).
            (0..4000).filter(|_| t.leg(pages, 0) == Leg::Lost).count()
        };
        let small = count_losses(8); // 1 fragment
        let large = count_losses(256); // 32 fragments
        assert!(
            large > small * 4,
            "loss should scale with fragments: {small} vs {large}"
        );
    }

    #[test]
    fn bursty_profiles_are_calm_between_bursts() {
        let profile = NetProfile::lossy_wifi(3);
        let burst_ns = (profile.burst_period_ns as f64 * profile.burst_frac) as u64;
        let calm_t = burst_ns + (profile.burst_period_ns - burst_ns) / 2;
        assert!(profile.faults_gated_on(0));
        assert!(!profile.faults_gated_on(calm_t));
        let mut t = Transport::new(profile);
        for _ in 0..2000 {
            assert_ne!(t.leg(64, calm_t), Leg::Lost, "calm phase dropped a packet");
        }
        assert_eq!(t.fault_stats().packets_lost, 0);
        // Background jitter still fires in the calm phase.
        assert!(t.fault_stats().packet_jitters > 0);
    }

    #[test]
    fn schedules_replay_byte_identically() {
        let run = || {
            let mut t = Transport::new(NetProfile::congested_wan(42));
            (0..3000u64)
                .map(|i| t.leg(1 + i % 256, i * 100_000))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
