//! The NFS-like server: an RPC façade over a [`kernel_sim::Sim`] kernel
//! (block device + page cache + readahead), with a duplicate-request
//! cache.
//!
//! The duplicate-request cache (DRC) is the piece that makes at-least-once
//! transport delivery safe: a retransmitted or duplicated request whose
//! xid is still cached is answered from the cache — no device work, no
//! double application of writes — exactly the NFSv2/v3 server mechanism.

use kernel_sim::{FileId, IoResult, Sim, SimConfig};

use crate::mount::NetStats;

/// Bounded xid → cached-reply window. Retransmits arrive immediately after
/// the original in the synchronous client, so a small window suffices; the
/// bound exists so the server's memory is O(1) like a real DRC.
const DRC_CAPACITY: usize = 256;

/// One RPC operation, page-granular like the underlying simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcOp {
    /// Read `npages` starting at `page`.
    Read {
        /// Target file.
        file: FileId,
        /// First page.
        page: u64,
        /// Page count (bounded by the mount's rsize).
        npages: u64,
    },
    /// Write `npages` starting at `page`.
    Write {
        /// Target file.
        file: FileId,
        /// First page.
        page: u64,
        /// Page count (bounded by the mount's wsize).
        npages: u64,
    },
}

impl RpcOp {
    /// Pages of payload carried by the *request* leg (writes carry data).
    pub fn request_payload_pages(&self) -> u64 {
        match *self {
            RpcOp::Read { .. } => 0,
            RpcOp::Write { npages, .. } => npages,
        }
    }

    /// Pages of payload carried by the *response* leg (reads carry data).
    pub fn response_payload_pages(&self) -> u64 {
        match *self {
            RpcOp::Read { npages, .. } => npages,
            RpcOp::Write { .. } => 0,
        }
    }
}

/// The server: kernel simulator + DRC.
#[derive(Debug)]
pub struct NfsServer {
    sim: Sim,
    per_rpc_ns: u64,
    drc: Vec<(u64, IoResult<u64>)>,
    drc_next: usize,
}

impl NfsServer {
    /// Boots a server over a fresh kernel with `config`, spending
    /// `per_rpc_ns` of processing time on each non-cached request.
    pub fn new(config: SimConfig, per_rpc_ns: u64) -> NfsServer {
        NfsServer {
            sim: Sim::new(config),
            per_rpc_ns,
            drc: Vec::with_capacity(DRC_CAPACITY),
            drc_next: 0,
        }
    }

    /// The server's kernel (device, page cache, clock).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Mutable access to the server's kernel (file creation, fault plans,
    /// telemetry attachment).
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Executes one arrived request. A DRC hit replays the cached reply at
    /// a quarter of the normal processing cost and touches no device
    /// state; a miss executes against the kernel and caches the reply.
    /// `stats` gets the server-side accounting either way.
    pub fn handle(&mut self, xid: u64, op: RpcOp, stats: &mut NetStats) -> IoResult<u64> {
        stats.server_seen += 1;
        if let Some(&(_, reply)) = self.drc.iter().rev().find(|&&(x, _)| x == xid) {
            stats.drc_hits += 1;
            self.sim.advance(self.per_rpc_ns / 4);
            return reply;
        }
        self.sim.advance(self.per_rpc_ns);
        let reply = match op {
            RpcOp::Read { file, page, npages } => self.sim.read(file, page, npages),
            RpcOp::Write { file, page, npages } => self.sim.write(file, page, npages),
        };
        if self.drc.len() < DRC_CAPACITY {
            self.drc.push((xid, reply));
        } else {
            self.drc[self.drc_next] = (xid, reply);
            self.drc_next = (self.drc_next + 1) % DRC_CAPACITY;
        }
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::DeviceProfile;

    fn server() -> (NfsServer, FileId) {
        let mut s = NfsServer::new(
            SimConfig {
                device: DeviceProfile::nvme(),
                cache_pages: 4096,
                ..SimConfig::default()
            },
            10_000,
        );
        let f = s.sim_mut().create_file(1 << 16);
        (s, f)
    }

    #[test]
    fn drc_replays_cached_replies_without_device_work() {
        let (mut s, f) = server();
        let mut stats = NetStats::default();
        let op = RpcOp::Read {
            file: f,
            page: 0,
            npages: 8,
        };
        let first = s.handle(1, op, &mut stats);
        let reads_after_first = s.sim().stats().logical_reads;
        let replay = s.handle(1, op, &mut stats);
        assert_eq!(first, replay);
        assert_eq!(stats.server_seen, 2);
        assert_eq!(stats.drc_hits, 1);
        assert_eq!(
            s.sim().stats().logical_reads,
            reads_after_first,
            "DRC hit must not touch the kernel"
        );
    }

    #[test]
    fn drc_makes_retransmitted_writes_idempotent() {
        let (mut s, f) = server();
        let mut stats = NetStats::default();
        let op = RpcOp::Write {
            file: f,
            page: 64,
            npages: 4,
        };
        s.handle(9, op, &mut stats).unwrap();
        let writes_after_first = s.sim().stats().logical_writes;
        s.handle(9, op, &mut stats).unwrap();
        assert_eq!(s.sim().stats().logical_writes, writes_after_first);
    }

    #[test]
    fn drc_evicts_oldest_beyond_capacity() {
        let (mut s, f) = server();
        let mut stats = NetStats::default();
        for xid in 0..(DRC_CAPACITY as u64 + 10) {
            let op = RpcOp::Read {
                file: f,
                page: xid % 100,
                npages: 1,
            };
            s.handle(xid, op, &mut stats).unwrap();
        }
        // xid 0 was evicted: handling it again is a fresh execution.
        let hits_before = stats.drc_hits;
        s.handle(
            0,
            RpcOp::Read {
                file: f,
                page: 0,
                npages: 1,
            },
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.drc_hits, hits_before);
    }
}
