//! The robust RPC client: one NFS-like mount with timeout, exponential
//! backoff, retransmission, and exactly-once completion semantics.
//!
//! The completion contract is the NFS client's: every issued RPC returns
//! to the caller **exactly once** — retransmissions reuse the xid, any
//! response matching an outstanding xid completes the call, and late or
//! duplicated responses for an already-completed xid are discarded (and
//! counted). The server side pairs this with a duplicate-request cache so
//! at-least-once delivery never applies an operation twice. Every counter
//! a packet can touch is kept in [`NetStats`], and
//! [`NetStats::reconcile`] proves the books balance — the identity the
//! kml-dst netfs invariants check after every step.

use kernel_sim::{FileId, IoError, IoErrorKind, IoResult, SimConfig};
use kml_collect::event::{RpcEvent, RpcEventKind};
use kml_collect::ringbuf::Producer;
use kml_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::server::{NfsServer, RpcOp};
use crate::transport::{Leg, NetProfile, Transport};

/// Metric name prefix for the mount's RPC metrics.
pub const RPC_METRIC_PREFIX: &str = "netfs.rpc";

/// Smallest rsize/wsize the mount policy allows, KiB.
pub const RSIZE_MIN_KB: u32 = 16;
/// Largest rsize/wsize the mount policy allows, KiB.
pub const RSIZE_MAX_KB: u32 = 1024;
/// The mount default (the common NFS default of 256 KiB).
pub const DEFAULT_RSIZE_KB: u32 = 256;

/// Attempts before the client gives up and fails the call (the `retrans`
/// analogue; far beyond what any surviving link needs).
const MAX_ATTEMPTS: u32 = 32;

/// Every counter the RPC path maintains. All transmissions, losses,
/// duplications and completions are accounted here; the identities in
/// [`NetStats::reconcile`] tie them together.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Calls started (one per caller-visible RPC).
    pub rpcs_issued: u64,
    /// Calls returned to the caller (== `rpcs_issued` at quiescence:
    /// the exactly-once half of the contract).
    pub rpcs_completed: u64,
    /// Completions that were give-up failures after [`MAX_ATTEMPTS`].
    pub rpcs_failed: u64,
    /// Request transmissions (first sends + retransmissions).
    pub requests_sent: u64,
    /// Retransmissions (`requests_sent - rpcs_issued`).
    pub retransmits: u64,
    /// Request packets dropped in flight.
    pub requests_lost: u64,
    /// Extra request copies delivered by transport duplication.
    pub requests_duplicated: u64,
    /// Requests that arrived at the server (each produces one response).
    pub server_seen: u64,
    /// Arrived requests answered from the duplicate-request cache.
    pub drc_hits: u64,
    /// Response packets dropped in flight.
    pub responses_lost: u64,
    /// Extra response copies delivered by transport duplication.
    pub responses_duplicated: u64,
    /// Responses discarded because their xid had already completed.
    pub duplicate_responses_dropped: u64,
    /// Timer expiries (each triggers a retransmission or give-up).
    pub timeouts: u64,
    /// Legs delivered with a reordering penalty.
    pub reorders: u64,
}

impl NetStats {
    /// Checks the retransmit-accounting identities. Returns the first
    /// violated identity as an error string (the kml-dst
    /// `I7.retransmit-reconciles` invariant calls this every step).
    pub fn reconcile(&self) -> Result<(), String> {
        let sent_minus_lost = self
            .requests_sent
            .checked_sub(self.requests_lost)
            .ok_or("more requests lost than sent")?;
        if self.server_seen != sent_minus_lost + self.requests_duplicated {
            return Err(format!(
                "server saw {} requests, expected {} sent - {} lost + {} duplicated",
                self.server_seen, self.requests_sent, self.requests_lost, self.requests_duplicated
            ));
        }
        if self.requests_sent != self.rpcs_issued + self.retransmits {
            return Err(format!(
                "{} requests sent != {} issued + {} retransmits",
                self.requests_sent, self.rpcs_issued, self.retransmits
            ));
        }
        // Every arrived request yields one response; responses either get
        // lost, complete their call, or are dropped as duplicates.
        let responses_delivered = self
            .server_seen
            .checked_sub(self.responses_lost)
            .ok_or("more responses lost than sent")?
            + self.responses_duplicated;
        let completions_by_response = self
            .rpcs_completed
            .checked_sub(self.rpcs_failed)
            .ok_or("more failures than completions")?;
        if responses_delivered != completions_by_response + self.duplicate_responses_dropped {
            return Err(format!(
                "{responses_delivered} responses delivered != {completions_by_response} \
                 completions + {} duplicate drops",
                self.duplicate_responses_dropped
            ));
        }
        if self.rpcs_completed > self.rpcs_issued {
            return Err(format!(
                "{} completions exceed {} issued calls (duplicate delivery)",
                self.rpcs_completed, self.rpcs_issued
            ));
        }
        Ok(())
    }

    /// Packets lost in either direction.
    pub fn packets_lost(&self) -> u64 {
        self.requests_lost + self.responses_lost
    }
}

/// RPC-path telemetry (lazily bound to the server sim's registry, like the
/// readahead tuner's loop metrics).
#[derive(Debug)]
struct MountTelemetry {
    call_wall_ns: Histogram,
    latency_ns: Histogram,
    completed_total: Counter,
    retransmit_total: Counter,
    timeout_total: Counter,
    duplicate_drop_total: Counter,
    rsize_bytes: Gauge,
}

impl MountTelemetry {
    fn noop() -> Self {
        MountTelemetry {
            call_wall_ns: Histogram::noop(),
            latency_ns: Histogram::noop(),
            completed_total: Counter::noop(),
            retransmit_total: Counter::noop(),
            timeout_total: Counter::noop(),
            duplicate_drop_total: Counter::noop(),
            rsize_bytes: Gauge::noop(),
        }
    }

    fn bind(registry: &Registry) -> Self {
        let p = RPC_METRIC_PREFIX;
        MountTelemetry {
            call_wall_ns: registry.histogram(&format!("{p}.call_wall_ns")),
            latency_ns: registry.histogram(&format!("{p}.latency_ns")),
            completed_total: registry.counter(&format!("{p}.completed_total")),
            retransmit_total: registry.counter(&format!("{p}.retransmit_total")),
            timeout_total: registry.counter(&format!("{p}.timeout_total")),
            duplicate_drop_total: registry.counter(&format!("{p}.duplicate_drop_total")),
            rsize_bytes: registry.gauge("netfs.mount.rsize_bytes"),
        }
    }
}

/// One mounted NFS-like filesystem: server + transport + the per-mount
/// `rsize`/`wsize` knobs the KML loop actuates.
#[derive(Debug)]
pub struct NfsMount {
    server: NfsServer,
    transport: Transport,
    rsize_kb: u32,
    wsize_kb: u32,
    stats: NetStats,
    next_xid: u64,
    trace: Option<Producer<RpcEvent>>,
    events_emitted: u64,
    telemetry: MountTelemetry,
    telemetry_bound: bool,
}

impl NfsMount {
    /// Mounts a fresh server (built from `config`) over `profile`'s link,
    /// with both transfer sizes at [`DEFAULT_RSIZE_KB`].
    pub fn new(profile: NetProfile, config: SimConfig) -> NfsMount {
        let per_rpc_ns = profile.per_rpc_ns;
        NfsMount {
            server: NfsServer::new(config, per_rpc_ns),
            transport: Transport::new(profile),
            rsize_kb: DEFAULT_RSIZE_KB,
            wsize_kb: DEFAULT_RSIZE_KB,
            stats: NetStats::default(),
            next_xid: 1,
            trace: None,
            events_emitted: 0,
            telemetry: MountTelemetry::noop(),
            telemetry_bound: false,
        }
    }

    /// The server behind the mount.
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// Mutable server access (file creation, server fault plans, attaching
    /// a telemetry registry to the kernel).
    pub fn server_mut(&mut self) -> &mut NfsServer {
        &mut self.server
    }

    /// The network profile the mount runs over.
    pub fn profile(&self) -> &NetProfile {
        self.transport.profile()
    }

    /// Creates a file on the server (setup convenience).
    pub fn create_file(&mut self, pages: u64) -> FileId {
        self.server.sim_mut().create_file(pages)
    }

    /// The shared virtual clock, ns.
    pub fn now_ns(&self) -> u64 {
        self.server.sim().now_ns()
    }

    /// RPC accounting so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Packet-fault counters the transport injected so far.
    pub fn transport_fault_stats(&self) -> kernel_sim::FaultStats {
        self.transport.fault_stats()
    }

    /// Attaches the RPC tracepoint producer feeding the KML ring.
    pub fn attach_rpc_trace(&mut self, producer: Producer<RpcEvent>) {
        self.trace = Some(producer);
    }

    /// RPC events emitted into the ring so far (for exact ring
    /// reconciliation, like `Sim::trace_emitted`).
    pub fn rpc_events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// The read transfer size in force, KiB.
    pub fn rsize_kb(&self) -> u32 {
        self.rsize_kb
    }

    /// The write transfer size in force, KiB.
    pub fn wsize_kb(&self) -> u32 {
        self.wsize_kb
    }

    /// Sets the read transfer size, clamped to
    /// `[RSIZE_MIN_KB, RSIZE_MAX_KB]`. Returns the applied value — the
    /// actuation knob the rsize tuner drives.
    pub fn set_rsize_kb(&mut self, kb: u32) -> u32 {
        self.rsize_kb = kb.clamp(RSIZE_MIN_KB, RSIZE_MAX_KB);
        self.telemetry
            .rsize_bytes
            .set(u64::from(self.rsize_kb) * 1024);
        self.rsize_kb
    }

    /// Sets the write transfer size, with the same clamping.
    pub fn set_wsize_kb(&mut self, kb: u32) -> u32 {
        self.wsize_kb = kb.clamp(RSIZE_MIN_KB, RSIZE_MAX_KB);
        self.wsize_kb
    }

    fn rsize_pages(&self) -> u64 {
        u64::from(self.rsize_kb) * 1024 / kernel_sim::PAGE_SIZE
    }

    fn wsize_pages(&self) -> u64 {
        u64::from(self.wsize_kb) * 1024 / kernel_sim::PAGE_SIZE
    }

    /// Reads `npages` at `page`, split into one READ RPC per `rsize`
    /// chunk. Returns the elapsed virtual time, ns.
    ///
    /// # Errors
    ///
    /// Returns the first RPC failure (server I/O error or client
    /// give-up); earlier chunks stay cached server-side, like a real
    /// partially-failed read.
    pub fn read(&mut self, file: FileId, page: u64, npages: u64) -> IoResult<u64> {
        let start = self.now_ns();
        let chunk = self.rsize_pages().max(1);
        let mut at = page;
        let end = page + npages;
        while at < end {
            let n = chunk.min(end - at);
            self.call(RpcOp::Read {
                file,
                page: at,
                npages: n,
            })?;
            at += n;
        }
        Ok(self.now_ns() - start)
    }

    /// Writes `npages` at `page`, split into one WRITE RPC per `wsize`
    /// chunk. Returns the elapsed virtual time, ns.
    ///
    /// # Errors
    ///
    /// Returns the first RPC failure.
    pub fn write(&mut self, file: FileId, page: u64, npages: u64) -> IoResult<u64> {
        let start = self.now_ns();
        let chunk = self.wsize_pages().max(1);
        let mut at = page;
        let end = page + npages;
        while at < end {
            let n = chunk.min(end - at);
            self.call(RpcOp::Write {
                file,
                page: at,
                npages: n,
            })?;
            at += n;
        }
        Ok(self.now_ns() - start)
    }

    /// Issues one RPC and blocks until its exactly-once completion:
    /// transmit, wait for the response or the retransmission timer,
    /// back off exponentially, retransmit with the same xid, and give up
    /// (with an error completion) after [`MAX_ATTEMPTS`].
    ///
    /// # Errors
    ///
    /// Propagates the server's I/O error, or a client-side give-up error
    /// after `MAX_ATTEMPTS` fruitless attempts.
    pub fn call(&mut self, op: RpcOp) -> IoResult<u64> {
        if !self.telemetry_bound {
            self.telemetry = MountTelemetry::bind(self.server.sim().telemetry());
            self.telemetry
                .rsize_bytes
                .set(u64::from(self.rsize_kb) * 1024);
            self.telemetry_bound = true;
        }
        let wall = self.telemetry.call_wall_ns.clone();
        let span = kml_telemetry::Span::start(&wall);
        let result = self.call_inner(op);
        span.finish();
        result
    }

    fn call_inner(&mut self, op: RpcOp) -> IoResult<u64> {
        let xid = self.next_xid;
        self.next_xid += 1;
        self.stats.rpcs_issued += 1;
        let t0 = self.now_ns();
        let payload = op.request_payload_pages().max(op.response_payload_pages());
        self.emit(RpcEventKind::Call, xid, payload, 0);
        let base_rto =
            self.transport.profile().base_rto_ns + 2 * self.transport.profile().wire_ns(payload);

        let mut attempt: u32 = 0;
        loop {
            if attempt >= MAX_ATTEMPTS {
                // Give up: the call still completes exactly once, as an
                // error, after having burned real (virtual) time.
                self.stats.rpcs_completed += 1;
                self.stats.rpcs_failed += 1;
                let now = self.now_ns();
                self.emit(RpcEventKind::Reply, xid, payload, now - t0);
                self.telemetry.completed_total.inc();
                self.telemetry.latency_ns.record(now - t0);
                return Err(self.give_up_error(op, now - t0));
            }
            // Exponential backoff, capped at 4x so a client buried in a
            // long congestion burst keeps sampling the link often enough
            // to notice recovery (NFS clients cap `timeo` the same way).
            let attempt_start = self.now_ns();
            let deadline = attempt_start + (base_rto << attempt.min(2));
            self.stats.requests_sent += 1;
            if attempt > 0 {
                self.stats.retransmits += 1;
                self.emit(RpcEventKind::Retransmit, xid, payload, 0);
                self.telemetry.retransmit_total.inc();
            }

            // Request leg.
            let req_payload = op.request_payload_pages();
            match self.transport.leg(req_payload, attempt_start) {
                Leg::Lost => {
                    self.stats.requests_lost += 1;
                    self.advance_to(deadline);
                    self.stats.timeouts += 1;
                    self.telemetry.timeout_total.inc();
                    attempt += 1;
                    continue;
                }
                Leg::Delivered {
                    delay_ns,
                    duplicated,
                    reordered,
                } => {
                    if reordered {
                        self.stats.reorders += 1;
                    }
                    self.server.sim_mut().advance(delay_ns);
                    let reply = self.server.handle(xid, op, &mut self.stats);
                    if duplicated {
                        // The second copy arrives right behind the first;
                        // the DRC absorbs it and its response is discarded
                        // by the client as a duplicate.
                        self.stats.requests_duplicated += 1;
                        let _ = self.server.handle(xid, op, &mut self.stats);
                        self.drop_duplicate(xid, payload);
                    }

                    // Response leg.
                    let resp_payload = op.response_payload_pages();
                    match self.transport.leg(resp_payload, self.now_ns()) {
                        Leg::Lost => {
                            self.stats.responses_lost += 1;
                            self.advance_to(deadline);
                            self.stats.timeouts += 1;
                            self.telemetry.timeout_total.inc();
                            attempt += 1;
                            continue;
                        }
                        Leg::Delivered {
                            delay_ns,
                            duplicated: resp_dup,
                            reordered: resp_reordered,
                        } => {
                            if resp_reordered {
                                self.stats.reorders += 1;
                            }
                            self.server.sim_mut().advance(delay_ns);
                            if resp_dup {
                                self.stats.responses_duplicated += 1;
                                self.drop_duplicate(xid, payload);
                            }
                            let now = self.now_ns();
                            if now > deadline {
                                // The response beat the caller's patience
                                // but not the timer: a retransmission is
                                // already in flight. Resolve it for the
                                // books — its reply is a pure duplicate.
                                self.stats.timeouts += 1;
                                self.telemetry.timeout_total.inc();
                                self.shadow_retransmit(xid, op, payload, now);
                            }
                            self.stats.rpcs_completed += 1;
                            self.emit(RpcEventKind::Reply, xid, payload, now - t0);
                            self.telemetry.completed_total.inc();
                            self.telemetry.latency_ns.record(now - t0);
                            return reply;
                        }
                    }
                }
            }
        }
    }

    /// Accounts for a retransmission that raced a late response. The call
    /// has already completed; the server answers from its DRC (no device
    /// work) and whatever comes back is dropped as a duplicate. The clock
    /// does not move — these packets ride behind the completion.
    fn shadow_retransmit(&mut self, xid: u64, op: RpcOp, payload: u64, now: u64) {
        self.stats.requests_sent += 1;
        self.stats.retransmits += 1;
        self.emit(RpcEventKind::Retransmit, xid, payload, 0);
        self.telemetry.retransmit_total.inc();
        match self.transport.leg(op.request_payload_pages(), now) {
            Leg::Lost => {
                self.stats.requests_lost += 1;
            }
            Leg::Delivered {
                duplicated,
                reordered,
                ..
            } => {
                if reordered {
                    self.stats.reorders += 1;
                }
                let copies = if duplicated {
                    self.stats.requests_duplicated += 1;
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    // Guaranteed DRC hit: the original executed moments ago.
                    self.stats.server_seen += 1;
                    self.stats.drc_hits += 1;
                    match self.transport.leg(op.response_payload_pages(), now) {
                        Leg::Lost => self.stats.responses_lost += 1,
                        Leg::Delivered {
                            duplicated: d2,
                            reordered: r2,
                            ..
                        } => {
                            if r2 {
                                self.stats.reorders += 1;
                            }
                            if d2 {
                                self.stats.responses_duplicated += 1;
                                self.drop_duplicate(xid, payload);
                            }
                            self.drop_duplicate(xid, payload);
                        }
                    }
                }
            }
        }
    }

    fn drop_duplicate(&mut self, xid: u64, payload: u64) {
        self.stats.duplicate_responses_dropped += 1;
        self.emit(RpcEventKind::DuplicateDrop, xid, payload, 0);
        self.telemetry.duplicate_drop_total.inc();
    }

    fn advance_to(&mut self, deadline: u64) {
        let now = self.now_ns();
        if deadline > now {
            self.server.sim_mut().advance(deadline - now);
        }
    }

    fn give_up_error(&self, op: RpcOp, ns: u64) -> IoError {
        let (kind, file, page, npages) = match op {
            RpcOp::Read { file, page, npages } => (IoErrorKind::Read, file, page, npages),
            RpcOp::Write { file, page, npages } => (IoErrorKind::Write, file, page, npages),
        };
        IoError {
            kind,
            inode: self.server.sim().file_inode(file),
            page,
            npages,
            completed: 0,
            ns,
        }
    }

    fn emit(&mut self, kind: RpcEventKind, xid: u64, pages: u64, latency_ns: u64) {
        if let Some(trace) = &self.trace {
            trace.push(RpcEvent {
                kind,
                xid,
                pages,
                latency_ns,
                time_ns: self.now_ns(),
            });
            self.events_emitted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::{DeviceProfile, FaultConfig};
    use kml_collect::RingBuffer;

    fn mount(profile: NetProfile) -> (NfsMount, FileId) {
        let mut m = NfsMount::new(
            profile,
            SimConfig {
                device: DeviceProfile::nvme(),
                cache_pages: 8192,
                ..SimConfig::default()
            },
        );
        let f = m.create_file(1 << 18);
        (m, f)
    }

    #[test]
    fn clean_read_round_trips_and_advances_the_clock() {
        let (mut m, f) = mount(NetProfile::datacenter(1));
        let t0 = m.now_ns();
        let elapsed = m.read(f, 0, 64).expect("clean read succeeds");
        assert!(elapsed > 0);
        assert_eq!(m.now_ns() - t0, elapsed);
        let s = m.stats();
        assert_eq!(s.rpcs_issued, 1, "64 pages fit one 256 KiB rsize RPC");
        assert_eq!(s.rpcs_completed, 1);
        assert_eq!(s.retransmits, 0);
        s.reconcile().expect("books balance");
    }

    #[test]
    fn rsize_controls_the_rpc_split() {
        let (mut m, f) = mount(NetProfile::datacenter(2));
        assert_eq!(m.set_rsize_kb(32), 32);
        m.read(f, 0, 64).unwrap(); // 64 pages = 256 KiB → 8 RPCs at 32 KiB
        assert_eq!(m.stats().rpcs_issued, 8);
    }

    #[test]
    fn rsize_clamps_to_policy_bounds() {
        let (mut m, _) = mount(NetProfile::datacenter(3));
        assert_eq!(m.set_rsize_kb(1), RSIZE_MIN_KB);
        assert_eq!(m.set_rsize_kb(1 << 20), RSIZE_MAX_KB);
        assert_eq!(m.set_wsize_kb(0), RSIZE_MIN_KB);
    }

    #[test]
    fn lossy_link_retransmits_but_completes_exactly_once() {
        let mut profile = NetProfile::datacenter(17);
        profile.faults = FaultConfig {
            seed: 17,
            net_loss: 0.15,
            net_dup: 0.05,
            ..FaultConfig::off()
        };
        let (mut m, f) = mount(profile);
        m.set_rsize_kb(64);
        for i in 0..40 {
            m.read(f, i * 64, 32).expect("retransmission recovers");
        }
        let s = m.stats();
        assert_eq!(s.rpcs_completed, s.rpcs_issued);
        assert_eq!(s.rpcs_failed, 0);
        assert!(s.retransmits > 0, "15% loss must force retransmissions");
        assert!(s.timeouts > 0);
        s.reconcile().expect("books balance under loss");
    }

    #[test]
    fn total_loss_gives_up_with_an_error_after_burning_time() {
        let mut profile = NetProfile::datacenter(5);
        profile.faults = FaultConfig {
            seed: 5,
            net_loss: 1.0,
            ..FaultConfig::off()
        };
        let (mut m, f) = mount(profile);
        let t0 = m.now_ns();
        let err = m.read(f, 0, 8).expect_err("dead link must fail");
        assert_eq!(err.kind, IoErrorKind::Read);
        assert!(m.now_ns() > t0, "timeouts must advance the clock");
        let s = m.stats();
        assert_eq!(s.rpcs_failed, 1);
        assert_eq!(s.rpcs_completed, s.rpcs_issued);
        s.reconcile().expect("books balance even on give-up");
    }

    #[test]
    fn duplicated_replies_are_dropped_not_delivered() {
        let mut profile = NetProfile::datacenter(11);
        profile.faults = FaultConfig {
            seed: 11,
            net_dup: 0.5,
            ..FaultConfig::off()
        };
        let (mut m, f) = mount(profile);
        m.set_rsize_kb(16);
        for i in 0..30 {
            m.read(f, i * 16, 16).unwrap();
        }
        let s = m.stats();
        assert!(s.duplicate_responses_dropped > 0);
        assert_eq!(s.rpcs_completed, s.rpcs_issued);
        assert!(s.drc_hits > 0, "duplicated requests must hit the DRC");
        s.reconcile().expect("books balance under duplication");
    }

    #[test]
    fn rpc_events_feed_the_ring_exactly() {
        let (mut m, f) = mount(NetProfile::datacenter(23));
        let (producer, mut consumer) = RingBuffer::with_capacity(1 << 12).split();
        m.attach_rpc_trace(producer);
        m.read(f, 0, 256).unwrap();
        let drained: Vec<RpcEvent> = std::iter::from_fn(|| consumer.pop()).collect();
        assert_eq!(drained.len() as u64, m.rpc_events_emitted());
        let calls = drained
            .iter()
            .filter(|e| e.kind == RpcEventKind::Call)
            .count() as u64;
        let replies: Vec<_> = drained
            .iter()
            .filter(|e| e.kind == RpcEventKind::Reply)
            .collect();
        assert_eq!(calls, m.stats().rpcs_issued);
        assert_eq!(replies.len() as u64, m.stats().rpcs_completed);
        assert!(replies.iter().all(|e| e.latency_ns > 0));
    }

    #[test]
    fn server_io_errors_complete_the_rpc_without_retransmission() {
        let (mut m, f) = mount(NetProfile::datacenter(31));
        m.server_mut()
            .sim_mut()
            .set_fault_plan(Some(kernel_sim::FaultPlan::new(FaultConfig {
                seed: 9,
                read_error: 1.0,
                ..FaultConfig::off()
            })));
        let err = m.read(f, 0, 8).expect_err("server error must surface");
        assert_eq!(err.kind, IoErrorKind::Read);
        let s = m.stats();
        assert_eq!(s.retransmits, 0, "an error reply is a completion");
        assert_eq!(s.rpcs_failed, 0, "not a client give-up");
        s.reconcile().expect("books balance");
    }
}
