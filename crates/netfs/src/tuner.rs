//! The KML application for the network path: observe the RPC stream,
//! classify the link condition, actuate the mount's `rsize`.
//!
//! The Figure 1 loop again, one layer further out than the I/O scheduler:
//! RPC tracepoints feed a ring buffer, a windowed feature vector is rolled
//! once per (simulated) window, a small classifier labels the link *calm*
//! or *congested*, and the mount's read transfer size is re-tuned from the
//! class policy. Large transfers amortize round trips on a clean link but
//! multiply the retransmission cost on a lossy one — per-fragment loss
//! means one 1 MiB READ is far more likely to die than thirty-two 32 KiB
//! READs, and each death burns a full (backed-off) RTO. No fixed rsize wins
//! both regimes of a phased link; the loop's job is to track the phase.
//!
//! Window features (the network-side analogue of the readahead features):
//!
//! 1. transmission count (replies + retransmissions — retransmissions
//!    count as records so a window that is pure stall still rolls and the
//!    tuner can act *during* a burst, not after it),
//! 2. mean RPC latency over the window (ns, across all transmissions),
//! 3. retransmit fraction — retransmissions over transmissions, in
//!    `[0, 1]` (the congestion signal),
//! 4. cumulative latency standard deviation (jitter memory),
//! 5. the rsize in force (KiB) — predictions must be conditioned on the
//!    knob that produced the observations.

use kernel_sim::SimConfig;
use kml_collect::event::{RpcEvent, RpcEventKind};
use kml_collect::featurize::{Channel, WindowedFeatures};
use kml_collect::ringbuf::Consumer;
use kml_collect::RingBuffer;
use kml_core::dataset::{Dataset, Normalizer};
use kml_core::dtree::DecisionTree;
use kml_core::loss::CrossEntropyLoss;
use kml_core::model::{Model, ModelBuilder};
use kml_core::optimizer::Sgd;
use kml_core::{KmlRng, Result};
use kml_lifecycle::{ArtifactError, ArtifactKind, LifecycleTarget, ShadowStats};
use kml_telemetry::{Counter, Gauge, Registry, Span, StageSet};
use rand::SeedableRng;

use crate::mount::NfsMount;
use crate::transport::NetProfile;

/// Number of rsize-tuner features.
pub const NUM_RSIZE_FEATURES: usize = 5;

/// Link classes the model predicts.
pub const CALM: usize = 0;
/// The congested/lossy class (small transfers win here).
pub const CONGESTED: usize = 1;

/// Metric name prefix for the netfs loop metrics.
pub const LOOP_METRIC_PREFIX: &str = "netfs.loop";

/// Channel index of the per-window latency sum (window mean latency).
const CH_LAT_WIN: usize = 0;
/// Channel index of the per-window retransmit count (retransmit fraction).
const CH_RETRANS: usize = 1;
/// Channel index of the cumulative latency stats (jitter memory).
const CH_LAT_CUM: usize = 2;

/// Streaming feature extractor over the RPC event stream, built on the
/// shared window engine.
#[derive(Debug, Clone)]
pub struct RsizeFeatures {
    windows: WindowedFeatures,
}

impl Default for RsizeFeatures {
    fn default() -> Self {
        RsizeFeatures {
            windows: WindowedFeatures::new(vec![
                Channel::window_sum(),
                Channel::window_sum(),
                Channel::cumulative(),
            ]),
        }
    }
}

impl RsizeFeatures {
    /// Creates an empty extractor.
    pub fn new() -> Self {
        RsizeFeatures::default()
    }

    /// Folds one RPC event. Replies and retransmissions are both windowed
    /// records (a retransmission is evidence, and during a deep stall it
    /// is the *only* evidence); calls and duplicate drops carry no
    /// feature signal.
    pub fn push(&mut self, event: &RpcEvent) {
        match event.kind {
            RpcEventKind::Reply => {
                self.windows.push_u64(CH_LAT_WIN, event.latency_ns);
                self.windows.push_f64(CH_LAT_CUM, event.latency_ns as f64);
                self.windows.record();
            }
            RpcEventKind::Retransmit => {
                self.windows.push_u64(CH_RETRANS, 1);
                self.windows.record();
            }
            RpcEventKind::Call | RpcEventKind::DuplicateDrop => {}
        }
    }

    /// Transmissions folded into the current window.
    pub fn window_count(&self) -> u64 {
        self.windows.window_count()
    }

    /// Closes the window and returns
    /// `[transmissions, mean_latency, retransmit_fraction, latency_std,
    /// rsize]`.
    pub fn roll_window(&mut self, rsize_kb: f64) -> [f64; NUM_RSIZE_FEATURES] {
        let features = [
            self.windows.window_count() as f64,
            self.windows.mean(CH_LAT_WIN),
            self.windows.mean(CH_RETRANS),
            self.windows.std(CH_LAT_CUM),
            rsize_kb,
        ];
        self.windows.roll();
        features
    }
}

/// Class → rsize-KiB mapping (the network-side [`readahead::RaPolicy`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsizePolicy {
    per_class_kb: Vec<u32>,
}

impl RsizePolicy {
    /// Builds a policy from per-class rsize values, indexed by class.
    ///
    /// # Panics
    ///
    /// Panics if `per_class_kb` is empty.
    pub fn new(per_class_kb: Vec<u32>) -> Self {
        assert!(!per_class_kb.is_empty(), "policy needs at least one class");
        RsizePolicy { per_class_kb }
    }

    /// The default experiment policy: 1 MiB transfers when calm (round
    /// trips amortized), 256 KiB under congestion (8 fragments — small
    /// enough that most transfers survive per-fragment loss, large enough
    /// not to drown in round trips on a high-RTT link).
    pub fn experiment_default() -> Self {
        RsizePolicy::new(vec![1024, 256])
    }

    /// Best rsize for a class (clamped to the last entry for overflow).
    pub fn rsize_kb_for(&self, class: usize) -> u32 {
        self.per_class_kb[class.min(self.per_class_kb.len() - 1)]
    }

    /// Number of classes the policy covers.
    pub fn classes(&self) -> usize {
        self.per_class_kb.len()
    }
}

/// Which trained model drives the tuner.
#[derive(Debug)]
pub enum RsizeTunerModel {
    /// The link classifier network (f32, as deployed).
    NeuralNet(Box<Model<f32>>),
    /// A decision tree (the DST harness uses a deterministic stub tree).
    Tree(DecisionTree),
    /// Inference is served by a shared fleet model server: the tenant's
    /// harness calls [`RsizeTuner::poll_window`]/[`RsizeTuner::apply_class`]
    /// around a batched remote prediction, so local `predict` is a
    /// deployment error.
    Remote,
}

impl RsizeTunerModel {
    /// Decodes a model-file blob into a deployable f32 network — the
    /// hand-off format `repro netfs` uses to train once and share across
    /// parallel runs.
    ///
    /// # Errors
    ///
    /// Propagates model-file decoding errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<RsizeTunerModel> {
        Ok(RsizeTunerModel::NeuralNet(Box::new(
            kml_core::modelfile::decode::<f32>(bytes)?,
        )))
    }

    /// Predicts the link class for a feature vector.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the underlying model, and
    /// rejects local prediction on [`RsizeTunerModel::Remote`].
    pub fn predict(&mut self, features: &[f64]) -> Result<usize> {
        match self {
            RsizeTunerModel::NeuralNet(m) => m.predict(features),
            RsizeTunerModel::Tree(t) => t.predict(features),
            RsizeTunerModel::Remote => Err(kml_core::KmlError::InvalidConfig(
                "remote-served tuner has no local model".into(),
            )),
        }
    }
}

/// One entry of the tuner's decision log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsizeDecision {
    /// Simulated time of the decision, ns.
    pub time_ns: u64,
    /// Predicted link class.
    pub class: usize,
    /// rsize applied, KiB.
    pub rsize_kb: u32,
    /// Generation of the model that took the decision (1 until the first
    /// lifecycle swap).
    pub generation: u64,
}

/// Loop telemetry: per-stage spans plus decision accounting, mirroring the
/// readahead tuner's `readahead.loop.*` family.
#[derive(Debug)]
struct LoopTelemetry {
    stages: StageSet,
    decision_total: Counter,
    actuation_total: Counter,
    ring_dropped: Gauge,
}

impl LoopTelemetry {
    fn noop() -> Self {
        LoopTelemetry {
            stages: StageSet::noop(),
            decision_total: Counter::noop(),
            actuation_total: Counter::noop(),
            ring_dropped: Gauge::noop(),
        }
    }

    fn bind(registry: &Registry) -> Self {
        let p = LOOP_METRIC_PREFIX;
        LoopTelemetry {
            stages: StageSet::register(registry, p),
            decision_total: registry.counter(&format!("{p}.decision_total")),
            actuation_total: registry.counter(&format!("{p}.actuation_total")),
            ring_dropped: registry.gauge(&format!("{p}.ring_dropped_total")),
        }
    }
}

/// The closed-loop rsize tuner.
#[derive(Debug)]
pub struct RsizeTuner {
    model: RsizeTunerModel,
    policy: RsizePolicy,
    features: RsizeFeatures,
    consumer: Consumer<RpcEvent>,
    window_ns: u64,
    next_window_end: Option<u64>,
    /// Class predicted in the previous window (hysteresis state).
    last_class: Option<usize>,
    /// Asymmetric damping: growing the transfer size waits for two
    /// agreeing windows, shrinking it actuates immediately (default on).
    /// The costs are asymmetric — a false *calm* sends one huge transfer
    /// into a live burst and stalls through the whole backoff ladder,
    /// while a false *congested* merely pays some round-trip overhead for
    /// one window.
    hysteresis: bool,
    decisions: Vec<RsizeDecision>,
    telemetry: LoopTelemetry,
    telemetry_bound: bool,
    /// Generation of the active model (1 until the first lifecycle swap).
    model_generation: u64,
    /// Staged shadow candidate: infers on every window, never actuates.
    shadow: Option<RsizeTunerModel>,
    shadow_stats: ShadowStats,
    /// The shadow's prediction for the window most recently returned by
    /// [`RsizeTuner::poll_window`], folded into the agreement stats by the
    /// matching [`RsizeTuner::apply_class`].
    pending_shadow_class: Option<usize>,
}

impl RsizeTuner {
    /// The default inference cadence: 100 ms of simulated time, several
    /// windows per congestion phase of the experiment profiles.
    pub const DEFAULT_WINDOW_NS: u64 = 100_000_000;

    /// Creates a tuner over the read end of the mount's RPC ring.
    /// `window_ns` is clamped to at least 1 ns — the window-skipping loop
    /// in [`Self::on_op`] never terminates on a zero-length window.
    pub fn new(
        model: RsizeTunerModel,
        policy: RsizePolicy,
        consumer: Consumer<RpcEvent>,
        window_ns: u64,
    ) -> Self {
        RsizeTuner {
            model,
            policy,
            features: RsizeFeatures::new(),
            consumer,
            window_ns: window_ns.max(1),
            next_window_end: None,
            last_class: None,
            hysteresis: true,
            decisions: Vec::new(),
            telemetry: LoopTelemetry::noop(),
            telemetry_bound: false,
            model_generation: 1,
            shadow: None,
            shadow_stats: ShadowStats::default(),
            pending_shadow_class: None,
        }
    }

    /// Disables/enables the two-window agreement requirement before
    /// *growing* the transfer size (on by default — see the field note;
    /// shrinking always actuates immediately).
    pub fn set_hysteresis(&mut self, enabled: bool) {
        self.hysteresis = enabled;
    }

    /// The hook invoked after every mount operation: drains RPC events
    /// and, at window boundaries, infers and re-tunes the rsize.
    ///
    /// # Errors
    ///
    /// Propagates model prediction failures (dimension mismatch, or a
    /// [`RsizeTunerModel::Remote`] tuner driven locally — deployment bugs,
    /// not runtime conditions).
    pub fn on_op(&mut self, mount: &mut NfsMount) -> Result<()> {
        if let Some(features) = self.poll_window(mount) {
            let class = {
                let span = Span::start(&self.telemetry.stages.infer_ns);
                let class = self.model.predict(&features)?;
                span.finish();
                class
            };
            self.apply_class(mount, class);
        }
        Ok(())
    }

    /// Runs the *active* model on a window's feature vector (inside the
    /// inference span), without actuating — the continual-learning seam
    /// between [`Self::poll_window`] and [`Self::apply_class`], mirroring
    /// `readahead::KmlTuner::predict_active`.
    ///
    /// # Errors
    ///
    /// Propagates model prediction failures, exactly like
    /// [`Self::on_op`].
    pub fn predict_active(&mut self, features: &[f64; NUM_RSIZE_FEATURES]) -> Result<usize> {
        let span = Span::start(&self.telemetry.stages.infer_ns);
        let class = self.model.predict(features)?;
        span.finish();
        Ok(class)
    }

    /// The deterministic label oracle continual retraining trains
    /// against: a congested mount retransmits a meaningful fraction of
    /// its RPCs (feature 2), a calm one almost never does.
    pub fn heuristic_class(features: &[f64; NUM_RSIZE_FEATURES]) -> usize {
        if features[2] >= 0.3 {
            1 // congested => small rsize
        } else {
            0 // calm => large rsize
        }
    }

    /// Drains RPC events and, when a window has closed with traffic in it,
    /// rolls and returns the window's feature vector.
    ///
    /// The inference-free half of [`Self::on_op`]: the fleet's shared model
    /// server batches the returned vectors across tenants and routes each
    /// prediction back through [`Self::apply_class`]. The simulated clock
    /// does not advance between the two calls, so the split loop is
    /// bit-identical to the fused one.
    pub fn poll_window(&mut self, mount: &mut NfsMount) -> Option<[f64; NUM_RSIZE_FEATURES]> {
        if !self.telemetry_bound {
            self.telemetry = LoopTelemetry::bind(mount.server().sim().telemetry());
            self.telemetry_bound = true;
        }
        {
            let span = Span::start(&self.telemetry.stages.collect_ns);
            while let Some(event) = self.consumer.pop() {
                self.features.push(&event);
            }
            span.finish();
        }
        let now = mount.now_ns();
        let end = *self.next_window_end.get_or_insert(now + self.window_ns);
        if now < end {
            return None;
        }
        // Skip windows with no traffic entirely.
        let features = if self.features.window_count() > 0 {
            let featurize = &self.telemetry.stages.featurize_ns;
            let (fx, rsize) = (&mut self.features, f64::from(mount.rsize_kb()));
            Some(featurize.time(|| fx.roll_window(rsize)))
        } else {
            None
        };
        let mut next = end;
        while next <= now {
            next += self.window_ns;
        }
        self.next_window_end = Some(next);
        if let (Some(f), Some(shadow)) = (&features, &mut self.shadow) {
            // Shadow inference on the exact window the active model will
            // see; the prediction is only recorded, never actuated.
            match shadow.predict(f) {
                Ok(class) => self.pending_shadow_class = Some(class),
                Err(_) => {
                    self.shadow_stats.errors += 1;
                    self.pending_shadow_class = None;
                }
            }
        }
        features
    }

    /// Applies a predicted class for the window most recently returned by
    /// [`Self::poll_window`]: asymmetric hysteresis, actuation, and
    /// decision logging. Shrinking is always safe to apply now; only
    /// growth waits for confirmation (see the hysteresis field note).
    pub fn apply_class(&mut self, mount: &mut NfsMount, class: usize) {
        let now = mount.now_ns();
        if self.shadow.is_some() {
            if let Some(shadow_class) = self.pending_shadow_class.take() {
                self.shadow_stats.record(shadow_class == class);
            }
        }
        let target = self.policy.rsize_kb_for(class);
        let confirmed =
            target <= mount.rsize_kb() || !self.hysteresis || self.last_class == Some(class);
        self.last_class = Some(class);
        let rsize_kb = if confirmed {
            if target != mount.rsize_kb() {
                let span = Span::start(&self.telemetry.stages.actuate_ns);
                mount.set_rsize_kb(target);
                span.finish();
                self.telemetry.actuation_total.inc();
            }
            target
        } else {
            mount.rsize_kb()
        };
        self.telemetry.decision_total.inc();
        self.telemetry.ring_dropped.set(self.consumer.dropped());
        self.decisions.push(RsizeDecision {
            time_ns: now,
            class,
            rsize_kb,
            generation: self.model_generation,
        });
    }

    /// Replaces the active model under an explicit generation tag,
    /// resetting the hysteresis state.
    pub fn swap_model(&mut self, model: RsizeTunerModel, generation: u64) {
        self.model = model;
        self.model_generation = generation;
        self.last_class = None;
    }

    /// Stages a shadow candidate (replacing any previous one and resetting
    /// its stats). The active model and the mount's rsize are untouched.
    pub fn stage_shadow_model(&mut self, model: RsizeTunerModel) {
        self.shadow = Some(model);
        self.shadow_stats = ShadowStats::default();
        self.pending_shadow_class = None;
    }

    /// Whether a shadow candidate is staged.
    pub fn shadow_staged(&self) -> bool {
        self.shadow.is_some()
    }

    /// The active model's generation tag.
    pub fn model_generation(&self) -> u64 {
        self.model_generation
    }

    /// Decodes a netfs-rsize `.kmlm` artifact into a deployable model,
    /// cross-checking its class count against this tuner's policy.
    fn decode_artifact(&self, bytes: &[u8]) -> std::result::Result<RsizeTunerModel, ArtifactError> {
        let loaded = kml_lifecycle::load_model_for::<f32>(bytes, ArtifactKind::NetfsRsize)?;
        if loaded.model.output_dim() != self.policy.classes() {
            return Err(ArtifactError::ClassMismatch {
                artifact: loaded.model.output_dim(),
                policy: self.policy.classes(),
            });
        }
        Ok(RsizeTunerModel::NeuralNet(Box::new(loaded.model)))
    }

    /// All decisions taken so far.
    pub fn decisions(&self) -> &[RsizeDecision] {
        &self.decisions
    }

    /// RPC events lost to ring-buffer overwrites.
    pub fn events_dropped(&self) -> u64 {
        self.consumer.dropped()
    }

    /// RPC events consumed from the ring so far.
    pub fn events_consumed(&self) -> u64 {
        self.consumer.consumed()
    }
}

impl LifecycleTarget for RsizeTuner {
    /// Atomic by construction: the artifact is fully decoded and verified
    /// before any tuner state changes; a failed load leaves the model, the
    /// generation, and the mount's rsize exactly as they were.
    fn install_artifact(
        &mut self,
        bytes: &[u8],
        generation: u64,
    ) -> std::result::Result<(), ArtifactError> {
        let model = self.decode_artifact(bytes)?;
        self.swap_model(model, generation);
        Ok(())
    }

    fn stage_shadow_artifact(&mut self, bytes: &[u8]) -> std::result::Result<(), ArtifactError> {
        let model = self.decode_artifact(bytes)?;
        self.stage_shadow_model(model);
        Ok(())
    }

    fn clear_shadow(&mut self) {
        self.shadow = None;
        self.shadow_stats = ShadowStats::default();
        self.pending_shadow_class = None;
    }

    fn generation(&self) -> u64 {
        self.model_generation
    }

    fn shadow_stats(&self) -> ShadowStats {
        self.shadow_stats
    }
}

/// Trains the calm/congested link classifier and returns it as model-file
/// bytes (train once, deploy everywhere — including across the parallel
/// E9 grid, where every worker decodes the same blob).
///
/// Labeled windows come from driving real mounts over the phased
/// experiment profiles at several fixed transfer sizes and labeling each
/// window by whether the link's congestion burst was live at the window
/// boundary — ground truth the tuner never sees at run time.
///
/// # Errors
///
/// Propagates dataset construction and training errors.
pub fn train_rsize_model(seed: u64) -> Result<Vec<u8>> {
    let data = training_windows(seed)?;
    let mut model = ModelBuilder::new(NUM_RSIZE_FEATURES)
        .linear(10)
        .sigmoid()
        .linear(2)
        .seed(seed)
        .build::<f64>()?;
    // Byte-identical at any worker count; engages only on 64+-row batches.
    model.set_train_workers(kml_platform::threading::default_workers());
    model.set_normalizer(Normalizer::fit(data.features())?);
    let mut sgd = Sgd::new(0.05, 0.9);
    let mut rng = KmlRng::seed_from_u64(seed ^ 0x2E);
    for _ in 0..200 {
        model.train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)?;
    }
    kml_core::modelfile::encode(&model)
}

/// Generates labeled feature windows from the phased profiles.
fn training_windows(seed: u64) -> Result<Dataset> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for profile in [
        // The clean profile anchors the calm class at datacenter latency
        // scales; without it, sub-millisecond windows are out of the
        // training distribution and the normalizer extrapolates garbage.
        NetProfile::datacenter(seed ^ 0xC3),
        NetProfile::congested_wan(seed ^ 0xA1),
        NetProfile::lossy_wifi(seed ^ 0xB2),
    ] {
        for rsize_kb in [32u32, 128, 256, 1024] {
            let mut mount = NfsMount::new(
                profile,
                SimConfig {
                    cache_pages: 4096,
                    ..SimConfig::default()
                },
            );
            mount.set_rsize_kb(rsize_kb);
            let file = mount.create_file(1 << 20);
            let (producer, mut consumer) = RingBuffer::with_capacity(1 << 14).split();
            mount.attach_rpc_trace(producer);
            let mut fx = RsizeFeatures::new();
            let mut window_end = mount.now_ns() + RsizeTuner::DEFAULT_WINDOW_NS;
            let mut page = 0u64;
            // Long enough to cross several burst phases of both profiles.
            while mount.now_ns() < 12_000_000_000 {
                // Give-ups under total loss are acceptable training noise.
                let _ = mount.read(file, page % ((1 << 20) - 256), 256);
                page += 256;
                while let Some(event) = consumer.pop() {
                    fx.push(&event);
                }
                let now = mount.now_ns();
                if now >= window_end {
                    // Label by the phase the whole window sat in; windows
                    // straddling a burst edge have mixed signals and are
                    // discarded (still rolled, to reset window state). A
                    // faultless link is calm regardless of gating.
                    let lossy = profile.faults.net_is_active();
                    let start_gated = lossy
                        && profile.faults_gated_on(window_end - RsizeTuner::DEFAULT_WINDOW_NS);
                    let end_gated = lossy && profile.faults_gated_on(window_end);
                    let row = fx.roll_window(f64::from(rsize_kb));
                    if row[0] > 0.0 && start_gated == end_gated {
                        rows.push(row.to_vec());
                        labels.push(if end_gated { CONGESTED } else { CALM });
                    }
                    while window_end <= now {
                        window_end += RsizeTuner::DEFAULT_WINDOW_NS;
                    }
                }
            }
        }
    }
    Dataset::from_rows(&rows, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kml_core::dataset::Dataset;
    use kml_core::dtree::DecisionTreeConfig;

    #[test]
    fn policy_lookup_and_clamping() {
        let p = RsizePolicy::experiment_default();
        assert_eq!(p.rsize_kb_for(CALM), 1024);
        assert_eq!(p.rsize_kb_for(CONGESTED), 256);
        assert_eq!(p.rsize_kb_for(99), 256); // clamped
        assert_eq!(p.classes(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_policy_panics() {
        let _ = RsizePolicy::new(vec![]);
    }

    /// A stub tree thresholding feature 2 (retransmit fraction): high →
    /// congested, low → calm. The DST harness uses the same construction.
    pub(crate) fn stub_tree() -> DecisionTree {
        let data = Dataset::from_rows(
            &[
                vec![50.0, 1e7, 0.02, 1e6, 256.0],
                vec![50.0, 1e7, 0.01, 1e6, 256.0],
                vec![50.0, 4e7, 0.60, 1e6, 256.0],
                vec![50.0, 4e7, 0.80, 1e6, 256.0],
            ],
            &[CALM, CALM, CONGESTED, CONGESTED],
        )
        .unwrap();
        DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap()
    }

    #[test]
    fn features_separate_calm_from_congested_windows() {
        const W: u64 = RsizeTuner::DEFAULT_WINDOW_NS;
        let collect = |profile: NetProfile, in_burst: bool| {
            let mut mount = NfsMount::new(profile, SimConfig::default());
            mount.set_rsize_kb(256);
            let file = mount.create_file(1 << 18);
            let (producer, mut consumer) = RingBuffer::with_capacity(1 << 14).split();
            mount.attach_rpc_trace(producer);
            let mut fx = RsizeFeatures::new();
            let mut windows: Vec<[f64; NUM_RSIZE_FEATURES]> = Vec::new();
            let mut window_end = mount.now_ns() + W;
            let mut page = 0u64;
            while mount.now_ns() < 10_000_000_000 && windows.len() < 40 {
                let _ = mount.read(file, page % ((1 << 18) - 64), 64);
                page += 64;
                while let Some(e) = consumer.pop() {
                    fx.push(&e);
                }
                let now = mount.now_ns();
                if now >= window_end {
                    // Keep only windows that sat entirely in one phase.
                    let pure = profile.faults_gated_on(window_end - W)
                        == profile.faults_gated_on(window_end);
                    let row = fx.roll_window(256.0);
                    if row[0] > 0.0 && pure && profile.faults_gated_on(window_end) == in_burst {
                        windows.push(row);
                    }
                    while window_end <= now {
                        window_end += W;
                    }
                }
            }
            windows
        };
        let profile = NetProfile::lossy_wifi(13);
        let calm = collect(profile, false);
        let congested = collect(profile, true);
        assert!(!calm.is_empty() && !congested.is_empty());
        let retrans = |ws: &[[f64; NUM_RSIZE_FEATURES]]| {
            ws.iter().map(|w| w[2]).sum::<f64>() / ws.len() as f64
        };
        assert!(
            retrans(&congested) > retrans(&calm) + 0.05,
            "retransmit fraction: congested {:.3} vs calm {:.3}",
            retrans(&congested),
            retrans(&calm)
        );
    }

    #[test]
    fn tuner_tracks_the_phase_of_a_bursty_link() {
        let profile = NetProfile::lossy_wifi(21);
        let mut mount = NfsMount::new(
            profile,
            SimConfig {
                cache_pages: 4096,
                ..SimConfig::default()
            },
        );
        let file = mount.create_file(1 << 20);
        let (producer, consumer) = RingBuffer::with_capacity(1 << 14).split();
        mount.attach_rpc_trace(producer);
        let mut tuner = RsizeTuner::new(
            RsizeTunerModel::Tree(stub_tree()),
            RsizePolicy::experiment_default(),
            consumer,
            RsizeTuner::DEFAULT_WINDOW_NS,
        );
        let mut page = 0u64;
        let mut saw_small = false;
        let mut saw_large = false;
        while mount.now_ns() < 10_000_000_000 {
            let _ = mount.read(file, page % ((1 << 20) - 128), 128);
            page += 128;
            tuner.on_op(&mut mount).unwrap();
            match mount.rsize_kb() {
                256 => saw_small = true,
                1024 => saw_large = true,
                _ => {}
            }
        }
        assert!(!tuner.decisions().is_empty());
        assert!(
            saw_small && saw_large,
            "tuner never actuated both phases: small={saw_small} large={saw_large}"
        );
        assert_eq!(tuner.events_dropped(), 0, "ring sized for the workload");
    }

    #[test]
    fn trained_model_round_trips_through_bytes() {
        let bytes = train_rsize_model(3).expect("training succeeds");
        let mut model = RsizeTunerModel::from_bytes(&bytes).expect("decodes");
        let class = model
            .predict(&[50.0, 1e7, 0.0, 1e6, 256.0])
            .expect("predicts");
        assert!(class == CALM || class == CONGESTED);
    }
}
