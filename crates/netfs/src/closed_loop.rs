//! End-to-end fixed-rsize vs KML runs over the simulated network (E9).
//!
//! A *fixed* run executes a read-heavy streaming workload over a mount
//! pinned at one transfer size; a *KML* run attaches the RPC tracepoint
//! ring, plugs in an [`RsizeTuner`], and lets it re-tune `rsize` once per
//! window. Throughput is simulated MB/s — pages actually read over
//! simulated elapsed time — so every number is a pure function of
//! `(profile, rsize policy, seed)` and byte-identical at any worker count.

use kernel_sim::SimConfig;
use kml_collect::RingBuffer;
use kml_core::Result;

use crate::mount::{NetStats, NfsMount};
use crate::transport::NetProfile;
use crate::tuner::{RsizeDecision, RsizePolicy, RsizeTuner, RsizeTunerModel};

/// Fixed-rsize baselines the E9 grid sweeps, KiB.
pub const FIXED_RSIZES_KB: [u32; 4] = [32, 128, 256, 1024];

/// Shape of one E9 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetRunConfig {
    /// Simulated run length, ns.
    pub duration_ns: u64,
    /// Server file size, pages.
    pub file_pages: u64,
    /// Server page-cache size, pages (small: the workload stays cold).
    pub cache_pages: usize,
    /// Pages per logical application read.
    pub request_pages: u64,
    /// Every n-th request jumps to a pseudo-random offset; the rest
    /// stream sequentially.
    pub jump_every: u64,
    /// Workload seed (offsets only; packet fates come from the profile).
    pub seed: u64,
}

impl NetRunConfig {
    /// The full E9 configuration: 20 simulated seconds, enough to cross
    /// many congestion phases of the bursty profiles.
    pub fn paper() -> NetRunConfig {
        NetRunConfig {
            duration_ns: 20_000_000_000,
            file_pages: 1 << 20,
            cache_pages: 4096,
            request_pages: 256,
            jump_every: 16,
            seed: 0x9E37,
        }
    }

    /// A smoke-sized configuration (CI and `--quick`).
    pub fn quick() -> NetRunConfig {
        NetRunConfig {
            duration_ns: 6_000_000_000,
            ..NetRunConfig::paper()
        }
    }
}

/// Outcome of one run (fixed or tuned).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetRunReport {
    /// Application reads issued.
    pub ops: u64,
    /// Pages successfully read.
    pub pages_read: u64,
    /// Simulated elapsed time, ns.
    pub elapsed_ns: u64,
    /// Simulated throughput, MB/s (decimal megabytes, like the paper's
    /// tables).
    pub mb_per_sec: f64,
    /// Reads that failed after exhausting retransmission attempts.
    pub failed_ops: u64,
    /// Final RPC accounting.
    pub stats: NetStats,
}

/// One profile's E9 row: every fixed baseline plus the tuned run.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// Profile name ("datacenter" / "congested_wan" / "lossy_wifi").
    pub profile: &'static str,
    /// `(rsize_kb, report)` per fixed baseline, in [`FIXED_RSIZES_KB`] order.
    pub fixed: Vec<(u32, NetRunReport)>,
    /// The KML-tuned run.
    pub kml: NetRunReport,
    /// The tuner's decision log.
    pub decisions: Vec<RsizeDecision>,
    /// `kml.mb_per_sec / best fixed mb_per_sec`.
    pub speedup_vs_best_fixed: f64,
}

fn make_mount(profile: NetProfile, cfg: &NetRunConfig) -> (NfsMount, kernel_sim::FileId) {
    let mut mount = NfsMount::new(
        profile,
        SimConfig {
            cache_pages: cfg.cache_pages,
            ..SimConfig::default()
        },
    );
    let file = mount.create_file(cfg.file_pages);
    (mount, file)
}

/// Drives the deterministic read-heavy workload until the simulated clock
/// passes `cfg.duration_ns`, invoking `hook` after every application read.
fn drive(
    mount: &mut NfsMount,
    file: kernel_sim::FileId,
    cfg: &NetRunConfig,
    mut hook: impl FnMut(&mut NfsMount),
) -> NetRunReport {
    let start_ns = mount.now_ns();
    let span = cfg.file_pages - cfg.request_pages;
    let mut pos = 0u64;
    let mut x = cfg.seed | 1;
    let mut ops = 0u64;
    let mut pages_read = 0u64;
    let mut failed_ops = 0u64;
    while mount.now_ns() - start_ns < cfg.duration_ns {
        ops += 1;
        if cfg.jump_every > 0 && ops.is_multiple_of(cfg.jump_every) {
            // splitmix64 step: the workload's only randomness.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            pos = (z ^ (z >> 31)) % span;
        }
        match mount.read(file, pos, cfg.request_pages) {
            Ok(_) => pages_read += cfg.request_pages,
            Err(_) => failed_ops += 1,
        }
        pos = (pos + cfg.request_pages) % span;
        hook(mount);
    }
    let elapsed_ns = mount.now_ns() - start_ns;
    NetRunReport {
        ops,
        pages_read,
        elapsed_ns,
        mb_per_sec: pages_read as f64 * kernel_sim::PAGE_SIZE as f64
            / 1e6
            / (elapsed_ns as f64 / 1e9),
        failed_ops,
        stats: mount.stats(),
    }
}

/// Runs the workload with `rsize` pinned.
pub fn run_fixed(profile: NetProfile, rsize_kb: u32, cfg: &NetRunConfig) -> NetRunReport {
    let (mut mount, file) = make_mount(profile, cfg);
    mount.set_rsize_kb(rsize_kb);
    drive(&mut mount, file, cfg, |_| {})
}

/// Runs the KML-tuned configuration: the tuner starts from the mount
/// default and adapts once per window.
///
/// # Errors
///
/// Propagates tuner/model failures.
pub fn run_kml(
    profile: NetProfile,
    model: RsizeTunerModel,
    policy: RsizePolicy,
    cfg: &NetRunConfig,
) -> Result<(NetRunReport, Vec<RsizeDecision>)> {
    let (mut mount, file) = make_mount(profile, cfg);
    let (producer, consumer) = RingBuffer::with_capacity(1 << 14).split();
    mount.attach_rpc_trace(producer);
    let mut tuner = RsizeTuner::new(model, policy, consumer, RsizeTuner::DEFAULT_WINDOW_NS);
    let mut tuner_err = None;
    let report = drive(&mut mount, file, cfg, |mount| {
        if let Err(e) = tuner.on_op(mount) {
            tuner_err.get_or_insert(e);
        }
    });
    match tuner_err {
        Some(e) => Err(e),
        None => Ok((report, tuner.decisions().to_vec())),
    }
}

/// Produces one E9 row: every fixed baseline plus the tuned run, for one
/// profile. `model_bytes` is the classifier from
/// [`crate::tuner::train_rsize_model`] (decoded fresh per run — models
/// carry normalizer state; runs must not share a live copy).
///
/// # Errors
///
/// Propagates model decoding and tuner failures.
pub fn compare(profile: NetProfile, model_bytes: &[u8], cfg: &NetRunConfig) -> Result<NetOutcome> {
    let fixed: Vec<(u32, NetRunReport)> = FIXED_RSIZES_KB
        .iter()
        .map(|&kb| (kb, run_fixed(profile, kb, cfg)))
        .collect();
    let model = RsizeTunerModel::from_bytes(model_bytes)?;
    let (kml, decisions) = run_kml(profile, model, RsizePolicy::experiment_default(), cfg)?;
    let best_fixed = fixed
        .iter()
        .map(|&(_, r)| r.mb_per_sec)
        .fold(f64::MIN, f64::max);
    Ok(NetOutcome {
        profile: profile.name,
        fixed,
        kml,
        decisions,
        speedup_vs_best_fixed: kml.mb_per_sec / best_fixed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::train_rsize_model;

    /// One trained model shared by the closed-loop tests (training is the
    /// expensive part).
    fn model_bytes() -> &'static [u8] {
        use std::sync::OnceLock;
        static CELL: OnceLock<Vec<u8>> = OnceLock::new();
        CELL.get_or_init(|| train_rsize_model(7).unwrap())
    }

    #[test]
    fn large_rsize_wins_on_the_clean_datacenter_link() {
        let cfg = NetRunConfig::quick();
        let profile = NetProfile::datacenter(3);
        let small = run_fixed(profile, 32, &cfg);
        let large = run_fixed(profile, 1024, &cfg);
        assert!(
            large.mb_per_sec > small.mb_per_sec * 1.5,
            "RTT amortization missing: 32K {:.1} MB/s vs 1M {:.1} MB/s",
            small.mb_per_sec,
            large.mb_per_sec
        );
        assert_eq!(large.stats.retransmits, 0, "clean link retransmitted");
    }

    #[test]
    fn no_fixed_rsize_wins_both_phases_of_a_bursty_link() {
        // The economic core of E9: on the phased lossy link, small rsize
        // beats large in-burst and loses out-of-burst, so the tuned run
        // has headroom over every fixed choice.
        let cfg = NetRunConfig::quick();
        let profile = NetProfile::lossy_wifi(9);
        let small = run_fixed(profile, 32, &cfg);
        let large = run_fixed(profile, 1024, &cfg);
        // Large transfers must pay visibly for their in-burst losses:
        // per RPC they retransmit far more often (small ones send ~32x
        // the RPCs, so absolute counts are not comparable).
        let frac = |r: &NetRunReport| r.stats.retransmits as f64 / r.stats.rpcs_issued as f64;
        assert!(
            frac(&large) > frac(&small) * 2.0,
            "per-fragment loss should punish large transfers: {:.3} vs {:.3}",
            frac(&large),
            frac(&small)
        );
        for r in [&small, &large] {
            r.stats.reconcile().expect("books balance");
        }
    }

    #[test]
    fn kml_beats_every_fixed_rsize_on_the_phased_profiles() {
        let cfg = NetRunConfig::quick();
        for profile in [NetProfile::congested_wan(7), NetProfile::lossy_wifi(7)] {
            let outcome = compare(profile, model_bytes(), &cfg).unwrap();
            assert!(
                outcome.speedup_vs_best_fixed > 0.99,
                "{}: tuned {:.1} MB/s did not reach the best fixed ({:.3}x)",
                outcome.profile,
                outcome.kml.mb_per_sec,
                outcome.speedup_vs_best_fixed
            );
            assert!(!outcome.decisions.is_empty(), "tuner never decided");
            outcome.kml.stats.reconcile().expect("books balance");
        }
    }

    #[test]
    #[ignore = "diagnostic dump"]
    fn debug_dump_grid() {
        let cfg = NetRunConfig::quick();
        for profile in NetProfile::experiment_profiles(7) {
            for kb in FIXED_RSIZES_KB {
                let r = run_fixed(profile, kb, &cfg);
                println!(
                    "{:>13} fixed {kb:>5} KiB: {:>7.1} MB/s ops={} retrans={} timeouts={} failed={}",
                    profile.name, r.mb_per_sec, r.ops, r.stats.retransmits, r.stats.timeouts,
                    r.failed_ops
                );
            }
            let model = RsizeTunerModel::from_bytes(model_bytes()).unwrap();
            let (kml, decisions) =
                run_kml(profile, model, RsizePolicy::experiment_default(), &cfg).unwrap();
            println!(
                "{:>13} kml        : {:>7.1} MB/s retrans={} decisions={}",
                profile.name,
                kml.mb_per_sec,
                kml.stats.retransmits,
                decisions.len()
            );
            let mut runs: Vec<(u64, usize, u32)> = Vec::new();
            for d in &decisions {
                match runs.last_mut() {
                    Some(last) if last.2 == d.rsize_kb => {}
                    _ => runs.push((d.time_ns / 1_000_000, d.class, d.rsize_kb)),
                }
            }
            println!("  decisions (t_ms, class, rsize): {runs:?}");
        }
    }

    #[test]
    fn runs_replay_byte_identically() {
        let cfg = NetRunConfig::quick();
        let profile = NetProfile::congested_wan(11);
        let a = run_fixed(profile, 128, &cfg);
        let b = run_fixed(profile, 128, &cfg);
        assert_eq!(a, b);
    }
}
