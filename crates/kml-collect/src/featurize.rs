//! Shared windowed featurization — the one window engine behind every tuner.
//!
//! The paper extracts features the same way at every layer it tunes
//! (readahead §4, NFS rsize in the extended paper): tracepoint records are
//! folded into cheap streaming accumulators, and once per window the
//! accumulators are summarized into a fixed feature vector, with some
//! channels persisting across windows (cumulative moving statistics) and
//! others resetting (per-window counts and sums). Before this module the
//! readahead and iosched tuners each re-implemented that window discipline
//! inline; now all three tuners (readahead, iosched, netfs rsize) compose
//! their feature vectors from the same [`WindowedFeatures`] engine.
//!
//! Channel kinds (each matching one of the pre-existing inline idioms,
//! bit-for-bit — the parity tests in `readahead::features` and
//! `iosched::tuner` prove it):
//!
//! - [`Channel::Cumulative`] — Welford mean/std over the whole run; survives
//!   window rolls (paper features ii–iii).
//! - [`Channel::WindowAbsDiff`] — mean |Δ| of consecutive samples within
//!   the window; both the sums *and* the last sample reset at each roll
//!   (paper feature iv).
//! - [`Channel::PersistentGap`] — sum of forward differences between
//!   consecutive `u64` samples; the sum resets per window but the last
//!   sample persists, and the summary divides by `window_count - 1`
//!   (the iosched inter-arrival-gap idiom).
//! - [`Channel::WindowSum`] — plain per-window `u64` sum, summarized as
//!   `sum / window_count` (adjacency fractions, depth means, per-window
//!   latency means).

use crate::stats::{AbsDiffMean, CumulativeStats};

/// Sum of forward (saturating) differences between consecutive `u64`
/// samples. The last sample persists across window rolls; the sum resets.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GapSum {
    last: Option<u64>,
    sum: u64,
}

impl GapSum {
    /// Folds in one sample.
    pub fn push(&mut self, v: u64) {
        if let Some(last) = self.last {
            self.sum += v.saturating_sub(last);
        }
        self.last = Some(v);
    }

    /// The per-window sum so far.
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

/// One streaming feature channel inside a [`WindowedFeatures`] engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Channel {
    /// Welford mean/std over the whole run (persists across windows).
    Cumulative(CumulativeStats),
    /// Mean absolute consecutive difference within the window; fully
    /// resets (including the last sample) at each roll.
    WindowAbsDiff(AbsDiffMean),
    /// Per-window sum of consecutive forward gaps; the last sample
    /// persists across rolls. Summary: `sum / (window_count - 1).max(1)`.
    PersistentGap(GapSum),
    /// Per-window `u64` sum. Summary: `sum / window_count.max(1)`.
    WindowSum(u64),
}

impl Channel {
    /// An empty cumulative (Welford) channel.
    pub fn cumulative() -> Channel {
        Channel::Cumulative(CumulativeStats::new())
    }

    /// An empty within-window absolute-difference channel.
    pub fn window_abs_diff() -> Channel {
        Channel::WindowAbsDiff(AbsDiffMean::new())
    }

    /// An empty persistent-gap channel.
    pub fn persistent_gap() -> Channel {
        Channel::PersistentGap(GapSum::default())
    }

    /// An empty per-window sum channel.
    pub fn window_sum() -> Channel {
        Channel::WindowSum(0)
    }
}

/// The shared window engine: a set of [`Channel`]s plus the per-window
/// record count and lifetime total every tuner keeps.
///
/// Usage protocol (one call per tracepoint record):
///
/// 1. push per-channel samples with [`WindowedFeatures::push_f64`] /
///    [`WindowedFeatures::push_u64`],
/// 2. call [`WindowedFeatures::record`] once to count the record,
/// 3. at each window boundary read summaries ([`WindowedFeatures::mean`],
///    [`WindowedFeatures::std`], [`WindowedFeatures::window_count`]) into
///    the tuner's feature vector, then call [`WindowedFeatures::roll`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedFeatures {
    channels: Vec<Channel>,
    window_count: u64,
    total: u64,
}

impl WindowedFeatures {
    /// Creates an engine over the given channels.
    pub fn new(channels: Vec<Channel>) -> Self {
        WindowedFeatures {
            channels,
            window_count: 0,
            total: 0,
        }
    }

    /// Counts one record into the current window (call once per record,
    /// after the per-channel pushes).
    pub fn record(&mut self) {
        self.window_count += 1;
        self.total += 1;
    }

    /// Records in the current (open) window.
    pub fn window_count(&self) -> u64 {
        self.window_count
    }

    /// Records counted since creation (or the last [`WindowedFeatures::reset`]).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Folds an `f64` sample into channel `ch`
    /// ([`Channel::Cumulative`] or [`Channel::WindowAbsDiff`]).
    pub fn push_f64(&mut self, ch: usize, v: f64) {
        match &mut self.channels[ch] {
            Channel::Cumulative(s) => s.push(v),
            Channel::WindowAbsDiff(a) => a.push(v),
            other => panic!("channel {ch} ({other:?}) does not take f64 samples"),
        }
    }

    /// Folds a `u64` sample into channel `ch`
    /// ([`Channel::PersistentGap`] or [`Channel::WindowSum`]).
    pub fn push_u64(&mut self, ch: usize, v: u64) {
        match &mut self.channels[ch] {
            Channel::PersistentGap(g) => g.push(v),
            Channel::WindowSum(sum) => *sum += v,
            other => panic!("channel {ch} ({other:?}) does not take u64 samples"),
        }
    }

    /// The channel's mean summary for the current window (see the
    /// per-kind divisors on [`Channel`]).
    pub fn mean(&self, ch: usize) -> f64 {
        match &self.channels[ch] {
            Channel::Cumulative(s) => s.mean(),
            Channel::WindowAbsDiff(a) => a.mean(),
            Channel::PersistentGap(g) => {
                g.sum as f64 / (self.window_count.saturating_sub(1).max(1)) as f64
            }
            Channel::WindowSum(sum) => *sum as f64 / self.window_count.max(1) as f64,
        }
    }

    /// The channel's standard-deviation summary (cumulative channels
    /// only; 0 for the window-local kinds, which keep no second moment).
    pub fn std(&self, ch: usize) -> f64 {
        match &self.channels[ch] {
            Channel::Cumulative(s) => s.std(),
            _ => 0.0,
        }
    }

    /// Closes the window: per-window state resets, persistent state
    /// (cumulative statistics, persistent-gap last samples) survives.
    pub fn roll(&mut self) {
        self.window_count = 0;
        for ch in &mut self.channels {
            match ch {
                Channel::Cumulative(_) => {}
                Channel::WindowAbsDiff(a) => a.reset(),
                Channel::PersistentGap(g) => g.sum = 0,
                Channel::WindowSum(sum) => *sum = 0,
            }
        }
    }

    /// Resets everything, including cumulative channels (a fresh run).
    pub fn reset(&mut self) {
        self.window_count = 0;
        self.total = 0;
        for ch in &mut self.channels {
            match ch {
                Channel::Cumulative(s) => s.reset(),
                Channel::WindowAbsDiff(a) => a.reset(),
                Channel::PersistentGap(g) => *g = GapSum::default(),
                Channel::WindowSum(sum) => *sum = 0,
            }
        }
    }
}

/// A row-stacked matrix of feature vectors, staged for batched inference.
///
/// The fleet's shared model server drains one feature vector per tenant
/// window into a `FeatureBatch`, then hands the flat row-major buffer to
/// `Model::infer_batch_into` — one `B × dim` forward pass instead of `B`
/// single-row passes. The buffer is reused across batches (`clear` keeps
/// capacity), so steady-state batching allocates nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBatch {
    dim: usize,
    rows: Vec<f64>,
}

impl FeatureBatch {
    /// Creates an empty batch whose rows all have `dim` features.
    ///
    /// # Panics
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be non-zero");
        Self {
            dim,
            rows: Vec::new(),
        }
    }

    /// Appends one feature vector as the next row.
    ///
    /// # Panics
    /// Panics if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.dim,
            "feature row length must match the batch dimension"
        );
        self.rows.extend_from_slice(row);
    }

    /// Number of rows staged so far.
    pub fn rows(&self) -> usize {
        self.rows.len() / self.dim
    }

    /// Features per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The staged rows as one flat row-major slice (`rows() * dim()` long).
    pub fn as_slice(&self) -> &[f64] {
        &self.rows
    }

    /// True when no rows are staged.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Drops all staged rows, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> WindowedFeatures {
        WindowedFeatures::new(vec![
            Channel::cumulative(),
            Channel::window_abs_diff(),
            Channel::persistent_gap(),
            Channel::window_sum(),
        ])
    }

    #[test]
    fn cumulative_persists_across_rolls_but_window_kinds_reset() {
        let mut w = engine();
        for i in 0..10u64 {
            w.push_f64(0, i as f64);
            w.push_f64(1, i as f64);
            w.push_u64(2, i * 100);
            w.push_u64(3, 5);
            w.record();
        }
        assert_eq!(w.window_count(), 10);
        assert!((w.mean(0) - 4.5).abs() < 1e-12);
        assert!((w.mean(1) - 1.0).abs() < 1e-12);
        assert!((w.mean(2) - 100.0).abs() < 1e-12); // 900 / (10-1)
        assert!((w.mean(3) - 5.0).abs() < 1e-12);
        w.roll();
        assert_eq!(w.window_count(), 0);
        assert_eq!(w.total(), 10);
        // Window kinds are neutral again; cumulative persists.
        assert_eq!(w.mean(1), 0.0);
        assert_eq!(w.mean(3), 0.0);
        assert!((w.mean(0) - 4.5).abs() < 1e-12);
        assert!(w.std(0) > 0.0);
    }

    #[test]
    fn persistent_gap_carries_last_sample_across_rolls() {
        let mut w = WindowedFeatures::new(vec![Channel::persistent_gap()]);
        w.push_u64(0, 1_000);
        w.record();
        w.roll();
        // The gap from the previous window's last sample still counts.
        w.push_u64(0, 1_500);
        w.record();
        assert!((w.mean(0) - 500.0).abs() < 1e-12);
    }

    #[test]
    fn abs_diff_forgets_last_sample_at_roll() {
        let mut w = WindowedFeatures::new(vec![Channel::window_abs_diff()]);
        w.push_f64(0, 0.0);
        w.push_f64(0, 1_000_000.0);
        w.record();
        w.record();
        w.roll();
        w.push_f64(0, 10.0);
        w.push_f64(0, 11.0);
        w.record();
        w.record();
        assert!((w.mean(0) - 1.0).abs() < 1e-12, "leaked: {}", w.mean(0));
    }

    #[test]
    fn empty_window_summaries_are_neutral() {
        let w = engine();
        for ch in 0..4 {
            assert_eq!(w.mean(ch), 0.0);
            assert_eq!(w.std(ch), 0.0);
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut w = engine();
        w.push_f64(0, 42.0);
        w.push_u64(2, 7);
        w.record();
        w.reset();
        assert_eq!(w.total(), 0);
        assert_eq!(w.mean(0), 0.0);
        // A fresh gap channel has no last sample: first push makes no pair.
        w.push_u64(2, 9);
        w.record();
        assert_eq!(w.mean(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not take f64")]
    fn type_confusion_panics() {
        let mut w = WindowedFeatures::new(vec![Channel::window_sum()]);
        w.push_f64(0, 1.0);
    }

    #[test]
    fn feature_batch_stacks_rows_in_order_and_reuses_capacity() {
        let mut b = FeatureBatch::new(3);
        assert!(b.is_empty());
        b.push_row(&[1.0, 2.0, 3.0]);
        b.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.dim(), 3);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.rows(), 0);
        b.push_row(&[7.0, 8.0, 9.0]);
        assert_eq!(b.as_slice(), &[7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "must match the batch dimension")]
    fn feature_batch_rejects_wrong_row_length() {
        let mut b = FeatureBatch::new(2);
        b.push_row(&[1.0]);
    }
}
