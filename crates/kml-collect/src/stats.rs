//! Streaming statistics for data normalization (paper §3.2, §4).
//!
//! "KML offers several data normalization and statistical functions: moving
//! average, standard deviation, and Z-score calculation." The readahead
//! features (§4) are built from exactly these primitives: cumulative moving
//! average and cumulative moving standard deviation of page offsets, mean
//! absolute difference of consecutive offsets, and per-feature Z-scores.
//!
//! All accumulators are O(1) per sample (Welford's algorithm for the
//! variance) since they run on the asynchronous training thread once per
//! drained record.

/// Cumulative (running) mean and standard deviation via Welford's algorithm.
///
/// # Example
///
/// ```
/// use kml_collect::CumulativeStats;
///
/// let mut s = CumulativeStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.std(), 2.0); // population std of the classic example
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CumulativeStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl CumulativeStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        CumulativeStats::default()
    }

    /// Folds in one sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Samples seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 before any sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Running population variance (0 before two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Running population standard deviation.
    pub fn std(&self) -> f64 {
        kml_core::math::sqrt(self.variance())
    }

    /// Resets to empty (used at each feature-window boundary).
    pub fn reset(&mut self) {
        *self = CumulativeStats::default();
    }
}

/// Fixed-window moving average over the last `window` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MovingAverage {
    window: usize,
    buf: Vec<f64>,
    next: usize,
    filled: usize,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "moving-average window must be positive");
        MovingAverage {
            window,
            buf: vec![0.0; window],
            next: 0,
            filled: 0,
            sum: 0.0,
        }
    }

    /// Folds in one sample, evicting the oldest if the window is full.
    pub fn push(&mut self, v: f64) {
        if self.filled == self.window {
            self.sum -= self.buf[self.next];
        } else {
            self.filled += 1;
        }
        self.buf[self.next] = v;
        self.sum += v;
        self.next = (self.next + 1) % self.window;
    }

    /// Mean of the samples currently in the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.filled == 0 {
            0.0
        } else {
            self.sum / self.filled as f64
        }
    }

    /// How many samples the window currently holds.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }
}

/// Running Z-score: normalizes each new sample against the statistics of all
/// samples seen so far.
///
/// Until the accumulated standard deviation is positive, the z-score is 0
/// (a neutral value, keeping early model inputs bounded).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ZScore {
    stats: CumulativeStats,
}

impl ZScore {
    /// Creates an empty normalizer.
    pub fn new() -> Self {
        ZScore::default()
    }

    /// Folds in `v` and returns its z-score against the *updated* statistics.
    pub fn push(&mut self, v: f64) -> f64 {
        self.stats.push(v);
        let std = self.stats.std();
        if std > 1e-12 {
            (v - self.stats.mean()) / std
        } else {
            0.0
        }
    }

    /// The underlying running statistics.
    pub fn stats(&self) -> &CumulativeStats {
        &self.stats
    }
}

/// Mean absolute difference between consecutive samples — the paper's fourth
/// readahead feature ("the mean absolute page offset differences for
/// consecutive tracepoints"), a cheap sequentiality signal: ~constant small
/// for sequential scans, large and noisy for random access.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AbsDiffMean {
    last: Option<f64>,
    sum_abs: f64,
    count: u64,
}

impl AbsDiffMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        AbsDiffMean::default()
    }

    /// Folds in one sample.
    pub fn push(&mut self, v: f64) {
        if let Some(last) = self.last {
            self.sum_abs += (v - last).abs();
            self.count += 1;
        }
        self.last = Some(v);
    }

    /// Mean |Δ| over consecutive pairs (0 before two samples).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs / self.count as f64
        }
    }

    /// Number of consecutive pairs folded so far.
    pub fn pairs(&self) -> u64 {
        self.count
    }

    /// Resets to empty, forgetting the last sample.
    pub fn reset(&mut self) {
        *self = AbsDiffMean::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.5, -2.0, 3.25, 0.0, 7.5, -1.25];
        let mut s = CumulativeStats::new();
        for &v in &data {
            s.push(v);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn stats_before_samples_are_zero() {
        let s = CumulativeStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        let mut one = CumulativeStats::new();
        one.push(42.0);
        assert_eq!(one.mean(), 42.0);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Catastrophic-cancellation check: large mean, tiny variance.
        let mut s = CumulativeStats::new();
        for i in 0..1000 {
            s.push(1e12 + (i % 2) as f64);
        }
        assert!((s.variance() - 0.25).abs() < 1e-6, "var {}", s.variance());
    }

    #[test]
    fn moving_average_window_semantics() {
        let mut m = MovingAverage::new(3);
        assert_eq!(m.mean(), 0.0);
        m.push(3.0);
        assert_eq!(m.mean(), 3.0);
        m.push(6.0);
        m.push(9.0);
        assert_eq!(m.mean(), 6.0);
        m.push(12.0); // evicts 3.0
        assert_eq!(m.mean(), 9.0);
        assert_eq!(m.len(), 3);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = MovingAverage::new(0);
    }

    #[test]
    fn zscore_constant_stream_is_zero() {
        let mut z = ZScore::new();
        for _ in 0..10 {
            assert_eq!(z.push(5.0), 0.0);
        }
    }

    #[test]
    fn zscore_flags_outliers_positive() {
        let mut z = ZScore::new();
        for _ in 0..100 {
            z.push(10.0);
        }
        for i in 0..100 {
            z.push(10.0 + (i % 3) as f64 - 1.0);
        }
        let score = z.push(50.0);
        assert!(score > 3.0, "outlier z-score was {score}");
    }

    #[test]
    fn absdiff_distinguishes_sequential_from_random() {
        let mut seq = AbsDiffMean::new();
        for i in 0..100 {
            seq.push(i as f64); // stride 1
        }
        assert!((seq.mean() - 1.0).abs() < 1e-12);

        let mut random = AbsDiffMean::new();
        let mut x = 1u64;
        for _ in 0..100 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            random.push((x % 100_000) as f64);
        }
        assert!(random.mean() > 100.0 * seq.mean());
    }

    #[test]
    fn absdiff_reset_forgets_history() {
        let mut a = AbsDiffMean::new();
        a.push(0.0);
        a.push(100.0);
        assert_eq!(a.mean(), 100.0);
        a.reset();
        assert_eq!(a.mean(), 0.0);
        a.push(5.0);
        assert_eq!(a.pairs(), 0);
    }

    proptest! {
        #[test]
        fn prop_welford_mean_bounded_by_extremes(
            data in proptest::collection::vec(-1e6f64..1e6, 1..100)
        ) {
            let mut s = CumulativeStats::new();
            for &v in &data {
                s.push(v);
            }
            let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s.mean() >= lo - 1e-9 && s.mean() <= hi + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }

        #[test]
        fn prop_moving_average_equals_naive(
            data in proptest::collection::vec(-1e3f64..1e3, 1..50),
            window in 1usize..10
        ) {
            let mut m = MovingAverage::new(window);
            for &v in &data {
                m.push(v);
            }
            let tail: Vec<f64> = data.iter().rev().take(window).copied().collect();
            let naive = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert!((m.mean() - naive).abs() < 1e-9);
        }

        #[test]
        fn prop_zscore_is_finite(data in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
            let mut z = ZScore::new();
            for &v in &data {
                prop_assert!(z.push(v).is_finite());
            }
        }
    }
}
