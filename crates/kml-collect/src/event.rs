//! Fixed-size event records for the collection ring.
//!
//! The kernel-side tracepoints must push something tiny and `Copy` into the
//! lock-free ring (§3.1: the inline hook "must do almost nothing"). The
//! block layer already has [`kernel-sim`'s `TraceRecord`]; the network
//! storage path adds its own record here: one [`RpcEvent`] per RPC
//! lifecycle transition, carrying just enough for the rsize tuner's
//! windowed features (latency, payload size, retransmission pressure).
//!
//! [`kernel-sim`'s `TraceRecord`]: https://docs.rs/kernel-sim

/// What happened to an RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcEventKind {
    /// The client issued a new RPC (first transmission of an xid).
    Call,
    /// The client delivered a completion to its caller. `latency_ns` is the
    /// full call-to-completion latency, including every retransmission.
    Reply,
    /// The client retransmitted after a timeout.
    Retransmit,
    /// The client discarded a duplicate reply for an already-completed xid.
    DuplicateDrop,
}

/// One RPC lifecycle event, pushed into a `RingBuffer<RpcEvent>` by the
/// netfs client tracepoints and drained by the rsize tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcEvent {
    /// Which transition this records.
    pub kind: RpcEventKind,
    /// Transaction id of the RPC.
    pub xid: u64,
    /// Payload size of the RPC, in pages.
    pub pages: u64,
    /// Call-to-completion latency in ns ([`RpcEventKind::Reply`] only;
    /// 0 otherwise).
    pub latency_ns: u64,
    /// Virtual clock when the event fired.
    pub time_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RingBuffer;

    #[test]
    fn rpc_events_flow_through_the_ring() {
        let (producer, mut consumer) = RingBuffer::<RpcEvent>::with_capacity(8).split();
        for xid in 0..4u64 {
            producer.push(RpcEvent {
                kind: RpcEventKind::Reply,
                xid,
                pages: 8,
                latency_ns: 1_000 * xid,
                time_ns: 10_000 * xid,
            });
        }
        let drained: Vec<RpcEvent> = std::iter::from_fn(|| consumer.pop()).collect();
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[3].xid, 3);
        assert_eq!(drained[3].kind, RpcEventKind::Reply);
        assert_eq!(consumer.dropped(), 0);
    }
}
