//! The asynchronous training thread (paper §3.2).
//!
//! "KML creates a *training thread* during the model initialization stage
//! ... The only information users need to provide in the
//! model-initialization code is a pointer to the model's training function."
//! [`AsyncTrainer`] is that harness: it owns a KML thread (a kthread in the
//! kernel persona) that drains the lock-free buffer in batches and hands
//! each batch to the user's training callback, keeping FP-heavy work off
//! the collection path.

use crate::ringbuf::Consumer;
use kml_platform::threading::{kml_yield, KmlThread};
use kml_platform::Persona;
use kml_telemetry::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Gauge name for the trainer's input backlog (records waiting in the
/// collection ring), published by [`AsyncTrainer::spawn_with_telemetry`].
pub const TRAINER_BACKLOG_METRIC: &str = "kml.trainer_backlog";
/// Counter name for records lost to ring overwrites before the trainer
/// could drain them, published by [`AsyncTrainer::spawn_with_telemetry`].
pub const TRAINER_DROPPED_METRIC: &str = "kml.trainer_dropped";

/// Counters published by the training thread.
#[derive(Debug, Default)]
struct TrainerStats {
    batches: AtomicU64,
    samples: AtomicU64,
    dropped: AtomicU64,
}

/// Handle to a running asynchronous trainer.
///
/// # Example
///
/// ```
/// use kml_collect::{AsyncTrainer, RingBuffer};
/// use kml_platform::Persona;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let (producer, consumer) = RingBuffer::<f64>::with_capacity(1024).split();
/// let sum = Arc::new(AtomicU64::new(0));
/// let s = sum.clone();
/// let trainer = AsyncTrainer::spawn(Persona::Kernel, consumer, move |batch| {
///     s.fetch_add(batch.len() as u64, Ordering::Relaxed);
/// }).unwrap();
///
/// for i in 0..100 {
///     producer.push(i as f64); // inline hook: wait-free
/// }
/// while trainer.samples_processed() < 100 {
///     std::thread::yield_now();
/// }
/// trainer.stop().unwrap();
/// assert_eq!(sum.load(Ordering::Relaxed), 100);
/// ```
#[derive(Debug)]
pub struct AsyncTrainer {
    thread: KmlThread,
    stats: Arc<TrainerStats>,
}

impl AsyncTrainer {
    /// Maximum records handed to the callback per invocation.
    pub const BATCH: usize = 256;

    /// Spawns the training thread. `train` is the "pointer to the model's
    /// training function" from the paper; it receives drained records in
    /// arrival order.
    ///
    /// # Errors
    ///
    /// Returns a platform error if the thread cannot be spawned.
    pub fn spawn<T, F>(
        persona: Persona,
        consumer: Consumer<T>,
        train: F,
    ) -> kml_platform::Result<Self>
    where
        T: Copy + Send + 'static,
        F: FnMut(&[T]) + Send + 'static,
    {
        Self::spawn_with_telemetry(persona, &Registry::noop(), consumer, train)
    }

    /// Like [`spawn`](Self::spawn), but also publishes the trainer's
    /// health to `registry`: the [`TRAINER_BACKLOG_METRIC`] gauge tracks
    /// how far the producer has run ahead of training (records waiting in
    /// the ring) and the [`TRAINER_DROPPED_METRIC`] counter accumulates
    /// records lost to ring overwrites. Both update once per drain pass
    /// on the training thread — nothing is added to the wait-free
    /// collection hook.
    ///
    /// # Errors
    ///
    /// Returns a platform error if the thread cannot be spawned.
    pub fn spawn_with_telemetry<T, F>(
        persona: Persona,
        registry: &Registry,
        mut consumer: Consumer<T>,
        mut train: F,
    ) -> kml_platform::Result<Self>
    where
        T: Copy + Send + 'static,
        F: FnMut(&[T]) + Send + 'static,
    {
        let backlog_gauge = registry.gauge(TRAINER_BACKLOG_METRIC);
        let dropped_counter = registry.counter(TRAINER_DROPPED_METRIC);
        let stats = Arc::new(TrainerStats::default());
        let thread_stats = stats.clone();
        let thread = KmlThread::spawn(persona, "kml-train", move |ctl| {
            let mut batch = Vec::with_capacity(Self::BATCH);
            let mut reported_dropped = 0u64;
            loop {
                batch.clear();
                while batch.len() < Self::BATCH {
                    match consumer.pop() {
                        Some(v) => batch.push(v),
                        None => break,
                    }
                }
                backlog_gauge.set(consumer.len_estimate());
                let dropped = consumer.dropped();
                dropped_counter.add(dropped - reported_dropped);
                reported_dropped = dropped;
                if batch.is_empty() {
                    if ctl.should_stop() {
                        break;
                    }
                    kml_yield();
                    continue;
                }
                train(&batch);
                thread_stats
                    .samples
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                thread_stats.batches.fetch_add(1, Ordering::Relaxed);
                thread_stats.dropped.store(dropped, Ordering::Relaxed);
            }
            backlog_gauge.set(0);
            let dropped = consumer.dropped();
            dropped_counter.add(dropped - reported_dropped);
            thread_stats.dropped.store(dropped, Ordering::Relaxed);
        })?;
        Ok(AsyncTrainer { thread, stats })
    }

    /// Total records delivered to the training callback.
    pub fn samples_processed(&self) -> u64 {
        self.stats.samples.load(Ordering::Relaxed)
    }

    /// Number of callback invocations so far.
    pub fn batches_processed(&self) -> u64 {
        self.stats.batches.load(Ordering::Relaxed)
    }

    /// Records lost to ring-buffer overwrites, as last observed.
    pub fn samples_dropped(&self) -> u64 {
        self.stats.dropped.load(Ordering::Relaxed)
    }

    /// Drains whatever remains, stops the thread, and joins it.
    ///
    /// # Errors
    ///
    /// Returns a platform error if the training thread panicked.
    pub fn stop(self) -> kml_platform::Result<()> {
        self.thread.stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ringbuf::RingBuffer;
    use std::sync::Mutex;

    #[test]
    fn trainer_processes_everything_in_order() {
        let (p, c) = RingBuffer::<u32>::with_capacity(4096).split();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let trainer = AsyncTrainer::spawn(Persona::User, c, move |batch| {
            sink.lock().unwrap().extend_from_slice(batch);
        })
        .unwrap();
        for i in 0..1000u32 {
            p.push(i);
        }
        while trainer.samples_processed() < 1000 {
            std::thread::yield_now();
        }
        trainer.stop().unwrap();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1000);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "order violated");
    }

    #[test]
    fn stop_drains_remaining_records() {
        let (p, c) = RingBuffer::<u32>::with_capacity(64).split();
        let count = Arc::new(AtomicU64::new(0));
        let sink = count.clone();
        let trainer = AsyncTrainer::spawn(Persona::User, c, move |batch| {
            sink.fetch_add(batch.len() as u64, Ordering::Relaxed);
        })
        .unwrap();
        for i in 0..50u32 {
            p.push(i);
        }
        // Stop immediately: the drain-on-stop path must still deliver all 50.
        trainer.stop().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn overflow_is_reported_not_hidden() {
        let (p, c) = RingBuffer::<u64>::with_capacity(8).split();
        // Producer sprints far ahead before the trainer starts draining.
        for i in 0..10_000u64 {
            p.push(i);
        }
        let trainer = AsyncTrainer::spawn(Persona::User, c, |_batch| {}).unwrap();
        while trainer.samples_processed() + trainer.samples_dropped() < 10_000 {
            std::thread::yield_now();
        }
        let dropped = trainer.samples_dropped();
        trainer.stop().unwrap();
        assert!(dropped >= 10_000 - 8, "dropped only {dropped}");
    }

    #[test]
    fn telemetry_reports_backlog_and_drops() {
        let registry = Registry::new();
        let (p, c) = RingBuffer::<u64>::with_capacity(8).split();
        // Overflow before the trainer exists: the ring overwrites, and the
        // trainer must surface the loss through the registry.
        for i in 0..100u64 {
            p.push(i);
        }
        let trainer =
            AsyncTrainer::spawn_with_telemetry(Persona::User, &registry, c, |_batch| {}).unwrap();
        while trainer.samples_processed() + trainer.samples_dropped() < 100 {
            std::thread::yield_now();
        }
        trainer.stop().unwrap();
        let dropped = registry.counter(TRAINER_DROPPED_METRIC).get();
        assert!(dropped >= 100 - 8, "dropped counter reads {dropped}");
        assert_eq!(
            registry.gauge(TRAINER_BACKLOG_METRIC).get(),
            0,
            "backlog gauge must read empty after stop"
        );
    }

    #[test]
    fn batch_size_is_capped() {
        let (p, c) = RingBuffer::<u8>::with_capacity(4096).split();
        let max_batch = Arc::new(AtomicU64::new(0));
        let sink = max_batch.clone();
        for _ in 0..2000 {
            p.push(1);
        }
        let trainer = AsyncTrainer::spawn(Persona::User, c, move |batch| {
            sink.fetch_max(batch.len() as u64, Ordering::Relaxed);
        })
        .unwrap();
        while trainer.samples_processed() < 2000 {
            std::thread::yield_now();
        }
        trainer.stop().unwrap();
        assert!(max_batch.load(Ordering::Relaxed) <= AsyncTrainer::BATCH as u64);
    }
}
