//! Lock-free circular buffer for inline data collection (paper §3.1, §3.3).
//!
//! Requirements from the paper:
//!
//! - the producer runs on the I/O path and must **never block** (deadlock
//!   safety: "KML uses lock-free data structures to avoid deadlock and to
//!   reduce the overhead of data collection operations");
//! - the buffer is **bounded** ("the circular buffer's size is configurable
//!   to cap memory usage");
//! - overflow **overwrites the oldest data and the loss is observable**
//!   ("losing part of the training data could reduce the model's accuracy").
//!
//! The implementation is a single-producer/single-consumer seqlock ring:
//! each slot carries a version counter that advances by two per lap (odd
//! while the producer is writing). The producer only ever writes its own
//! cursor and slot versions, the consumer only reads, so neither side can
//! block the other; a consumer that gets lapped detects the version skew,
//! counts the records it lost, and resynchronizes.

use kml_telemetry::{Counter, Gauge, Registry};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// Consumer-side telemetry: ring occupancy, cumulative drops, and consumed
/// records. All handles default to no-op; [`Consumer::attach_telemetry`]
/// binds them. Updated from the consumer (the training side), never from
/// the producer, so the wait-free push path stays untouched.
#[derive(Debug, Default)]
struct RingTelemetry {
    occupancy: Gauge,
    dropped: Gauge,
    consumed: Counter,
}

struct Slot<T> {
    version: AtomicU64,
    data: UnsafeCell<MaybeUninit<T>>,
}

// Safety: access to `data` is mediated by the seqlock version protocol;
// the consumer only dereferences when the version proves the producer is
// not concurrently writing, and T: Copy means reads never observe drops.
unsafe impl<T: Copy + Send> Sync for Slot<T> {}
unsafe impl<T: Copy + Send> Send for Slot<T> {}

struct Shared<T> {
    slots: Box<[Slot<T>]>,
    /// Number of completed pushes.
    head: AtomicU64,
}

/// A bounded lock-free SPSC circular buffer with overwrite-on-overflow.
///
/// Split it into its two endpoints with [`RingBuffer::split`].
///
/// # Example
///
/// ```
/// use kml_collect::RingBuffer;
///
/// let (producer, mut consumer) = RingBuffer::<u64>::with_capacity(4).split();
/// for i in 0..6 {
///     producer.push(i); // never blocks; 0 and 1 get overwritten
/// }
/// let drained: Vec<u64> = consumer.drain().collect();
/// assert_eq!(drained, vec![2, 3, 4, 5]);
/// assert_eq!(consumer.dropped(), 2);
/// ```
#[derive(Debug)]
pub struct RingBuffer<T: Copy + Send> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Copy + Send> RingBuffer<T> {
    /// Creates a buffer holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        let slots = (0..capacity)
            .map(|_| Slot {
                version: AtomicU64::new(0),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingBuffer {
            shared: Arc::new(Shared {
                slots,
                head: AtomicU64::new(0),
            }),
        }
    }

    /// Splits into the producer and consumer endpoints.
    pub fn split(self) -> (Producer<T>, Consumer<T>) {
        (
            Producer {
                shared: self.shared.clone(),
            },
            Consumer {
                shared: self.shared,
                tail: 0,
                dropped: 0,
                telemetry: RingTelemetry::default(),
            },
        )
    }
}

/// The write endpoint: wait-free `push`, usable from the I/O path.
#[derive(Debug)]
pub struct Producer<T: Copy + Send> {
    shared: Arc<Shared<T>>,
}

impl<T: Copy + Send> Producer<T> {
    /// Appends a record, overwriting the oldest one if the buffer is full.
    /// Never blocks and never fails.
    pub fn push(&self, value: T) {
        let cap = self.shared.slots.len() as u64;
        let h = self.shared.head.load(Ordering::Relaxed);
        let slot = &self.shared.slots[(h % cap) as usize];
        let lap_base = (h / cap) * 2;
        // Mark the slot as being written (odd version).
        slot.version.store(lap_base + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // Safety: single producer; consumers never write; version is odd so
        // any concurrent reader will discard what it sees.
        unsafe {
            (*slot.data.get()).write(value);
        }
        // Publish: even version for this lap, then advance head.
        slot.version.store(lap_base + 2, Ordering::Release);
        self.shared.head.store(h + 1, Ordering::Release);
    }

    /// Total records pushed since creation.
    pub fn pushed(&self) -> u64 {
        self.shared.head.load(Ordering::Acquire)
    }

    /// Buffer capacity in records.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

/// The read endpoint: `pop`/`drain` plus loss accounting.
#[derive(Debug)]
pub struct Consumer<T: Copy + Send> {
    shared: Arc<Shared<T>>,
    /// Next record index this consumer will attempt to read.
    tail: u64,
    dropped: u64,
    telemetry: RingTelemetry,
}

impl<T: Copy + Send> Consumer<T> {
    /// Binds this consumer's metrics to a registry under `prefix`:
    /// `{prefix}.occupancy` (records waiting), `{prefix}.dropped_total`
    /// (records lost to overwriting), `{prefix}.consumed_total`. All three
    /// are maintained from the consumer side on each `pop`.
    pub fn attach_telemetry(&mut self, registry: &Registry, prefix: &str) {
        self.telemetry = RingTelemetry {
            occupancy: registry.gauge(&format!("{prefix}.occupancy")),
            dropped: registry.gauge(&format!("{prefix}.dropped_total")),
            consumed: registry.counter(&format!("{prefix}.consumed_total")),
        };
    }

    /// Removes and returns the oldest available record, or `None` if the
    /// buffer is currently empty.
    pub fn pop(&mut self) -> Option<T> {
        let out = self.pop_inner();
        if self.telemetry.occupancy.is_live() {
            if out.is_some() {
                self.telemetry.consumed.inc();
            }
            self.telemetry.dropped.set(self.dropped);
            self.telemetry.occupancy.set(self.len_estimate());
        }
        out
    }

    fn pop_inner(&mut self) -> Option<T> {
        let cap = self.shared.slots.len() as u64;
        loop {
            let h = self.shared.head.load(Ordering::Acquire);
            if self.tail >= h {
                return None;
            }
            // Lapped: everything older than h - cap is gone.
            if h - self.tail > cap {
                let lost = h - self.tail - cap;
                self.dropped += lost;
                self.tail = h - cap;
            }
            let slot = &self.shared.slots[(self.tail % cap) as usize];
            let expected = (self.tail / cap) * 2 + 2;
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 != expected {
                // The producer already started a newer lap on this slot.
                self.dropped += 1;
                self.tail += 1;
                continue;
            }
            // Safety: version matched the lap we expect, so the slot holds
            // record `tail` fully written. The read is volatile because the
            // producer may still overwrite concurrently (classic seqlock);
            // the version re-check below discards any torn copy, and
            // T: Copy guarantees discarding is side-effect free.
            let value = unsafe { std::ptr::read_volatile((*slot.data.get()).as_ptr()) };
            fence(Ordering::Acquire);
            let v2 = slot.version.load(Ordering::Acquire);
            if v2 != expected {
                // Overwritten mid-read; the copy is torn — discard it.
                self.dropped += 1;
                self.tail += 1;
                continue;
            }
            self.tail += 1;
            return Some(value);
        }
    }

    /// Drains everything currently available.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.pop())
    }

    /// Records lost to overwriting so far (the paper's configurable-capacity
    /// trade-off made visible).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records successfully consumed so far.
    pub fn consumed(&self) -> u64 {
        self.tail - self.dropped
    }

    /// Estimated records currently waiting (may race with the producer).
    pub fn len_estimate(&self) -> u64 {
        let h = self.shared.head.load(Ordering::Acquire);
        (h - self.tail).min(self.shared.slots.len() as u64)
    }

    /// Buffer capacity in records.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_when_not_full() {
        let (p, mut c) = RingBuffer::<u32>::with_capacity(8).split();
        for i in 0..5 {
            p.push(i);
        }
        let got: Vec<u32> = c.drain().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts_drops() {
        let (p, mut c) = RingBuffer::<u32>::with_capacity(3).split();
        for i in 0..10 {
            p.push(i);
        }
        let got: Vec<u32> = c.drain().collect();
        assert_eq!(got, vec![7, 8, 9]);
        assert_eq!(c.dropped(), 7);
        assert_eq!(p.pushed(), 10);
    }

    #[test]
    fn interleaved_push_pop() {
        let (p, mut c) = RingBuffer::<u32>::with_capacity(4).split();
        p.push(1);
        p.push(2);
        assert_eq!(c.pop(), Some(1));
        p.push(3);
        p.push(4);
        p.push(5); // still fits: 2,3,4,5
        assert_eq!(c.drain().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        assert_eq!(c.pop(), None);
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn empty_pop_is_none() {
        let (_p, mut c) = RingBuffer::<u64>::with_capacity(2).split();
        assert_eq!(c.pop(), None);
        assert_eq!(c.len_estimate(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::<u8>::with_capacity(0);
    }

    #[test]
    fn capacity_one_keeps_latest() {
        let (p, mut c) = RingBuffer::<u8>::with_capacity(1).split();
        for i in 0..100 {
            p.push(i);
        }
        assert_eq!(c.pop(), Some(99));
        assert_eq!(c.dropped(), 99);
    }

    #[test]
    fn concurrent_producer_consumer_accounts_for_every_record() {
        const N: u64 = 100_000;
        let (p, mut c) = RingBuffer::<u64>::with_capacity(1 << 16).split();
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(i);
            }
        });
        let mut seen = Vec::with_capacity(N as usize);
        loop {
            match c.pop() {
                Some(v) => seen.push(v),
                None => {
                    if producer.is_finished() && c.len_estimate() == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        producer.join().unwrap();
        // The consumer may get lapped under scheduler pressure, but every
        // record is either delivered (in order, uncorrupted) or counted lost.
        let mut prev = None;
        for &v in &seen {
            if let Some(p) = prev {
                assert!(v > p, "order violated: {p} then {v}");
            }
            prev = Some(v);
        }
        assert_eq!(seen.len() as u64 + c.dropped(), N);
    }

    #[test]
    fn concurrent_with_tiny_buffer_never_corrupts() {
        // Deliberately overflow: a 4-slot ring against a fast producer.
        // Values are constructed so corruption (torn reads) is detectable:
        // both halves of the tuple must match.
        const N: u64 = 50_000;
        let (p, mut c) = RingBuffer::<(u64, u64)>::with_capacity(4).split();
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push((i, i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            }
        });
        let mut consumed = 0u64;
        loop {
            match c.pop() {
                Some((a, b)) => {
                    assert_eq!(b, a.wrapping_mul(0x9e37_79b9_7f4a_7c15), "torn read");
                    consumed += 1;
                }
                None => {
                    if producer.is_finished() && c.len_estimate() == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        producer.join().unwrap();
        assert_eq!(consumed + c.dropped(), N);
    }

    #[test]
    fn len_estimate_tracks_backlog() {
        let (p, mut c) = RingBuffer::<u8>::with_capacity(8).split();
        assert_eq!(c.len_estimate(), 0);
        p.push(1);
        p.push(2);
        assert_eq!(c.len_estimate(), 2);
        c.pop();
        assert_eq!(c.len_estimate(), 1);
    }

    #[test]
    fn telemetry_tracks_occupancy_and_drops() {
        let reg = Registry::new();
        let (p, mut c) = RingBuffer::<u32>::with_capacity(3).split();
        c.attach_telemetry(&reg, "ring");
        for i in 0..8 {
            p.push(i); // 5 oldest overwritten
        }
        assert_eq!(c.pop(), Some(5));
        assert_eq!(c.pop(), Some(6));
        if reg.is_enabled() {
            let snap = reg.snapshot();
            assert_eq!(snap.counter("ring.consumed_total"), Some(2));
            assert_eq!(snap.gauge("ring.dropped_total"), Some(5));
            assert_eq!(snap.gauge("ring.occupancy"), Some(1));
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// Conservation law under arbitrary interleavings and wraparound:
        /// every pushed record is either delivered (in order, exactly once)
        /// or counted in `dropped()` — including capacity 1, where almost
        /// everything is overwritten. Values are sequence numbers, so the
        /// exact loss per pop is checkable: popping `v` after expecting
        /// `next` means precisely `v - next` records were overwritten.
        #[test]
        fn prop_drop_accounting_is_exact(
            cap in 1usize..5,
            ops in proptest::collection::vec((0u8..2, 1u64..8), 1..200)
        ) {
            let (p, mut c) = RingBuffer::<u64>::with_capacity(cap).split();
            let mut pushed = 0u64;
            let mut next_expected = 0u64;
            for (op, n) in ops {
                if op == 0 {
                    for _ in 0..n {
                        p.push(pushed);
                        pushed += 1;
                    }
                } else {
                    for _ in 0..n {
                        let before = c.dropped();
                        match c.pop() {
                            Some(v) => {
                                prop_assert!(v >= next_expected, "replay: {v} < {next_expected}");
                                prop_assert_eq!(c.dropped() - before, v - next_expected);
                                next_expected = v + 1;
                            }
                            None => {
                                // Empty: every push is accounted for.
                                prop_assert_eq!(c.consumed() + c.dropped(), pushed);
                                break;
                            }
                        }
                    }
                }
            }
            // Final drain settles the books completely.
            while c.pop().is_some() {}
            prop_assert_eq!(c.consumed() + c.dropped(), pushed);
            prop_assert_eq!(p.pushed(), pushed);
        }
    }
}
