//! # kml-collect — data collection and asynchronous training (paper §3.1–§3.2)
//!
//! KML collects training data on the I/O path — "highly sensitive to
//! additional latencies" — so the inline hook must do almost nothing: it
//! pushes a fixed-size record into a **lock-free circular buffer** and
//! returns. A dedicated **asynchronous training thread** drains the buffer,
//! runs the computation-heavy normalization (which needs the FPU), and
//! trains. If the producer outruns the consumer the buffer **overwrites the
//! oldest records and counts the loss**, exactly the trade-off §3.1
//! describes ("losing part of the training data could reduce the model's
//! accuracy, users must carefully configure the circular buffer size").
//!
//! Components:
//!
//! - [`ringbuf::RingBuffer`] — bounded lock-free SPSC queue with overwrite
//!   semantics and drop accounting.
//! - [`stats`] — the paper's data-normalization toolkit: cumulative moving
//!   average, cumulative moving standard deviation (Welford), windowed
//!   moving average, and running Z-score.
//! - [`featurize`] — the shared window engine: channelized streaming
//!   accumulators + the per-window roll discipline every tuner (readahead,
//!   iosched, netfs rsize) builds its feature vectors on.
//! - [`event`] — fixed-size `Copy` event records for the ring; currently
//!   the RPC lifecycle events of the network storage path.
//! - [`trainer::AsyncTrainer`] — the training-thread harness: give it a
//!   buffer and a train callback; it owns the KML training kthread.
//! - [`pool`] — the §6 extension: sharded collection feeding a pool of
//!   parallel training threads (lifting the single-thread limitation the
//!   paper notes in §3.2).

pub mod event;
pub mod featurize;
pub mod pool;
pub mod ringbuf;
pub mod stats;
pub mod trainer;

pub use event::{RpcEvent, RpcEventKind};
pub use featurize::{Channel, FeatureBatch, WindowedFeatures};
pub use pool::{ShardedCollector, TrainerPool};
pub use ringbuf::RingBuffer;
pub use stats::{CumulativeStats, MovingAverage, ZScore};
pub use trainer::{AsyncTrainer, TRAINER_BACKLOG_METRIC, TRAINER_DROPPED_METRIC};
