//! Parallel training threads (paper §3.2 limitation, lifted per §6).
//!
//! "KML currently supports only one asynchronous training thread, since our
//! current prototype supports only chain computation graphs that have to be
//! processed serially." The §6 RNN/LSTM plans "would require spawning
//! several parallel training threads" — this module provides them:
//!
//! - [`ShardedCollector`] splits the collection path across `n` independent
//!   SPSC rings; the producer routes each record by a caller-supplied shard
//!   key (e.g. inode), so per-shard ordering is preserved while shards
//!   drain in parallel.
//! - [`TrainerPool`] owns one [`AsyncTrainer`] per shard, each running the
//!   caller's training function on its own KML thread.

use crate::ringbuf::{Consumer, Producer, RingBuffer};
use crate::trainer::AsyncTrainer;
use kml_platform::Persona;

/// The write side of a sharded collection path: one wait-free SPSC producer
/// per shard, routed by key.
#[derive(Debug)]
pub struct ShardedCollector<T: Copy + Send> {
    producers: Vec<Producer<T>>,
}

impl<T: Copy + Send> ShardedCollector<T> {
    /// Creates `shards` rings of `capacity` records each; returns the
    /// producer-side collector and the per-shard consumers.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `capacity == 0`.
    pub fn new(shards: usize, capacity: usize) -> (Self, Vec<Consumer<T>>) {
        assert!(shards > 0, "need at least one shard");
        let mut producers = Vec::with_capacity(shards);
        let mut consumers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (p, c) = RingBuffer::with_capacity(capacity).split();
            producers.push(p);
            consumers.push(c);
        }
        (ShardedCollector { producers }, consumers)
    }

    /// Pushes a record to the shard selected by `key` (stable modulo
    /// hashing, so records with equal keys stay ordered). Wait-free.
    pub fn push(&self, key: u64, value: T) {
        let shard = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.producers.len();
        self.producers[shard].push(value);
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.producers.len()
    }

    /// Total records pushed across all shards.
    pub fn pushed(&self) -> u64 {
        self.producers.iter().map(Producer::pushed).sum()
    }
}

/// A pool of asynchronous training threads, one per shard.
#[derive(Debug)]
pub struct TrainerPool {
    trainers: Vec<AsyncTrainer>,
}

impl TrainerPool {
    /// Spawns one training thread per consumer. `make_train` is called once
    /// per shard (with the shard index) to build that shard's training
    /// function — each shard gets independent model state, which is what
    /// makes parallel training safe without locks.
    ///
    /// # Errors
    ///
    /// Returns a platform error if any thread cannot be spawned (already
    /// spawned threads are stopped and joined before returning).
    pub fn spawn<T, F, G>(
        persona: Persona,
        consumers: Vec<Consumer<T>>,
        mut make_train: G,
    ) -> kml_platform::Result<Self>
    where
        T: Copy + Send + 'static,
        F: FnMut(&[T]) + Send + 'static,
        G: FnMut(usize) -> F,
    {
        let mut trainers = Vec::with_capacity(consumers.len());
        for (shard, consumer) in consumers.into_iter().enumerate() {
            match AsyncTrainer::spawn(persona, consumer, make_train(shard)) {
                Ok(t) => trainers.push(t),
                Err(e) => {
                    for t in trainers {
                        let _ = t.stop();
                    }
                    return Err(e);
                }
            }
        }
        Ok(TrainerPool { trainers })
    }

    /// Number of training threads.
    pub fn len(&self) -> usize {
        self.trainers.len()
    }

    /// Whether the pool has no threads.
    pub fn is_empty(&self) -> bool {
        self.trainers.is_empty()
    }

    /// Total records delivered to training functions across all shards.
    pub fn samples_processed(&self) -> u64 {
        self.trainers
            .iter()
            .map(AsyncTrainer::samples_processed)
            .sum()
    }

    /// Total records lost to ring overwrites across all shards.
    pub fn samples_dropped(&self) -> u64 {
        self.trainers
            .iter()
            .map(AsyncTrainer::samples_dropped)
            .sum()
    }

    /// Drains remaining records, stops, and joins every thread.
    ///
    /// # Errors
    ///
    /// Returns the first panic-derived error encountered; every thread is
    /// stopped regardless.
    pub fn stop(self) -> kml_platform::Result<()> {
        let mut first_err = None;
        for t in self.trainers {
            if let Err(e) = t.stop() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn sharding_routes_by_key_consistently() {
        let (collector, mut consumers) = ShardedCollector::<u64>::new(4, 64);
        // Same key → same shard, every time.
        for _ in 0..10 {
            collector.push(42, 42);
        }
        let counts: Vec<usize> = consumers.iter_mut().map(|c| c.drain().count()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn sharding_spreads_distinct_keys() {
        let (collector, mut consumers) = ShardedCollector::<u64>::new(4, 1 << 12);
        for key in 0..1000u64 {
            collector.push(key, key);
        }
        let counts: Vec<usize> = consumers.iter_mut().map(|c| c.drain().count()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        // Every shard gets a meaningful share (hash spreading).
        assert!(
            counts.iter().all(|&c| c > 100),
            "unbalanced shards: {counts:?}"
        );
    }

    #[test]
    fn pool_trains_all_shards_in_parallel() {
        let (collector, consumers) = ShardedCollector::<u64>::new(3, 1 << 12);
        let totals: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
        let pool = TrainerPool::spawn(Persona::Kernel, consumers, |shard| {
            let totals = totals.clone();
            move |batch: &[u64]| {
                totals[shard].fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
        })
        .expect("pool spawns");
        assert_eq!(pool.len(), 3);
        for key in 0..3000u64 {
            collector.push(key, key);
        }
        while pool.samples_processed() + pool.samples_dropped() < 3000 {
            std::thread::yield_now();
        }
        pool.stop().expect("pool stops");
        let per_shard: Vec<u64> = totals.iter().map(|t| t.load(Ordering::Relaxed)).collect();
        assert_eq!(per_shard.iter().sum::<u64>(), 3000);
        assert!(
            per_shard.iter().all(|&c| c > 0),
            "idle shard: {per_shard:?}"
        );
    }

    /// Per-shard record log used by the ordering test.
    type ShardLog = Arc<Mutex<Vec<Vec<(u64, u64)>>>>;

    #[test]
    fn per_shard_ordering_is_preserved() {
        let (collector, consumers) = ShardedCollector::<(u64, u64)>::new(2, 1 << 12);
        let seen: ShardLog = Arc::new(Mutex::new(vec![Vec::new(), Vec::new()]));
        let pool = TrainerPool::spawn(Persona::User, consumers, |shard| {
            let seen = seen.clone();
            move |batch: &[(u64, u64)]| {
                seen.lock().expect("no poisoning")[shard].extend_from_slice(batch);
            }
        })
        .expect("pool spawns");
        // Two interleaved streams keyed by 0 and 1, each with a sequence no.
        for seq in 0..500u64 {
            collector.push(0, (0, seq));
            collector.push(1, (1, seq));
        }
        while pool.samples_processed() < 1000 {
            std::thread::yield_now();
        }
        pool.stop().expect("pool stops");
        let seen = seen.lock().expect("no poisoning");
        for shard in seen.iter() {
            // Within a shard, each key's sequence numbers arrive in order.
            for key in [0u64, 1] {
                let seqs: Vec<u64> = shard
                    .iter()
                    .filter(|(k, _)| *k == key)
                    .map(|(_, s)| *s)
                    .collect();
                assert!(
                    seqs.windows(2).all(|w| w[0] < w[1]),
                    "ordering broken for key {key}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedCollector::<u8>::new(0, 8);
    }
}
