//! Failure shrinking: from "seed X fails somewhere in 400 ops with every
//! fault kind live" to the smallest scenario that still fails.
//!
//! Two passes, both re-running the (cheap, deterministic) harness:
//!
//! 1. **Ops**: binary-search the smallest op count that still fails.
//!    Fewer ops also *moves the final sweep earlier*, so this can land
//!    below the step the original violation fired at. Divergence is not
//!    strictly monotone in ops (a later put can re-insert a lost key and
//!    mask the loss), so the search result is verified and the largest
//!    known-failing count kept as the fallback.
//! 2. **Fault kinds**: greedily disable each kind in
//!    [`FaultMask::KINDS`] (device faults, network faults, and the
//!    scripted lifecycle events); keep a kind disabled only if the
//!    scenario still fails without it. What remains is the set of faults
//!    actually implicated.

use crate::harness::{run, FailureReport, Outcome};
use crate::scenario::{FaultMask, Scenario};

/// A minimised failure.
#[derive(Debug)]
pub struct Shrunk {
    /// The smallest scenario found that still fails.
    pub scenario: Scenario,
    /// The failure that scenario produces.
    pub report: Box<FailureReport>,
    /// Harness re-runs the search spent.
    pub attempts: u32,
}

impl Shrunk {
    /// The minimal reproducer line (same as `report.reproducer()`).
    pub fn reproducer(&self) -> String {
        self.report.reproducer()
    }
}

/// Minimises `report`'s scenario. The input scenario must actually fail
/// (which it did — we hold its report); the output is guaranteed to fail,
/// re-verified on every candidate.
pub fn shrink(report: &FailureReport) -> Shrunk {
    let mut attempts = 0u32;
    let mut try_scenario = |s: &Scenario| -> Option<Box<FailureReport>> {
        attempts += 1;
        match run(s) {
            Outcome::Pass(_) => None,
            Outcome::Fail(r) => Some(r),
        }
    };

    let mut best = report.scenario;
    let mut best_report: Box<FailureReport> = Box::new(report.clone());

    // Pass 1: minimal ops. The violation fired at `report.step`, so
    // anything past step+1 is dead weight; below that, search.
    let cap = best.ops.min(report.step + 1).max(1);
    let candidate = Scenario { ops: cap, ..best };
    if let Some(r) = try_scenario(&candidate) {
        best = candidate;
        best_report = r;
    }
    let (mut lo, mut hi) = (1u64, best.ops);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let candidate = Scenario { ops: mid, ..best };
        match try_scenario(&candidate) {
            Some(r) => {
                best = candidate;
                best_report = r;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }

    // Pass 2: drop fault kinds that are not implicated.
    for (kind, _) in FaultMask::KINDS {
        if best.disabled.contains(kind) {
            continue;
        }
        let candidate = Scenario {
            disabled: best.disabled.with(kind),
            ..best
        };
        if let Some(r) = try_scenario(&candidate) {
            best = candidate;
            best_report = r;
        }
    }

    Shrunk {
        scenario: best,
        report: best_report,
        attempts,
    }
}
