//! The DST harness: runs one seeded scenario end to end through the full
//! closed loop and checks every cross-layer invariant after every step.
//!
//! The stack under test is exactly the production wiring of
//! `readahead::closed_loop`: a [`Sim`] with telemetry and a tracepoint
//! ring attached, an LSM [`Db`] on top, and a [`KmlTuner`] draining the
//! ring and re-tuning readahead once per window — except the device
//! carries a seeded [`FaultPlan`] and the store is shadowed by a
//! `BTreeSet` reference model.

use crate::scenario::{FaultMask, Scenario, SeedStream};
use kernel_sim::sim::Advice;
use kernel_sim::{DeviceProfile, FaultPlan, FaultStats, FileId, Sim, SimConfig};
use kml_collect::RingBuffer;
use kml_continual::{
    train_candidate, ContinualConfig, ContinualController, DriftConfig, ReservoirSample,
    RetrainMode, RetrainSpec,
};
use kml_core::dataset::Dataset;
use kml_core::dtree::{DecisionTree, DecisionTreeConfig};
use kml_core::model::ModelBuilder;
use kml_lifecycle::{
    save_model, ArtifactKind, LifecycleController, LifecycleEvent, LifecycleTarget, WatchdogConfig,
};
use kml_telemetry::Registry;
use kvstore::{Db, DbConfig};
use netfs::{NetProfile, NfsMount, RsizePolicy, RsizeTuner, RsizeTunerModel};
use readahead::tuner::{KmlTuner, RaPolicy, TunerModel};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Readahead in force before the tuner's first decision, KiB.
const INITIAL_RA_KB: u32 = 128;
/// The two readahead settings the harness policy can actuate, KiB.
const POLICY_RA_KB: [u32; 2] = [16, 1024];
/// The two rsize settings the netfs harness policy can actuate, KiB.
const POLICY_RSIZE_KB: [u32; 2] = [1024, 64];
/// Events kept in a failure report (the tail of the run).
const TRACE_TAIL: usize = 16;

/// One step of the event trace: enough to diff two replays and to read a
/// failure's last moments, small enough to hash byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Step index.
    pub step: u64,
    /// Op discriminant (see `OP_NAMES`).
    pub op: u8,
    /// Key / page argument of the op.
    pub key: u64,
    /// Simulated clock after the op, ns.
    pub clock_ns: u64,
    /// 0 = ok/absent, 1 = ok/present, 2 = io error.
    pub code: u8,
}

/// Names for `Event::op`, index-aligned with the dispatch in `run_inner`
/// (`net_read`/`net_write` belong to `run_netfs_inner`; the `lc_*` codes
/// are emitted by lifecycle scenarios — and `lc_promote`/`lc_rollback`
/// also by continual scenarios, whose own arc events get the `ct_*`
/// codes — so pre-lifecycle trace hashes are untouched).
pub const OP_NAMES: [&str; 21] = [
    "put",
    "get",
    "scan",
    "scan_reverse",
    "seq_read",
    "rand_read",
    "flush",
    "compact",
    "sync",
    "drop_caches",
    "fadvise",
    "mmap_read",
    "net_read",
    "net_write",
    "lc_stage",
    "lc_install",
    "lc_corrupt",
    "lc_promote",
    "lc_rollback",
    "ct_drift",
    "ct_retrain",
];

/// `Event::op` codes for the scripted lifecycle events.
const OP_LC_STAGE: u8 = 14;
const OP_LC_INSTALL: u8 = 15;
const OP_LC_CORRUPT: u8 = 16;
const OP_LC_PROMOTE: u8 = 17;
const OP_LC_ROLLBACK: u8 = 18;
/// `Event::op` codes for the continual loop's arc events.
const OP_CT_DRIFT: u8 = 19;
const OP_CT_RETRAIN: u8 = 20;

/// Everything a passing run proves, plus the fingerprint replays must
/// reproduce bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// FNV-1a over every event field, in order.
    pub trace_hash: u64,
    /// Steps executed (the scenario's `ops`).
    pub steps: u64,
    /// Ops that surfaced an injected I/O error (gracefully).
    pub io_errors: u64,
    /// What the fault layer actually injected.
    pub injected: FaultStats,
    /// Tuner decisions taken.
    pub decisions: u64,
    /// Tracepoint records lost to ring overwrites.
    pub ring_dropped: u64,
    /// Shadow promotions the lifecycle watchdog executed (lifecycle
    /// scenarios; 0 otherwise).
    pub promotions: u64,
    /// Rollbacks the lifecycle watchdog executed (lifecycle scenarios;
    /// 0 otherwise).
    pub rollbacks: u64,
    /// Drift triggers the continual detector fired (continual scenarios;
    /// 0 otherwise).
    pub drift_events: u64,
    /// Reservoir retrains the continual controller ran (continual
    /// scenarios; 0 otherwise).
    pub retrains: u64,
}

/// A caught invariant violation, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The scenario that failed.
    pub scenario: Scenario,
    /// Step at which the invariant broke (`scenario.ops` = final sweep).
    pub step: u64,
    /// Which invariant ("I1.lsm-vs-reference", "I2.cache-accounting", …).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
    /// The last [`TRACE_TAIL`] events before the violation.
    pub trace_tail: Vec<Event>,
}

impl FailureReport {
    /// The shell line that replays this failure deterministically.
    pub fn reproducer(&self) -> String {
        let mut line = format!(
            "KML_DST_SEED=0x{:016x} KML_DST_OPS={}",
            self.scenario.seed, self.scenario.ops
        );
        let disabled = self.scenario.disabled.to_env();
        if !disabled.is_empty() {
            line.push_str(&format!(" KML_DST_DISABLE={disabled}"));
        }
        if self.scenario.lsm_bug {
            line.push_str(" KML_DST_LSM_BUG=1");
        }
        if self.scenario.netfs {
            line.push_str(" KML_DST_NETFS=1");
        }
        if self.scenario.lifecycle {
            line.push_str(" KML_DST_LIFECYCLE=1");
        }
        if self.scenario.continual {
            line.push_str(" KML_DST_CONTINUAL=1");
        }
        line.push_str(" cargo test -p kml-dst replays_reproducer_from_env");
        line
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "DST invariant {} violated at step {} (seed 0x{:016x})",
            self.invariant, self.step, self.scenario.seed
        )?;
        writeln!(f, "  {}", self.detail)?;
        for e in &self.trace_tail {
            writeln!(
                f,
                "  step {:>6}  {:<12} key={:<6} code={} t={}ns",
                e.step, OP_NAMES[e.op as usize], e.key, e.code, e.clock_ns
            )?;
        }
        write!(f, "  reproduce: {}", self.reproducer())
    }
}

/// Result of one scenario run.
#[derive(Debug)]
pub enum Outcome {
    /// All invariants held for every step.
    Pass(RunSummary),
    /// An invariant broke (boxed: the report carries the trace tail).
    Fail(Box<FailureReport>),
}

impl Outcome {
    /// Whether the run passed.
    pub fn passed(&self) -> bool {
        matches!(self, Outcome::Pass(_))
    }
}

fn fnv1a(hash: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// The tiniest model that exercises the real inference path: a two-leaf
/// tree fit on two hand-rows (class 0 = sequential-looking windows →
/// large readahead, class 1 = random-looking → small). The DST harness
/// validates the *loop*, not the model's accuracy, so fitting the paper
/// network here would only add minutes per scenario.
fn harness_model() -> TunerModel {
    let dataset = Dataset::from_rows(
        &[
            vec![1.0, 0.0, 0.0, 1000.0, 128.0],
            vec![1.0, 0.0, 0.0, 1.0, 128.0],
        ],
        &[0, 1],
    )
    .expect("two fixed rows always form a dataset");
    let tree = DecisionTree::fit(&dataset, DecisionTreeConfig::default())
        .expect("two-row dataset always fits");
    TunerModel::Tree(tree)
}

/// Watchdog tuning for the lifecycle script: small window counts so a
/// 400-op scenario has room for a full stage → promote → regress →
/// rollback arc at any seeded observation cadence.
fn lifecycle_watchdog() -> WatchdogConfig {
    WatchdogConfig {
        baseline_windows: 2,
        promote_after: 3,
        regress_windows: 2,
        regress_ratio: 0.85,
    }
}

/// A seeded, untrained `.kmlm` artifact for `kind`. The DST harness
/// validates the lifecycle *machinery* — staging, promotion, rollback
/// atomicity — not model quality, so an arbitrary seeded network with the
/// right feature schema and class count is exactly enough.
fn lifecycle_artifact(kind: ArtifactKind, classes: usize, seed: u64) -> Vec<u8> {
    let mut model = ModelBuilder::readahead_paper_topology(kind.feature_names().len(), classes)
        .seed(seed)
        .build::<f32>()
        .expect("seeded untrained model always builds");
    save_model(kind, &mut model).expect("fresh model always serialises")
}

/// The scripted lifecycle events of a lifecycle scenario, plus the state
/// for invariants I11–I13. Generic over the swap target so the same
/// script drives the readahead loop (device faults) and the netfs rsize
/// loop (network faults).
struct LifecycleScript {
    controller: LifecycleController,
    p: crate::scenario::LifecycleParams,
    shadow_artifact: Vec<u8>,
    regress_artifact: Vec<u8>,
    corrupt_artifact: Vec<u8>,
    do_shadow: bool,
    do_regress: bool,
    do_corrupt: bool,
    staged: bool,
    regressed: bool,
    corrupted: bool,
    regressed_gen: Option<u64>,
    windows_on_regressed: u64,
    /// Every generation ever installed into the target — a decision
    /// tagged with anything else means the shadow (or a torn install)
    /// actuated (I12).
    installed_gens: Vec<u64>,
    /// Decisions already checked against `installed_gens`.
    decision_cursor: usize,
    promotions: u64,
    rollbacks: u64,
}

/// `(op, key, code)` trace triples emitted by a lifecycle step, or the
/// invariant an event exposed plus its detail line.
type LifecycleStepResult = Result<Vec<(u8, u64, u8)>, (&'static str, String)>;

impl LifecycleScript {
    fn new<T: LifecycleTarget>(
        scenario: &Scenario,
        target: &mut T,
        kind: ArtifactKind,
        classes: usize,
    ) -> Result<Self, kml_lifecycle::ArtifactError> {
        let p = scenario.lifecycle_params();
        let controller = LifecycleController::new(
            lifecycle_watchdog(),
            target,
            lifecycle_artifact(kind, classes, p.initial_seed),
        )?;
        let shadow_artifact = lifecycle_artifact(kind, classes, p.shadow_seed);
        let mut corrupt_artifact = shadow_artifact.clone();
        let flip = corrupt_artifact.len() / 2;
        corrupt_artifact[flip] ^= 0xA5;
        Ok(LifecycleScript {
            controller,
            p,
            shadow_artifact,
            regress_artifact: lifecycle_artifact(kind, classes, p.regress_seed),
            corrupt_artifact,
            do_shadow: !scenario.disabled.contains(FaultMask::LC_SHADOW),
            do_regress: !scenario.disabled.contains(FaultMask::LC_REGRESS),
            do_corrupt: !scenario.disabled.contains(FaultMask::LC_CORRUPT),
            staged: false,
            regressed: false,
            corrupted: false,
            regressed_gen: None,
            windows_on_regressed: 0,
            installed_gens: vec![1],
            decision_cursor: 0,
            promotions: 0,
            rollbacks: 0,
        })
    }

    /// Runs this step's scripted events against `target`. Returns the
    /// events to record as `(op, key, code)` triples, or the invariant
    /// violation they exposed.
    fn on_step<T: LifecycleTarget>(&mut self, target: &mut T, step: u64) -> LifecycleStepResult {
        let mut out = Vec::new();
        if self.do_corrupt && !self.corrupted && step == self.p.corrupt_step {
            self.corrupted = true;
            let gen_before = target.generation();
            if target
                .install_artifact(&self.corrupt_artifact, gen_before + 1000)
                .is_ok()
            {
                return Err((
                    "I13.artifact-atomic",
                    "a corrupted artifact was accepted".to_string(),
                ));
            }
            if target.generation() != gen_before {
                return Err((
                    "I13.artifact-atomic",
                    format!(
                        "a failed install moved the generation {gen_before} -> {}",
                        target.generation()
                    ),
                ));
            }
            out.push((OP_LC_CORRUPT, gen_before, 2));
        }
        if self.do_shadow && !self.staged && step == self.p.stage_step {
            self.staged = true;
            let gen_before = target.generation();
            self.controller
                .stage_shadow(target, self.shadow_artifact.clone())
                .map_err(|e| {
                    (
                        "I13.artifact-atomic",
                        format!("staging a valid shadow failed: {e:?}"),
                    )
                })?;
            if target.generation() != gen_before {
                return Err((
                    "I12.shadow-never-actuates",
                    "staging a shadow changed the active generation".to_string(),
                ));
            }
            out.push((OP_LC_STAGE, 0, 0));
        }
        if self.do_regress && !self.regressed && step == self.p.regress_step {
            self.regressed = true;
            let generation = self
                .controller
                .install(target, self.regress_artifact.clone())
                .map_err(|e| {
                    (
                        "I13.artifact-atomic",
                        format!("installing a valid artifact failed: {e:?}"),
                    )
                })?;
            self.regressed_gen = Some(generation);
            self.installed_gens.push(generation);
            out.push((OP_LC_INSTALL, generation, 0));
        }
        if (step + 1).is_multiple_of(self.p.observe_every) {
            // Stub models do not differ in real loop quality, so the
            // regression signal is scripted: the regressed generation
            // settles its own (lower) baseline over the warmup windows,
            // then collapses below the watchdog's regress ratio.
            let throughput = if self.regressed_gen == Some(self.controller.generation()) {
                self.windows_on_regressed += 1;
                if self.windows_on_regressed <= u64::from(lifecycle_watchdog().baseline_windows) {
                    600.0
                } else {
                    300.0
                }
            } else {
                1000.0
            };
            match self.controller.observe_window(target, throughput) {
                Ok(None) => {}
                Ok(Some(LifecycleEvent::Promoted { to, .. })) => {
                    self.installed_gens.push(to);
                    self.promotions += 1;
                    out.push((OP_LC_PROMOTE, to, 0));
                }
                Ok(Some(LifecycleEvent::RolledBack { to, .. })) => {
                    self.rollbacks += 1;
                    if target.generation() != to {
                        return Err((
                            "I11.swap-atomic",
                            format!(
                                "rollback restored generation {to} but the loop holds {}",
                                target.generation()
                            ),
                        ));
                    }
                    out.push((OP_LC_ROLLBACK, to, 0));
                }
                Err(e) => {
                    return Err((
                        "I13.artifact-atomic",
                        format!("a watchdog-driven install failed: {e:?}"),
                    ))
                }
            }
        }
        // I11: the loop is never left actuating a generation the
        // controller does not consider active.
        if target.generation() != self.controller.generation() {
            return Err((
                "I11.swap-atomic",
                format!(
                    "loop serves generation {} but the controller holds {}",
                    target.generation(),
                    self.controller.generation()
                ),
            ));
        }
        Ok(out)
    }

    /// I12 bookkeeping: every decision generation in `new_decisions`
    /// (this step's suffix of the tuner's decision log) must have been
    /// installed — a shadow candidate has no generation, so a shadow that
    /// actuated shows up here.
    fn check_decisions(&mut self, generations: impl Iterator<Item = u64>) -> Result<(), String> {
        for generation in generations {
            if !self.installed_gens.contains(&generation) {
                return Err(format!(
                    "a decision is tagged with never-installed generation {generation}"
                ));
            }
        }
        Ok(())
    }
}

/// Drift tuning for the continual loop: reference and block windows small
/// enough that a sweep-sized run completes the full reference → trigger →
/// retrain → shadow → promotion arc, with a threshold high enough that
/// the *stationary* op mix (whose window features vary plenty) never
/// trips it — the no-drift control leans on exactly that.
fn continual_drift() -> DriftConfig {
    DriftConfig {
        reference_windows: 6,
        block_windows: 8,
        threshold: 3.0,
        trigger_blocks: 3,
        abs_floor: 1.0,
    }
}

/// Windows dropped before the controller starts observing: the first few
/// windows after boot are cache-warmup transients whose features sit far
/// from the steady mix, and a reference contaminated by them reads the
/// settling *as* drift — the no-drift control must never do that.
const CT_WARMUP_WINDOWS: u32 = 4;

/// Log-compressed features for the continual loop's detector, reservoir,
/// and model. The raw window features span orders of magnitude and their
/// window-to-window variance under the mixed op stream is enormous (a
/// window can be db-heavy or aux-heavy), which drowns the workload shift
/// in reference noise *and* lets warmup phases fire spurious triggers.
/// In log space the mix variance is a few bits while the workload pivot
/// moves the offset channels by several bits — cleanly separable.
/// The trailing knob channel stays raw (it is excluded from drift).
fn continual_features(raw: &[f64; 5]) -> [f64; 5] {
    [
        (1.0 + raw[0]).log2(),
        (1.0 + raw[1]).log2(),
        (1.0 + raw[2]).log2(),
        (1.0 + raw[3]).log2(),
        raw[4],
    ]
}

/// The initial (generation 1) artifact for a continual scenario: trained
/// through the same `train_candidate` packaging path the live retrainer
/// uses, on a seeded random-phase cluster (in the same log-feature space
/// the loop serves) labeled class 0, so pre-shift windows actuate the
/// small readahead and the shift genuinely hurts.
fn continual_initial_artifact(p: &crate::scenario::ContinualParams) -> Result<Vec<u8>, String> {
    let mut samples = Vec::with_capacity(32);
    for j in 0..32u64 {
        let jit = |k: u64| ((j * 7 + k) % 11) as f64 * 0.1;
        let raw = [80.0, 2.0e4, 1.8e4, 5.0e2, f64::from(INITIAL_RA_KB)];
        let mut features = continual_features(&raw);
        for (k, f) in features.iter_mut().take(4).enumerate() {
            *f += jit(k as u64);
        }
        samples.push(ReservoirSample {
            id: j,
            priority: 0,
            features,
            label: 0,
        });
    }
    train_candidate(
        &RetrainSpec {
            kind: ArtifactKind::Readahead,
            classes: POLICY_RA_KB.len(),
            epochs: 40,
            seed: p.initial_seed,
        },
        0,
        &samples,
    )
}

/// The live continual loop of a continual scenario, plus the bookkeeping
/// for invariants I14–I16.
struct ContinualScript {
    controller: ContinualController,
    /// Step at which the op mix pivots to the sequential scan.
    shift_step: u64,
    /// Whether the shift actually happens (`ct_shift` not disabled —
    /// disabled turns the run into its own no-drift control).
    shift_enabled: bool,
    capacity: usize,
    /// Every generation ever installed into the tuner; a decision tagged
    /// with anything else means a candidate actuated before promotion.
    installed_gens: Vec<u64>,
    decision_cursor: usize,
    /// Warmup windows left to drop before the controller observes.
    warmup_left: u32,
    /// Running totals for un-cumulating the extractor's offset channels
    /// (which accumulate over the whole run): records seen, Σoffset, and
    /// Σoffset² up to the previous window.
    total_records: f64,
    sum_offset: f64,
    sum_offset2: f64,
}

impl ContinualScript {
    fn new(scenario: &Scenario, tuner: &mut KmlTuner) -> Result<Self, String> {
        let p = scenario.continual_params();
        let cfg = ContinualConfig {
            drift: continual_drift(),
            reservoir_capacity: p.reservoir_capacity,
            seed: p.retrain_seed ^ 0x5EED,
            min_samples: 8,
            watchdog: lifecycle_watchdog(),
            spec: RetrainSpec {
                kind: ArtifactKind::Readahead,
                classes: POLICY_RA_KB.len(),
                epochs: 40,
                seed: p.retrain_seed,
            },
        };
        let initial = continual_initial_artifact(&p)?;
        let controller = ContinualController::new(cfg, tuner, initial, RetrainMode::Inline)
            .map_err(|e| e.to_string())?;
        Ok(ContinualScript {
            controller,
            shift_step: scenario.ops * p.shift_pct / 100,
            shift_enabled: !scenario.disabled.contains(FaultMask::CT_SHIFT),
            capacity: p.reservoir_capacity,
            installed_gens: vec![1],
            decision_cursor: 0,
            warmup_left: CT_WARMUP_WINDOWS,
            total_records: 0.0,
            sum_offset: 0.0,
            sum_offset2: 0.0,
        })
    }

    /// The drift/reservoir feature vector for one window. The extractor's
    /// mean/std offset channels are *cumulative* over the whole run, so a
    /// step change in the workload only shows up as an asymptotic ramp
    /// there; this un-cumulates them via running Σoffset / Σoffset²
    /// totals, recovering the genuinely per-window mean and std the
    /// detector needs to see the pivot as a step. Everything then goes
    /// through the log compression of [`continual_features`].
    fn window_phi(&mut self, raw: &[f64; 5]) -> [f64; 5] {
        let n = raw[0];
        let (w_mean, w_std) = if n > 0.0 {
            let total = self.total_records + n;
            let sum = raw[1] * total;
            let sum2 = (raw[2] * raw[2] + raw[1] * raw[1]) * total;
            let wm = (sum - self.sum_offset) / n;
            let we2 = (sum2 - self.sum_offset2) / n;
            let ws = (we2 - wm * wm).max(0.0).sqrt();
            self.total_records = total;
            self.sum_offset = sum;
            self.sum_offset2 = sum2;
            (wm.max(0.0), ws)
        } else {
            (0.0, 0.0)
        };
        continual_features(&[n, w_mean, w_std, raw[3], raw[4]])
    }
}

/// Runs `scenario`, converting any panic into an `I5.no-panic` failure.
/// All state is built fresh from the seed inside the call, so replays are
/// byte-identical regardless of what other tests (or threads) are doing.
pub fn run(scenario: &Scenario) -> Outcome {
    let scenario = *scenario;
    let inner = move || {
        if scenario.netfs {
            run_netfs_inner(&scenario)
        } else {
            run_inner(&scenario)
        }
    };
    match catch_unwind(AssertUnwindSafe(inner)) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Fail(Box::new(FailureReport {
                scenario,
                step: 0,
                invariant: "I5.no-panic",
                detail: format!("panicked: {msg}"),
                trace_tail: Vec::new(),
            }))
        }
    }
}

struct Harness {
    sim: Sim,
    db: Db,
    reference: BTreeSet<u64>,
    tuner: KmlTuner,
    consumed_total: kml_telemetry::Counter,
    aux: FileId,
    aux_pages: u64,
    key_space: u64,
    events: Vec<Event>,
    trace_hash: u64,
    io_errors: u64,
    prev_clock: u64,
    seq_cursor: u64,
}

impl Harness {
    fn record(&mut self, step: u64, op: u8, key: u64, code: u8) {
        let e = Event {
            step,
            op,
            key,
            clock_ns: self.sim.now_ns(),
            code,
        };
        fnv1a(&mut self.trace_hash, e.step);
        fnv1a(&mut self.trace_hash, u64::from(e.op));
        fnv1a(&mut self.trace_hash, e.key);
        fnv1a(&mut self.trace_hash, e.clock_ns);
        fnv1a(&mut self.trace_hash, u64::from(e.code));
        if e.code == 2 {
            self.io_errors += 1;
        }
        self.events.push(e);
    }

    fn fail(
        &self,
        scenario: &Scenario,
        step: u64,
        invariant: &'static str,
        detail: String,
    ) -> Outcome {
        let tail_from = self.events.len().saturating_sub(TRACE_TAIL);
        Outcome::Fail(Box::new(FailureReport {
            scenario: *scenario,
            step,
            invariant,
            detail,
            trace_tail: self.events[tail_from..].to_vec(),
        }))
    }

    /// Checks I1 (probe), I2, I3, I4, I5 after one step. `Ok(())` means
    /// all held.
    // The Err arm carries the full Outcome so the caller can return it
    // verbatim; it is terminal (one per run), so its size doesn't matter.
    #[allow(clippy::result_large_err)]
    fn check_invariants(&mut self, scenario: &Scenario, step: u64) -> Result<(), Outcome> {
        // I4 first: the ring reconciles exactly while the tuner has it
        // drained (the probe below emits fresh records, which the *next*
        // step's drain will pick up).
        let emitted = self.sim.trace_emitted();
        let consumed = self.consumed_total.get();
        let dropped = self.tuner.records_dropped();
        if emitted != consumed + dropped {
            return Err(self.fail(
                scenario,
                step,
                "I4.ring-reconciles",
                format!("emitted={emitted} != consumed={consumed} + dropped={dropped}"),
            ));
        }
        // I1: a rotating probe key read back through the full stack must
        // agree with the reference model (errored probes are inconclusive —
        // the device refused, nothing was *wrong*).
        let probe = (step.wrapping_mul(7919) ^ scenario.seed) % self.key_space;
        if let Ok(found) = self.db.get(&mut self.sim, probe) {
            let expected = self.reference.contains(&probe);
            if found != expected {
                return Err(self.fail(
                    scenario,
                    step,
                    "I1.lsm-vs-reference",
                    format!("probe key {probe}: store says {found}, reference says {expected}"),
                ));
            }
        }
        // I2: cache accounting under squeezes and failed writebacks.
        let (len, dirty, cap) = (
            self.sim.cache_len(),
            self.sim.cache_dirty(),
            self.sim.cache_capacity(),
        );
        if len > cap || dirty > len {
            return Err(self.fail(
                scenario,
                step,
                "I2.cache-accounting",
                format!("cache len={len} dirty={dirty} capacity={cap}"),
            ));
        }
        // I3: the actuated readahead is always one the policy can produce.
        let ra = self.tuner.current_ra_kb();
        if ra != INITIAL_RA_KB && !POLICY_RA_KB.contains(&ra) {
            return Err(self.fail(
                scenario,
                step,
                "I3.ra-clamped",
                format!("tuner holds {ra} KiB, policy allows {POLICY_RA_KB:?} or {INITIAL_RA_KB}"),
            ));
        }
        // I5: the clock never runs backwards (even when an op fails, the
        // time its attempt consumed must stand).
        let now = self.sim.now_ns();
        if now < self.prev_clock {
            return Err(self.fail(
                scenario,
                step,
                "I5.clock-monotone",
                format!("clock went from {} to {now}", self.prev_clock),
            ));
        }
        self.prev_clock = now;
        Ok(())
    }
}

fn run_inner(scenario: &Scenario) -> Outcome {
    let p = scenario.params();
    let mut sim = Sim::new(SimConfig {
        device: p.device,
        cache_pages: p.cache_pages,
        default_ra_kb: INITIAL_RA_KB,
        ..SimConfig::default()
    });
    let registry = Registry::new();
    sim.attach_telemetry(&registry);
    let (producer, mut consumer) = RingBuffer::with_capacity(p.ring_capacity).split();
    sim.attach_trace(producer);
    consumer.attach_telemetry(&registry, "kml_collect.ring");
    let consumed_total = registry.counter("kml_collect.ring.consumed_total");

    // Fault-free fill: even keys present, odd keys absent.
    let mut db = Db::create(
        &mut sim,
        DbConfig {
            memtable_keys: p.memtable_keys,
            l0_compaction_trigger: p.l0_trigger,
            ..DbConfig::default()
        },
    );
    let fill: Vec<u64> = (0..p.key_space).step_by(2).collect();
    let reference: BTreeSet<u64> = fill.iter().copied().collect();
    db.bulk_load(&mut sim, fill).expect("fault-free fill");
    sim.drop_caches().expect("fault-free drop_caches");
    let aux_pages = 1 << 16;
    let aux = sim.create_file(aux_pages);

    // Continual scenarios use their own (longer) window so each window
    // averages the whole op mix — the drift detector then sees the
    // workload pivot as a step, not per-window mix noise.
    let window_ns = if scenario.continual {
        scenario.continual_params().window_ns
    } else {
        p.window_ns
    };
    let tuner = KmlTuner::new(
        harness_model(),
        RaPolicy::new(POLICY_RA_KB.to_vec()),
        consumer,
        window_ns,
        INITIAL_RA_KB,
    );

    // Everything after this line runs under fire.
    sim.set_fault_plan(Some(FaultPlan::new(p.faults)));
    if scenario.lsm_bug {
        db.set_dst_bug_lose_failed_flush(true);
    }

    let mut h = Harness {
        prev_clock: sim.now_ns(),
        sim,
        db,
        reference,
        tuner,
        consumed_total,
        aux,
        aux_pages,
        key_space: p.key_space,
        events: Vec::with_capacity(scenario.ops as usize + 1),
        trace_hash: 0xCBF2_9CE4_8422_2325, // FNV-1a offset basis
        io_errors: 0,
        seq_cursor: 0,
    };
    // The scripted-lifecycle and continual paths both own the tuner's
    // install surface, so a continual scenario runs without the script
    // (its controller drives the same `LifecycleController` machinery).
    let mut lifecycle = if scenario.lifecycle && !scenario.continual {
        match LifecycleScript::new(
            scenario,
            &mut h.tuner,
            ArtifactKind::Readahead,
            POLICY_RA_KB.len(),
        ) {
            Ok(script) => Some(script),
            Err(e) => {
                return h.fail(
                    scenario,
                    0,
                    "I13.artifact-atomic",
                    format!("the initial artifact install failed: {e:?}"),
                )
            }
        }
    } else {
        None
    };
    let mut continual = if scenario.continual {
        match ContinualScript::new(scenario, &mut h.tuner) {
            Ok(script) => Some(script),
            Err(e) => {
                return h.fail(
                    scenario,
                    0,
                    "I13.artifact-atomic",
                    format!("the initial continual artifact failed: {e}"),
                )
            }
        }
    } else {
        None
    };
    let mut ops = SeedStream::new(scenario.seed, 0x0B5);

    for step in 0..scenario.ops {
        let roll = ops.range(0, 100);
        // The continual workload shift: past the seed-derived pivot the
        // mix collapses onto the sequential scan (plus the untouched
        // maintenance tail), and the scan moves to the far half of the
        // aux file — the windowed offset distribution steps cleanly.
        let shifted = matches!(&continual,
            Some(ct) if ct.shift_enabled && step >= ct.shift_step);
        let roll = if shifted && !(85..97).contains(&roll) {
            70
        } else {
            roll
        };
        let key = ops.range(0, h.key_space);
        let (op, code) = match roll {
            0..=29 => {
                // Put: accepted ⇒ the reference learns it, rejected ⇒ it
                // must be as if it never happened.
                match h.db.put(&mut h.sim, key) {
                    Ok(()) => {
                        h.reference.insert(key);
                        (0, 1)
                    }
                    Err(_) => (0, 2),
                }
            }
            30..=54 => match h.db.get(&mut h.sim, key) {
                Ok(found) => {
                    let expected = h.reference.contains(&key);
                    if found != expected {
                        h.record(step, 1, key, u8::from(found));
                        return h.fail(
                            scenario,
                            step,
                            "I1.lsm-vs-reference",
                            format!("get({key}) = {found}, reference says {expected}"),
                        );
                    }
                    (1, u8::from(found))
                }
                Err(_) => (1, 2),
            },
            55..=62 => {
                let limit = 1 + (ops.range(0, 32) as usize);
                match h.db.scan(&mut h.sim, key, limit) {
                    Ok(visited) => {
                        let expected = h.reference.range(key..).take(limit).count();
                        if visited != expected {
                            h.record(step, 2, key, 0);
                            return h.fail(
                                scenario,
                                step,
                                "I1.lsm-vs-reference",
                                format!(
                                    "scan({key}, {limit}) visited {visited}, reference has {expected}"
                                ),
                            );
                        }
                        (2, 0)
                    }
                    Err(_) => (2, 2),
                }
            }
            63..=67 => {
                let limit = 1 + (ops.range(0, 32) as usize);
                match h.db.scan_reverse(&mut h.sim, key, limit) {
                    Ok(visited) => {
                        let expected = h.reference.range(..=key).rev().take(limit).count();
                        if visited != expected {
                            h.record(step, 3, key, 0);
                            return h.fail(
                                scenario,
                                step,
                                "I1.lsm-vs-reference",
                                format!(
                                    "scan_reverse({key}, {limit}) visited {visited}, reference has {expected}"
                                ),
                            );
                        }
                        (3, 0)
                    }
                    Err(_) => (3, 2),
                }
            }
            68..=77 => {
                let n = 4 + ops.range(0, 4);
                let page = h.seq_cursor;
                h.seq_cursor = (h.seq_cursor + n) % (h.aux_pages - 8);
                // Draw order and cursor arithmetic are untouched by the
                // shift — only where the scan actually lands moves.
                let page = if shifted {
                    h.aux_pages / 2 + page % (h.aux_pages / 2 - 8)
                } else {
                    page
                };
                match h.sim.read(h.aux, page, n) {
                    Ok(_) => (4, 0),
                    Err(_) => (4, 2),
                }
            }
            78..=83 => {
                let page = ops.range(0, h.aux_pages - 4);
                match h.sim.read(h.aux, page, 1 + ops.range(0, 3)) {
                    Ok(_) => (5, 0),
                    Err(_) => (5, 2),
                }
            }
            84..=87 => match h.db.flush(&mut h.sim) {
                Ok(()) => (6, 0),
                Err(_) => (6, 2),
            },
            88..=90 => match h.db.compact(&mut h.sim) {
                Ok(()) => (7, 0),
                Err(_) => (7, 2),
            },
            91..=92 => match h.sim.sync() {
                Ok(()) => (8, 0),
                Err(_) => (8, 2),
            },
            93..=94 => match h.sim.drop_caches() {
                Ok(()) => (9, 0),
                Err(_) => (9, 2),
            },
            95..=96 => {
                let advice = match ops.range(0, 3) {
                    0 => Advice::Sequential,
                    1 => Advice::Random,
                    _ => Advice::Normal,
                };
                match h.sim.fadvise(h.aux, advice) {
                    Ok(_) => (10, 0),
                    Err(_) => (10, 2),
                }
            }
            _ => {
                let page = ops.range(0, h.aux_pages);
                match h.sim.mmap_read(h.aux, page) {
                    Ok(_) => (11, 0),
                    Err(_) => (11, 2),
                }
            }
        };
        h.record(step, op, key, code);

        // The closed loop's per-op hook: drain tracepoints, maybe retune.
        // Continual scenarios drive the window explicitly — lifecycle
        // observation first, then the (possibly just-promoted) model's
        // decision, so every post-promotion decision carries the new
        // generation.
        if let Some(ct) = continual.as_mut() {
            if let Some(features) = h.tuner.poll_window(&mut h.sim) {
                let label = KmlTuner::heuristic_class(&features);
                let phi = ct.window_phi(&features);
                // Warmup windows still feed the un-cumulation totals and
                // still get a decision below — the controller just does
                // not observe them, so cache-warmup transients can't
                // contaminate the drift reference.
                let observed = if ct.warmup_left > 0 {
                    ct.warmup_left -= 1;
                    None
                } else {
                    match ct
                        .controller
                        .observe_window(&mut h.tuner, &phi, label, 1000.0)
                    {
                        Ok(out) => Some(out),
                        Err(e) => {
                            return h.fail(
                                scenario,
                                step,
                                "I13.artifact-atomic",
                                format!("continual window failed: {e}"),
                            )
                        }
                    }
                };
                if let Some(out) = &observed {
                    // I14: a retrain can only ever ride a drift trigger.
                    if out.retrained && !out.drifted {
                        return h.fail(
                            scenario,
                            step,
                            "I14.retrain-only-on-drift",
                            "a retrain ran on a drift-free window".to_string(),
                        );
                    }
                    if out.drifted {
                        h.record(step, OP_CT_DRIFT, ct.controller.windows(), 0);
                    }
                    if out.retrained {
                        h.record(step, OP_CT_RETRAIN, ct.controller.retrains(), 0);
                    }
                    match out.lifecycle {
                        Some(LifecycleEvent::Promoted { to, .. }) => {
                            ct.installed_gens.push(to);
                            h.record(step, OP_LC_PROMOTE, to, 0);
                        }
                        Some(LifecycleEvent::RolledBack { to, .. }) => {
                            ct.installed_gens.push(to);
                            h.record(step, OP_LC_ROLLBACK, to, 0);
                        }
                        None => {}
                    }
                }
                let class = match h.tuner.predict_active(&phi) {
                    Ok(class) => class,
                    Err(e) => {
                        return h.fail(
                            scenario,
                            step,
                            "I5.no-panic",
                            format!("continual predict failed: {e:?}"),
                        )
                    }
                };
                h.tuner.apply_class(&mut h.sim, class);
                // I16: reservoir accounting — one unique offer per window
                // means the fill level is a pure function of the window
                // count and the capacity.
                let (len, windows) = (ct.controller.reservoir_len(), ct.controller.windows());
                if len as u64 != windows.min(ct.capacity as u64) {
                    return h.fail(
                        scenario,
                        step,
                        "I16.reservoir-deterministic",
                        format!(
                            "reservoir holds {len} samples after {windows} windows (capacity {})",
                            ct.capacity
                        ),
                    );
                }
            }
            // I15: the loop never serves a generation that was not
            // installed (a staged candidate has none), and the tuner and
            // controller always agree on the active one.
            if h.tuner.model_generation() != ct.controller.generation() {
                return h.fail(
                    scenario,
                    step,
                    "I15.candidate-never-actuates",
                    format!(
                        "loop serves generation {} but the controller holds {}",
                        h.tuner.model_generation(),
                        ct.controller.generation()
                    ),
                );
            }
            let decisions = h.tuner.decisions();
            for d in &decisions[ct.decision_cursor..] {
                if !ct.installed_gens.contains(&d.generation) {
                    return h.fail(
                        scenario,
                        step,
                        "I15.candidate-never-actuates",
                        format!(
                            "a decision is tagged with never-installed generation {}",
                            d.generation
                        ),
                    );
                }
            }
            ct.decision_cursor = decisions.len();
        } else if let Err(e) = h.tuner.on_op(&mut h.sim) {
            return h.fail(
                scenario,
                step,
                "I5.no-panic",
                format!("tuner failed: {e:?}"),
            );
        }
        if let Err(outcome) = h.check_invariants(scenario, step) {
            return outcome;
        }
        if let Some(script) = lifecycle.as_mut() {
            let knob_before = h.tuner.current_ra_kb();
            let events = match script.on_step(&mut h.tuner, step) {
                Ok(events) => events,
                Err((invariant, detail)) => return h.fail(scenario, step, invariant, detail),
            };
            let staged_now = events.iter().any(|(op, _, _)| *op == OP_LC_STAGE);
            for (op, key, code) in events {
                h.record(step, op, key, code);
            }
            if staged_now && h.tuner.current_ra_kb() != knob_before {
                return h.fail(
                    scenario,
                    step,
                    "I12.shadow-never-actuates",
                    format!(
                        "staging a shadow moved readahead {knob_before} -> {} KiB",
                        h.tuner.current_ra_kb()
                    ),
                );
            }
            let decisions = h.tuner.decisions();
            let fresh = decisions[script.decision_cursor..]
                .iter()
                .map(|d| d.generation);
            if let Err(detail) = script.check_decisions(fresh) {
                return h.fail(scenario, step, "I12.shadow-never-actuates", detail);
            }
            script.decision_cursor = decisions.len();
        }
    }

    // Lift the faults and sweep: every key the reference holds must be
    // readable, every key it lacks must stay absent (this is what catches
    // loss that probes happened to miss). Stats go with the plan, so read
    // them first.
    let injected = h.sim.fault_stats();
    h.sim.set_fault_plan(None);
    if h.db.flush(&mut h.sim).is_err() || h.db.compact(&mut h.sim).is_err() {
        return h.fail(
            scenario,
            scenario.ops,
            "I5.no-panic",
            "flush/compact failed after faults were lifted".to_string(),
        );
    }
    for key in 0..h.key_space {
        let found =
            h.db.get(&mut h.sim, key)
                .expect("fault-free get after plan removal");
        let expected = h.reference.contains(&key);
        if found != expected {
            return h.fail(
                scenario,
                scenario.ops,
                "I1.lsm-vs-reference",
                format!("final sweep: get({key}) = {found}, reference says {expected}"),
            );
        }
    }

    let (mut promotions, mut rollbacks) = lifecycle
        .as_ref()
        .map_or((0, 0), |s| (s.promotions, s.rollbacks));
    let (drift_events, retrains) = continual.as_ref().map_or((0, 0), |ct| {
        (ct.controller.drift_events(), ct.controller.retrains())
    });
    if let Some(ct) = &continual {
        promotions += ct.controller.promotions();
        rollbacks += ct.controller.rollbacks();
        // The reservoir contents are part of the determinism contract:
        // fold their hash into the trace so a replay that samples even
        // one different training row changes the fingerprint.
        fnv1a(&mut h.trace_hash, ct.controller.reservoir_hash());
    }
    Outcome::Pass(RunSummary {
        trace_hash: h.trace_hash,
        steps: scenario.ops,
        io_errors: h.io_errors,
        injected,
        decisions: h.tuner.decisions().len() as u64,
        ring_dropped: h.tuner.records_dropped(),
        promotions,
        rollbacks,
        drift_events,
        retrains,
    })
}

/// The netfs analogue of [`harness_model`]: a stub tree thresholding the
/// retransmit fraction (feature 2). Low fraction → calm (class 0, large
/// rsize), high → congested (class 1, small rsize). The harness validates
/// the loop's plumbing and the RPC ledger, not classifier accuracy.
fn netfs_model() -> RsizeTunerModel {
    let dataset = Dataset::from_rows(
        &[
            vec![50.0, 1e7, 0.02, 1e6, 256.0],
            vec![50.0, 1e7, 0.01, 1e6, 256.0],
            vec![50.0, 4e7, 0.60, 1e6, 256.0],
            vec![50.0, 4e7, 0.80, 1e6, 256.0],
        ],
        &[0, 0, 1, 1],
    )
    .expect("four fixed rows always form a dataset");
    let tree = DecisionTree::fit(&dataset, DecisionTreeConfig::default())
        .expect("four-row dataset always fits");
    RsizeTunerModel::Tree(tree)
}

struct NetHarness {
    mount: NfsMount,
    tuner: RsizeTuner,
    file: FileId,
    file_pages: u64,
    events: Vec<Event>,
    trace_hash: u64,
    io_errors: u64,
    prev_clock: u64,
    prev_lost: u64,
    seq_cursor: u64,
}

impl NetHarness {
    fn record(&mut self, step: u64, op: u8, key: u64, code: u8) {
        let e = Event {
            step,
            op,
            key,
            clock_ns: self.mount.now_ns(),
            code,
        };
        fnv1a(&mut self.trace_hash, e.step);
        fnv1a(&mut self.trace_hash, u64::from(e.op));
        fnv1a(&mut self.trace_hash, e.key);
        fnv1a(&mut self.trace_hash, e.clock_ns);
        fnv1a(&mut self.trace_hash, u64::from(e.code));
        if e.code == 2 {
            self.io_errors += 1;
        }
        self.events.push(e);
    }

    fn fail(
        &self,
        scenario: &Scenario,
        step: u64,
        invariant: &'static str,
        detail: String,
    ) -> Outcome {
        let tail_from = self.events.len().saturating_sub(TRACE_TAIL);
        Outcome::Fail(Box::new(FailureReport {
            scenario: *scenario,
            step,
            invariant,
            detail,
            trace_tail: self.events[tail_from..].to_vec(),
        }))
    }

    /// Checks the RPC-layer invariants I6–I10 after one step.
    // See the readahead harness's check_invariants: the Err arm is
    // terminal, so its size doesn't matter.
    #[allow(clippy::result_large_err)]
    fn check_invariants(&mut self, scenario: &Scenario, step: u64) -> Result<(), Outcome> {
        let s = self.mount.stats();
        // I6: the client is synchronous, so between ops every issued RPC
        // must have returned to the caller exactly once — success, server
        // error, or give-up, but never zero times and never twice.
        if s.rpcs_completed != s.rpcs_issued {
            return Err(self.fail(
                scenario,
                step,
                "I6.rpc-exactly-once",
                format!(
                    "{} RPCs issued but {} completed at quiescence",
                    s.rpcs_issued, s.rpcs_completed
                ),
            ));
        }
        // I7: the double-entry packet ledger balances — every transmission
        // is accounted as lost, seen by the server, or duplicated, and
        // every server response as lost, completing, or dropped-duplicate.
        if let Err(detail) = s.reconcile() {
            return Err(self.fail(scenario, step, "I7.retransmit-reconciles", detail));
        }
        // I8: the actuated rsize stays inside the mount's clamp range and
        // is either the untouched default or a policy value.
        let rsize = self.mount.rsize_kb();
        if !(netfs::RSIZE_MIN_KB..=netfs::RSIZE_MAX_KB).contains(&rsize)
            || (rsize != netfs::DEFAULT_RSIZE_KB && !POLICY_RSIZE_KB.contains(&rsize))
        {
            return Err(self.fail(
                scenario,
                step,
                "I8.rsize-clamped",
                format!(
                    "mount holds {rsize} KiB, policy allows {POLICY_RSIZE_KB:?} or {}",
                    netfs::DEFAULT_RSIZE_KB
                ),
            ));
        }
        // I9: time is never free — the clock is monotone, and any step
        // that lost packets must have burned time on their timeouts.
        let now = self.mount.now_ns();
        let lost = s.packets_lost();
        if now < self.prev_clock {
            return Err(self.fail(
                scenario,
                step,
                "I9.loss-costs-time",
                format!("clock went from {} to {now}", self.prev_clock),
            ));
        }
        if lost > self.prev_lost && now == self.prev_clock {
            return Err(self.fail(
                scenario,
                step,
                "I9.loss-costs-time",
                format!(
                    "{} packets lost this step with no clock movement at {now}",
                    lost - self.prev_lost
                ),
            ));
        }
        self.prev_clock = now;
        self.prev_lost = lost;
        // I10: the RPC tracepoint ring reconciles exactly while drained.
        let emitted = self.mount.rpc_events_emitted();
        let consumed = self.tuner.events_consumed();
        let dropped = self.tuner.events_dropped();
        if emitted != consumed + dropped {
            return Err(self.fail(
                scenario,
                step,
                "I10.rpc-ring-reconciles",
                format!("emitted={emitted} != consumed={consumed} + dropped={dropped}"),
            ));
        }
        Ok(())
    }
}

fn run_netfs_inner(scenario: &Scenario) -> Outcome {
    let np = scenario.net_params();
    let profile = NetProfile {
        name: "dst",
        rtt_ns: np.rtt_ns,
        ns_per_page: np.ns_per_page,
        per_rpc_ns: np.per_rpc_ns,
        base_rto_ns: np.base_rto_ns,
        frag_pages: 8,
        faults: np.faults,
        burst_period_ns: np.burst_period_ns,
        burst_frac: np.burst_frac,
    };
    let mut mount = NfsMount::new(
        profile,
        SimConfig {
            device: DeviceProfile::nvme(),
            cache_pages: np.cache_pages,
            ..SimConfig::default()
        },
    );
    let file_pages: u64 = 1 << 14;
    let file = mount.create_file(file_pages);
    let (producer, consumer) = RingBuffer::with_capacity(np.ring_capacity).split();
    mount.attach_rpc_trace(producer);
    let tuner = RsizeTuner::new(
        netfs_model(),
        RsizePolicy::new(POLICY_RSIZE_KB.to_vec()),
        consumer,
        np.window_ns,
    );

    let mut h = NetHarness {
        prev_clock: mount.now_ns(),
        mount,
        tuner,
        file,
        file_pages,
        events: Vec::with_capacity(scenario.ops as usize + 1),
        trace_hash: 0xCBF2_9CE4_8422_2325, // FNV-1a offset basis
        io_errors: 0,
        prev_lost: 0,
        seq_cursor: 0,
    };
    let mut lifecycle = if scenario.lifecycle {
        match LifecycleScript::new(
            scenario,
            &mut h.tuner,
            ArtifactKind::NetfsRsize,
            POLICY_RSIZE_KB.len(),
        ) {
            Ok(script) => Some(script),
            Err(e) => {
                return h.fail(
                    scenario,
                    0,
                    "I13.artifact-atomic",
                    format!("the initial artifact install failed: {e:?}"),
                )
            }
        }
    } else {
        None
    };
    let mut ops = SeedStream::new(scenario.seed, 0x0E7);

    for step in 0..scenario.ops {
        let roll = ops.range(0, 100);
        let npages = 1 + ops.range(0, 128);
        let span = h.file_pages - npages;
        let (op, page, code) = match roll {
            0..=54 => {
                // Sequential reads: the common streaming client.
                let page = h.seq_cursor.min(span);
                h.seq_cursor = (h.seq_cursor + npages) % span;
                match h.mount.read(h.file, page, npages) {
                    Ok(_) => (12, page, 0),
                    Err(_) => (12, page, 2),
                }
            }
            55..=79 => {
                let page = ops.range(0, span);
                match h.mount.read(h.file, page, npages) {
                    Ok(_) => (12, page, 0),
                    Err(_) => (12, page, 2),
                }
            }
            _ => {
                let page = ops.range(0, span);
                match h.mount.write(h.file, page, npages) {
                    Ok(_) => (13, page, 0),
                    Err(_) => (13, page, 2),
                }
            }
        };
        h.record(step, op, page, code);

        // The closed loop's per-op hook: drain RPC events, maybe retune.
        if let Err(e) = h.tuner.on_op(&mut h.mount) {
            return h.fail(
                scenario,
                step,
                "I5.no-panic",
                format!("rsize tuner failed: {e:?}"),
            );
        }
        if let Err(outcome) = h.check_invariants(scenario, step) {
            return outcome;
        }
        if let Some(script) = lifecycle.as_mut() {
            let knob_before = h.mount.rsize_kb();
            let events = match script.on_step(&mut h.tuner, step) {
                Ok(events) => events,
                Err((invariant, detail)) => return h.fail(scenario, step, invariant, detail),
            };
            let staged_now = events.iter().any(|(op, _, _)| *op == OP_LC_STAGE);
            for (op, key, code) in events {
                h.record(step, op, key, code);
            }
            if staged_now && h.mount.rsize_kb() != knob_before {
                return h.fail(
                    scenario,
                    step,
                    "I12.shadow-never-actuates",
                    format!(
                        "staging a shadow moved rsize {knob_before} -> {} KiB",
                        h.mount.rsize_kb()
                    ),
                );
            }
            let decisions = h.tuner.decisions();
            let fresh = decisions[script.decision_cursor..]
                .iter()
                .map(|d| d.generation);
            if let Err(detail) = script.check_decisions(fresh) {
                return h.fail(scenario, step, "I12.shadow-never-actuates", detail);
            }
            script.decision_cursor = decisions.len();
        }
    }

    let (promotions, rollbacks) = lifecycle
        .as_ref()
        .map_or((0, 0), |s| (s.promotions, s.rollbacks));
    Outcome::Pass(RunSummary {
        trace_hash: h.trace_hash,
        steps: scenario.ops,
        io_errors: h.io_errors,
        injected: h.mount.transport_fault_stats(),
        decisions: h.tuner.decisions().len() as u64,
        ring_dropped: h.tuner.events_dropped(),
        promotions,
        rollbacks,
        drift_events: 0,
        retrains: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quiet_scenario_passes_and_reports_zero_injections() {
        // Disable every fault kind: the run must pass and inject nothing.
        let mut scenario = Scenario::from_seed(11, 120);
        scenario.disabled = crate::FaultMask(0x3F);
        match run(&scenario) {
            Outcome::Pass(s) => {
                assert_eq!(s.steps, 120);
                assert_eq!(s.injected.total(), 0);
                assert_eq!(s.io_errors, 0);
            }
            Outcome::Fail(r) => panic!("quiet scenario failed:\n{r}"),
        }
    }

    #[test]
    fn reproducer_line_carries_the_whole_scenario() {
        let report = FailureReport {
            scenario: Scenario {
                seed: 0xBEEF,
                ops: 37,
                disabled: crate::FaultMask::STALL,
                lsm_bug: true,
                netfs: false,
                lifecycle: false,
                continual: false,
            },
            step: 12,
            invariant: "I1.lsm-vs-reference",
            detail: "test".to_string(),
            trace_tail: Vec::new(),
        };
        let line = report.reproducer();
        assert!(line.contains("KML_DST_SEED=0x000000000000beef"), "{line}");
        assert!(line.contains("KML_DST_OPS=37"), "{line}");
        assert!(line.contains("KML_DST_DISABLE=stall"), "{line}");
        assert!(line.contains("KML_DST_LSM_BUG=1"), "{line}");
        assert!(line.contains("cargo test -p kml-dst"), "{line}");
    }

    #[test]
    fn a_quiet_netfs_scenario_passes_and_injects_nothing() {
        let mut scenario = Scenario::netfs_from_seed(5, 80);
        scenario.disabled = crate::FaultMask(0x3FF);
        match run(&scenario) {
            Outcome::Pass(s) => {
                assert_eq!(s.steps, 80);
                assert_eq!(s.injected.total(), 0);
                assert_eq!(s.io_errors, 0);
            }
            Outcome::Fail(r) => panic!("quiet netfs scenario failed:\n{r}"),
        }
    }

    #[test]
    fn lifecycle_reproducer_line_carries_the_lifecycle_flag() {
        let report = FailureReport {
            scenario: Scenario::lifecycle_from_seed(0xCAFE, 60),
            step: 9,
            invariant: "I11.swap-atomic",
            detail: "test".to_string(),
            trace_tail: Vec::new(),
        };
        assert!(report.reproducer().contains("KML_DST_LIFECYCLE=1"));
    }

    #[test]
    fn a_quiet_lifecycle_scenario_passes_and_swaps_models() {
        // Device faults off, lifecycle events on: the scripted arc must
        // run its swaps without tripping any invariant.
        let mut scenario = Scenario::lifecycle_from_seed(3, 400);
        scenario.disabled = crate::FaultMask(0x3F);
        match run(&scenario) {
            Outcome::Pass(s) => {
                assert_eq!(s.steps, 400);
                assert_eq!(s.injected.total(), 0);
            }
            Outcome::Fail(r) => panic!("quiet lifecycle scenario failed:\n{r}"),
        }
    }

    #[test]
    fn disabling_every_lifecycle_event_still_passes() {
        let mut scenario = Scenario::lifecycle_from_seed(3, 200);
        scenario.disabled = crate::FaultMask(0x3F)
            .with(crate::FaultMask::LC_SHADOW)
            .with(crate::FaultMask::LC_REGRESS)
            .with(crate::FaultMask::LC_CORRUPT);
        match run(&scenario) {
            Outcome::Pass(s) => {
                assert_eq!(s.promotions, 0, "no shadow staged, nothing to promote");
                assert_eq!(s.rollbacks, 0, "no regressed install, nothing to roll back");
            }
            Outcome::Fail(r) => panic!("event-free lifecycle scenario failed:\n{r}"),
        }
    }

    #[test]
    fn netfs_reproducer_line_carries_the_netfs_flag() {
        let report = FailureReport {
            scenario: Scenario::netfs_from_seed(0xF00D, 50),
            step: 3,
            invariant: "I7.retransmit-reconciles",
            detail: "test".to_string(),
            trace_tail: Vec::new(),
        };
        assert!(report.reproducer().contains("KML_DST_NETFS=1"));
    }

    #[test]
    fn event_trace_hash_distinguishes_different_seeds() {
        let a = match run(&Scenario::from_seed(21, 60)) {
            Outcome::Pass(s) => s.trace_hash,
            Outcome::Fail(r) => panic!("{r}"),
        };
        let b = match run(&Scenario::from_seed(22, 60)) {
            Outcome::Pass(s) => s.trace_hash,
            Outcome::Fail(r) => panic!("{r}"),
        };
        assert_ne!(a, b, "different seeds produced identical traces");
    }
}
