//! # kml-dst — deterministic simulation testing for the KML closed loop
//!
//! The simulated stack is already deterministic: one thread, one virtual
//! clock, no host I/O. This crate turns that into a FoundationDB-style
//! test harness: a single 64-bit seed derives an entire *scenario* —
//! device profile, LSM geometry, op mix, and a device-level fault
//! schedule (I/O errors, torn writes, latency spikes, stalls, cache
//! squeezes) — and the harness runs the full closed loop (kvstore →
//! page cache → tracepoint ring → KML tuner → readahead actuation)
//! under it, checking cross-layer invariants after every step:
//!
//! - **I1 lsm-vs-reference** — the store never silently diverges from a
//!   `BTreeSet` model: rejected puts stay absent, accepted puts survive
//!   failed flushes and compactions, scans visit exactly the model's
//!   range.
//! - **I2 cache-accounting** — page-cache occupancy never exceeds its
//!   (possibly squeezed) capacity and dirty pages never exceed
//!   occupancy.
//! - **I3 ra-clamped** — the readahead the tuner holds is always one the
//!   policy can produce (or the untouched default).
//! - **I4 ring-reconciles** — tracepoints emitted = consumed + dropped,
//!   exactly, every time the tuner drains the ring.
//! - **I5 clock-monotone / no-panic** — simulated time never runs
//!   backwards, and no injected fault escapes as a panic.
//!
//! Netfs scenarios ([`Scenario::netfs_from_seed`]) run the network
//! stack instead — an NFS-like mount with its rsize tuner, under a
//! seeded packet-fault schedule (loss, duplication, reordering, jitter,
//! optionally phased into bursts) — and check the RPC-layer invariants:
//!
//! - **I6 rpc-exactly-once** — between ops, every issued RPC has
//!   returned to the caller exactly once (success, error, or give-up).
//! - **I7 retransmit-reconciles** — the double-entry packet ledger
//!   balances ([`netfs::NetStats::reconcile`]) after every step.
//! - **I8 rsize-clamped** — the actuated transfer size is always inside
//!   the mount's clamp range and one the policy can produce.
//! - **I9 loss-costs-time** — the clock is monotone and a step that
//!   lost packets always burned virtual time on their timeouts.
//! - **I10 rpc-ring-reconciles** — RPC tracepoints emitted = consumed +
//!   dropped, exactly, every drain.
//!
//! Lifecycle scenarios ([`Scenario::lifecycle_from_seed`] and
//! [`Scenario::netfs_lifecycle_from_seed`]) additionally weave scripted
//! model-lifecycle events — shadow staging, an operator install of a
//! deliberately regressed generation, a corrupted-artifact load — into
//! the run at seed-derived steps, drive a `kml-lifecycle` watchdog at a
//! seed-derived cadence, and check the lifecycle invariants:
//!
//! - **I11 swap-atomic** — the loop is never caught actuating a
//!   generation the lifecycle controller does not consider active; after
//!   a rollback the very next check sees the previous generation's
//!   original tag.
//! - **I12 shadow-never-actuates** — staging a candidate changes neither
//!   the active generation nor the actuated knob, and every decision is
//!   tagged with a generation that was actually installed.
//! - **I13 artifact-atomic** — a corrupted artifact load fails with a
//!   typed error and changes nothing; valid installs never half-apply.
//!
//! The three event kinds are first-class [`FaultMask`] members
//! (`lc_shadow`, `lc_regress`, `lc_corrupt`), so the shrinker minimises
//! lifecycle failures the same way it minimises fault kinds.
//!
//! Continual scenarios ([`Scenario::continual_from_seed`]) run the
//! closed continual-learning loop on the LSM/readahead stack: a
//! `kml-continual` controller watches every tuner window, and a genuine
//! mid-run workload shift — the op mix pivots onto the sequential scan
//! at a seed-derived step — drives the full drift → reservoir retrain →
//! shadow → earned-promotion arc under the seeded device faults. The
//! shift itself is a [`FaultMask`] member (`ct_shift`); disabling it
//! turns any continual seed into its own no-drift control, where the
//! detector must stay silent and nothing may retrain or promote. The
//! continual invariants:
//!
//! - **I14 retrain-only-on-drift** — a candidate is only ever trained on
//!   a window whose drift detector actually triggered.
//! - **I15 candidate-never-actuates** — the loop never serves a
//!   generation that was not installed: every decision is tagged with an
//!   installed generation, and the tuner and controller always agree on
//!   the active one (a staged candidate has no generation until the
//!   watchdog promotes it).
//! - **I16 reservoir-deterministic** — the training reservoir's fill
//!   level is a pure function of the window count and capacity, and its
//!   contents hash is folded into the trace hash, so a replay that
//!   samples even one different training row changes the fingerprint.
//!
//! A violation is reported as a [`FailureReport`] carrying the trace
//! tail and a shell-ready reproducer; [`shrink`] then searches for the
//! smallest op count and fewest fault kinds that still fail and prints
//! a minimal `KML_DST_SEED=… KML_DST_OPS=… cargo test -p kml-dst`
//! line. Replays are byte-identical at any test-thread count because a
//! scenario shares nothing: each run builds its own sim, ring, tuner,
//! and store from the seed alone.

pub mod harness;
pub mod scenario;
pub mod shrink;

pub use harness::{run, Event, FailureReport, Outcome, RunSummary};
pub use scenario::{FaultMask, Scenario};
pub use shrink::{shrink, Shrunk};
