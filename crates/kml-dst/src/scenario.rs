//! Seed-derived scenarios.
//!
//! Every parameter of a DST run — device profile, store geometry, ring
//! capacity, tuner cadence, op mix, and the fault schedule — is a pure
//! function of one 64-bit seed, so a failing run is *a number*, not a
//! state dump. The scenario draws from its own splitmix64 stream
//! (domain-separated from the fault layer's schedule stream) in a fixed
//! order; adding parameters must only ever append draws, or old seeds
//! stop reproducing.

use kernel_sim::{DeviceProfile, FaultConfig};

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic draw stream: `n`-th value depends only on (seed,
/// domain, n).
pub(crate) struct SeedStream {
    state: u64,
    draws: u64,
}

impl SeedStream {
    pub(crate) fn new(seed: u64, domain: u64) -> Self {
        SeedStream {
            state: splitmix(seed ^ domain.wrapping_mul(GOLDEN)),
            draws: 0,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.state = splitmix(self.state.wrapping_add(self.draws.wrapping_mul(GOLDEN)));
        self.state
    }

    /// Uniform in `[0, 1)` (53 high bits, like the fault layer).
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub(crate) fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }
}

/// Bitmask of fault kinds the shrinker has switched off. A disabled kind
/// has its rate zeroed in [`Scenario::fault_config`] (or the network
/// equivalent in [`Scenario::net_params`]); everything else in the
/// scenario (op mix, geometry, surviving fault draws) is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultMask(pub u16);

impl FaultMask {
    /// Device read errors.
    pub const READ_ERROR: FaultMask = FaultMask(1 << 0);
    /// Device write errors.
    pub const WRITE_ERROR: FaultMask = FaultMask(1 << 1);
    /// Torn multi-page writes.
    pub const TORN_WRITE: FaultMask = FaultMask(1 << 2);
    /// Service-time multipliers.
    pub const LATENCY_SPIKE: FaultMask = FaultMask(1 << 3);
    /// Fixed-length device stalls.
    pub const STALL: FaultMask = FaultMask(1 << 4);
    /// Page-cache capacity squeezes.
    pub const CACHE_SQUEEZE: FaultMask = FaultMask(1 << 5);
    /// Network packet loss (netfs scenarios).
    pub const NET_LOSS: FaultMask = FaultMask(1 << 6);
    /// Network packet duplication (netfs scenarios).
    pub const NET_DUP: FaultMask = FaultMask(1 << 7);
    /// Network packet reordering (netfs scenarios).
    pub const NET_REORDER: FaultMask = FaultMask(1 << 8);
    /// Network jitter (netfs scenarios).
    pub const NET_JITTER: FaultMask = FaultMask(1 << 9);
    /// Lifecycle: stage a shadow candidate (lifecycle scenarios).
    pub const LC_SHADOW: FaultMask = FaultMask(1 << 10);
    /// Lifecycle: operator-install a deliberately regressed generation
    /// (lifecycle scenarios; what the watchdog must roll back).
    pub const LC_REGRESS: FaultMask = FaultMask(1 << 11);
    /// Lifecycle: attempt to load a corrupted artifact (lifecycle
    /// scenarios; the load must fail atomically).
    pub const LC_CORRUPT: FaultMask = FaultMask(1 << 12);
    /// Continual: the mid-run workload shift (continual scenarios).
    /// Disabling it turns the scenario into its own no-drift control —
    /// the detector must then never fire and no retrain may happen.
    pub const CT_SHIFT: FaultMask = FaultMask(1 << 13);

    /// All fourteen kinds, in shrink order (device, then network, then
    /// lifecycle events, then the continual workload shift; the shrinker
    /// tries them in this order and keeps whatever still fails).
    pub const KINDS: [(FaultMask, &'static str); 14] = [
        (Self::READ_ERROR, "read_error"),
        (Self::WRITE_ERROR, "write_error"),
        (Self::TORN_WRITE, "torn_write"),
        (Self::LATENCY_SPIKE, "latency_spike"),
        (Self::STALL, "stall"),
        (Self::CACHE_SQUEEZE, "cache_squeeze"),
        (Self::NET_LOSS, "net_loss"),
        (Self::NET_DUP, "net_dup"),
        (Self::NET_REORDER, "net_reorder"),
        (Self::NET_JITTER, "net_jitter"),
        (Self::LC_SHADOW, "lc_shadow"),
        (Self::LC_REGRESS, "lc_regress"),
        (Self::LC_CORRUPT, "lc_corrupt"),
        (Self::CT_SHIFT, "ct_shift"),
    ];

    /// Whether `kind` is set in this mask.
    pub fn contains(self, kind: FaultMask) -> bool {
        self.0 & kind.0 != 0
    }

    /// This mask with `kind` added.
    pub fn with(self, kind: FaultMask) -> FaultMask {
        FaultMask(self.0 | kind.0)
    }

    /// Renders as the `KML_DST_DISABLE` comma list (empty for none).
    pub fn to_env(self) -> String {
        Self::KINDS
            .iter()
            .filter(|(k, _)| self.contains(*k))
            .map(|(_, name)| *name)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses the `KML_DST_DISABLE` comma list; unknown names are ignored
    /// (a reproducer from a newer build should not hard-fail an older one).
    pub fn from_env(s: &str) -> FaultMask {
        let mut mask = FaultMask::default();
        for part in s.split(',') {
            if let Some((k, _)) = Self::KINDS.iter().find(|(_, n)| *n == part.trim()) {
                mask = mask.with(*k);
            }
        }
        mask
    }
}

/// One fully-specified DST run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// The seed everything derives from.
    pub seed: u64,
    /// Steps of the main op loop (the shrinker minimises this).
    pub ops: u64,
    /// Fault kinds the shrinker switched off.
    pub disabled: FaultMask,
    /// Arms the deliberate lose-keys-on-failed-flush bug in the store —
    /// the harness's own end-to-end validation (it must catch this).
    pub lsm_bug: bool,
    /// Runs the netfs harness (RPC mount + rsize tuner under a seeded
    /// packet-fault schedule) instead of the LSM/readahead stack.
    pub netfs: bool,
    /// Weaves scripted model-lifecycle events (shadow staging, a
    /// regressed install the watchdog must roll back, a corrupted-artifact
    /// load) into the run and checks the lifecycle invariants I11–I13.
    pub lifecycle: bool,
    /// Runs the closed continual-learning loop on the LSM/readahead stack:
    /// a `kml-continual` controller watches every tuner window, a genuine
    /// mid-run workload shift (at a seed-derived step) drives drift →
    /// reservoir retrain → shadow staging → earned promotion, and the
    /// continual invariants I14–I16 are checked after every step.
    pub continual: bool,
}

/// Parameters derived from the seed (fixed draw order — append only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Params {
    pub device: DeviceProfile,
    pub key_space: u64,
    pub memtable_keys: usize,
    pub l0_trigger: usize,
    pub cache_pages: usize,
    pub ring_capacity: usize,
    pub window_ns: u64,
    pub faults: FaultConfig,
}

impl Scenario {
    /// A scenario with every fault kind live and no deliberate bug.
    pub fn from_seed(seed: u64, ops: u64) -> Scenario {
        Scenario {
            seed,
            ops,
            disabled: FaultMask::default(),
            lsm_bug: false,
            netfs: false,
            lifecycle: false,
            continual: false,
        }
    }

    /// A netfs scenario: the RPC mount + rsize-tuner stack under a seeded
    /// packet-fault schedule, with every network fault kind live.
    pub fn netfs_from_seed(seed: u64, ops: u64) -> Scenario {
        Scenario {
            netfs: true,
            ..Scenario::from_seed(seed, ops)
        }
    }

    /// A lifecycle scenario: the LSM/readahead stack with scripted
    /// swap/shadow/rollback events interleaved with the device faults.
    pub fn lifecycle_from_seed(seed: u64, ops: u64) -> Scenario {
        Scenario {
            lifecycle: true,
            ..Scenario::from_seed(seed, ops)
        }
    }

    /// The netfs analogue: lifecycle events on the rsize loop, under the
    /// seeded packet-fault schedule.
    pub fn netfs_lifecycle_from_seed(seed: u64, ops: u64) -> Scenario {
        Scenario {
            lifecycle: true,
            ..Scenario::netfs_from_seed(seed, ops)
        }
    }

    /// A continual scenario: the LSM/readahead stack with a live
    /// `kml-continual` controller and a seed-derived mid-run workload
    /// shift (the op mix pivots to a sequential scan), under the same
    /// seeded device-fault schedule.
    pub fn continual_from_seed(seed: u64, ops: u64) -> Scenario {
        Scenario {
            continual: true,
            ..Scenario::from_seed(seed, ops)
        }
    }

    /// Same scenario with the deliberate LSM bug armed.
    pub fn with_lsm_bug(mut self) -> Scenario {
        self.lsm_bug = true;
        self
    }

    pub(crate) fn params(&self) -> Params {
        let mut s = SeedStream::new(self.seed, 0xD57);
        let device = if s.next_u64() & 1 == 0 {
            DeviceProfile::nvme()
        } else {
            DeviceProfile::sata_ssd()
        };
        let key_space = s.range(256, 1024);
        let memtable_keys = s.range(16, 64) as usize;
        let l0_trigger = s.range(2, 5) as usize;
        let cache_pages = s.range(128, 1024) as usize;
        // Rings from 8 (overflow guaranteed) to 4096 (overflow rare).
        let ring_capacity = 1usize << s.range(3, 13);
        let window_ns = s.range(200_000, 2_000_000);
        let mut faults = FaultConfig {
            seed: splitmix(self.seed ^ 0xFA17),
            read_error: s.next_f64() * 0.08,
            write_error: s.next_f64() * 0.08,
            torn_write: s.next_f64() * 0.10,
            latency_spike: s.next_f64() * 0.10,
            stall: s.next_f64() * 0.02,
            cache_squeeze: s.next_f64() * 0.01,
            ..FaultConfig::off()
        };
        faults.spike_mult = s.range(10, 40);
        faults.stall_ns = s.range(1, 5) * 1_000_000;
        faults.squeeze_frac = 0.1 + s.next_f64() * 0.4;
        faults.squeeze_ops = s.range(16, 128);
        if self.disabled.contains(FaultMask::READ_ERROR) {
            faults.read_error = 0.0;
        }
        if self.disabled.contains(FaultMask::WRITE_ERROR) {
            faults.write_error = 0.0;
        }
        if self.disabled.contains(FaultMask::TORN_WRITE) {
            faults.torn_write = 0.0;
        }
        if self.disabled.contains(FaultMask::LATENCY_SPIKE) {
            faults.latency_spike = 0.0;
        }
        if self.disabled.contains(FaultMask::STALL) {
            faults.stall = 0.0;
        }
        if self.disabled.contains(FaultMask::CACHE_SQUEEZE) {
            faults.cache_squeeze = 0.0;
        }
        Params {
            device,
            key_space,
            memtable_keys,
            l0_trigger,
            cache_pages,
            ring_capacity,
            window_ns,
            faults,
        }
    }

    /// The fault schedule this scenario installs (disabled kinds zeroed).
    pub fn fault_config(&self) -> FaultConfig {
        self.params().faults
    }

    /// Network-path parameters for netfs scenarios. Drawn from their own
    /// domain (`0x7E7`) so the device-side [`Scenario::params`] draw order
    /// — and with it every pinned LSM-stack trace hash — is untouched.
    pub(crate) fn net_params(&self) -> NetParams {
        let mut s = SeedStream::new(self.seed, 0x7E7);
        let rtt_ns = s.range(500_000, 10_000_000);
        let ns_per_page = s.range(5_000, 80_000);
        let per_rpc_ns = s.range(10_000, 60_000);
        let base_rto_ns = rtt_ns * s.range(3, 6);
        let mut net_loss = s.next_f64() * 0.12;
        let mut net_dup = s.next_f64() * 0.04;
        let mut net_reorder = s.next_f64() * 0.04;
        let mut net_jitter = s.next_f64() * 0.30;
        let net_jitter_ns = s.range(100_000, 2_000_000);
        // Half the scenarios get a steady link, half a phased one.
        let burst_period_ns = if s.next_u64() & 1 == 0 {
            0
        } else {
            s.range(500_000_000, 4_000_000_000)
        };
        let burst_frac = 0.3 + s.next_f64() * 0.5;
        // Rings from 8 (overflow guaranteed) to 4096 (overflow rare) —
        // I10 must reconcile exactly in both regimes.
        let ring_capacity = 1usize << s.range(3, 13);
        let window_ns = s.range(20_000_000, 200_000_000);
        let cache_pages = s.range(1024, 8192) as usize;
        if self.disabled.contains(FaultMask::NET_LOSS) {
            net_loss = 0.0;
        }
        if self.disabled.contains(FaultMask::NET_DUP) {
            net_dup = 0.0;
        }
        if self.disabled.contains(FaultMask::NET_REORDER) {
            net_reorder = 0.0;
        }
        if self.disabled.contains(FaultMask::NET_JITTER) {
            net_jitter = 0.0;
        }
        NetParams {
            rtt_ns,
            ns_per_page,
            per_rpc_ns,
            base_rto_ns,
            faults: FaultConfig {
                seed: splitmix(self.seed ^ 0x7FA1),
                net_loss,
                net_dup,
                net_reorder,
                net_jitter,
                net_jitter_ns,
                ..FaultConfig::off()
            },
            burst_period_ns,
            burst_frac,
            ring_capacity,
            window_ns,
            cache_pages,
        }
    }

    /// The continual-loop schedule for continual scenarios. Drawn from its
    /// own domain (`0xC01F`) so none of the other parameter streams — and
    /// with them every pre-continual pinned trace hash — moves by a single
    /// draw. Fixed draw order, append only.
    pub(crate) fn continual_params(&self) -> ContinualParams {
        let mut s = SeedStream::new(self.seed, 0xC01F);
        let shift_pct = s.range(35, 60);
        let reservoir_capacity = (64usize) << s.range(0, 3);
        let initial_seed = s.next_u64();
        let retrain_seed = s.next_u64();
        // Continual scenarios use longer windows than the base stack so
        // each window averages over the whole op mix — per-window feature
        // noise shrinks and the workload shift stands clear of it.
        let window_ns = s.range(2_000_000, 8_000_000);
        ContinualParams {
            shift_pct,
            reservoir_capacity,
            initial_seed,
            retrain_seed,
            window_ns,
        }
    }

    /// The scripted lifecycle schedule for lifecycle scenarios. Drawn from
    /// its own domain (`0x11FC`) so neither [`Scenario::params`] nor
    /// [`Scenario::net_params`] — and with them every pre-lifecycle pinned
    /// trace hash — shifts by a single draw. Fixed draw order, append only.
    pub(crate) fn lifecycle_params(&self) -> LifecycleParams {
        let mut s = SeedStream::new(self.seed, 0x11FC);
        let observe_every = s.range(6, 25);
        let stage_step = s.range(12, 100);
        let regress_step = stage_step + s.range(60, 180);
        let corrupt_step = s.range(8, 360);
        LifecycleParams {
            observe_every,
            stage_step,
            regress_step,
            corrupt_step,
            initial_seed: s.next_u64(),
            shadow_seed: s.next_u64(),
            regress_seed: s.next_u64(),
        }
    }
}

/// Scripted lifecycle-event schedule derived from the seed (lifecycle
/// scenarios only; fixed draw order — append only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LifecycleParams {
    /// Steps between watchdog observation windows.
    pub observe_every: u64,
    /// Step at which the shadow candidate is staged.
    pub stage_step: u64,
    /// Step at which the regressed generation is operator-installed.
    pub regress_step: u64,
    /// Step at which the corrupted-artifact load is attempted.
    pub corrupt_step: u64,
    /// Model seed for the initial (generation 1) artifact.
    pub initial_seed: u64,
    /// Model seed for the shadow candidate artifact.
    pub shadow_seed: u64,
    /// Model seed for the deliberately regressed artifact.
    pub regress_seed: u64,
}

/// Continual-loop parameters derived from the seed (continual scenarios
/// only; fixed draw order — append only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ContinualParams {
    /// Percentage of the run after which the op mix pivots sequential.
    pub shift_pct: u64,
    /// Training-reservoir capacity (64, 128, or 256 samples).
    pub reservoir_capacity: usize,
    /// Model seed for the initial (generation 1) artifact.
    pub initial_seed: u64,
    /// Model seed for retrained candidates.
    pub retrain_seed: u64,
    /// Tuner window length (longer than the base stack's, so windows
    /// average over the op mix).
    pub window_ns: u64,
}

/// Network-path parameters derived from the seed (netfs scenarios only;
/// fixed draw order — append only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct NetParams {
    pub rtt_ns: u64,
    pub ns_per_page: u64,
    pub per_rpc_ns: u64,
    pub base_rto_ns: u64,
    pub faults: FaultConfig,
    pub burst_period_ns: u64,
    pub burst_frac: f64,
    pub ring_capacity: usize,
    pub window_ns: u64,
    pub cache_pages: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_are_a_pure_function_of_the_seed() {
        let a = Scenario::from_seed(0xABCD, 100).params();
        let b = Scenario::from_seed(0xABCD, 100).params();
        assert_eq!(a.key_space, b.key_space);
        assert_eq!(a.ring_capacity, b.ring_capacity);
        assert_eq!(a.faults.seed, b.faults.seed);
        assert_eq!(a.faults.read_error, b.faults.read_error);
        let c = Scenario::from_seed(0xABCE, 100).params();
        assert_ne!(
            (a.key_space, a.faults.seed),
            (c.key_space, c.faults.seed),
            "adjacent seeds must not collide"
        );
    }

    #[test]
    fn disabled_kinds_zero_only_their_rate() {
        let base = Scenario::from_seed(7, 100);
        let masked = Scenario {
            disabled: FaultMask::default().with(FaultMask::READ_ERROR),
            ..base
        };
        let (a, b) = (base.fault_config(), masked.fault_config());
        assert_eq!(b.read_error, 0.0);
        assert_eq!(a.write_error, b.write_error);
        assert_eq!(a.torn_write, b.torn_write);
        assert_eq!(a.seed, b.seed);
    }

    #[test]
    fn net_params_are_pure_and_disabled_kinds_zero_only_their_rate() {
        let base = Scenario::netfs_from_seed(0x515, 100);
        let (a, b) = (base.net_params(), base.net_params());
        assert_eq!(a.faults.seed, b.faults.seed);
        assert_eq!(a.rtt_ns, b.rtt_ns);
        assert_eq!(a.ring_capacity, b.ring_capacity);
        let masked = Scenario {
            disabled: FaultMask::default().with(FaultMask::NET_LOSS),
            ..base
        }
        .net_params();
        assert_eq!(masked.faults.net_loss, 0.0);
        assert_eq!(a.faults.net_dup, masked.faults.net_dup);
        assert_eq!(a.faults.net_jitter, masked.faults.net_jitter);
        assert_eq!(a.window_ns, masked.window_ns);
    }

    #[test]
    fn lifecycle_params_are_pure_and_leave_other_domains_untouched() {
        let s = Scenario::lifecycle_from_seed(0x11FC, 100);
        let (a, b) = (s.lifecycle_params(), s.lifecycle_params());
        assert_eq!(a.stage_step, b.stage_step);
        assert_eq!(a.observe_every, b.observe_every);
        assert_eq!(a.shadow_seed, b.shadow_seed);
        assert!(
            a.regress_step > a.stage_step,
            "the regressed install must come after the shadow is staged"
        );
        // The lifecycle stream is its own domain: turning lifecycle on
        // must not move a single device-side or network-side draw.
        let plain = Scenario::from_seed(0x11FC, 100);
        assert_eq!(plain.params().key_space, s.params().key_space);
        assert_eq!(plain.params().faults.seed, s.params().faults.seed);
        assert_eq!(plain.net_params().rtt_ns, s.net_params().rtt_ns);
    }

    #[test]
    fn continual_params_are_pure_and_leave_other_domains_untouched() {
        let s = Scenario::continual_from_seed(0xC0, 400);
        let (a, b) = (s.continual_params(), s.continual_params());
        assert_eq!(a.shift_pct, b.shift_pct);
        assert_eq!(a.reservoir_capacity, b.reservoir_capacity);
        assert_eq!(a.initial_seed, b.initial_seed);
        assert_eq!(a.retrain_seed, b.retrain_seed);
        assert!((35..60).contains(&a.shift_pct));
        assert!([64, 128, 256].contains(&a.reservoir_capacity));
        // The continual stream is its own domain: turning continual on
        // must not move a single draw anywhere else.
        let plain = Scenario::from_seed(0xC0, 400);
        assert_eq!(plain.params().key_space, s.params().key_space);
        assert_eq!(plain.params().faults.seed, s.params().faults.seed);
        assert_eq!(plain.net_params().rtt_ns, s.net_params().rtt_ns);
        assert_eq!(
            plain.lifecycle_params().stage_step,
            s.lifecycle_params().stage_step
        );
    }

    #[test]
    fn fault_mask_env_round_trips() {
        let mask = FaultMask::default()
            .with(FaultMask::TORN_WRITE)
            .with(FaultMask::STALL);
        assert_eq!(mask.to_env(), "torn_write,stall");
        assert_eq!(FaultMask::from_env(&mask.to_env()), mask);
        assert_eq!(FaultMask::from_env(""), FaultMask::default());
        assert_eq!(FaultMask::from_env("bogus,stall"), FaultMask::STALL);
    }
}
