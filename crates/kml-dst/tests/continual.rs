//! The continual-scenario entry points: the drift → retrain → shadow →
//! earned-promotion arc must complete under seeded device faults, the
//! no-drift control must never retrain or promote, and the whole sweep
//! must be byte-identical at any worker count.

use kml_dst::{run, FaultMask, Outcome, RunSummary, Scenario};
use kml_platform::threading::pool_map;

/// Ops per continual scenario: enough tuner windows on every seed-derived
/// geometry for the detector's reference phase, three sustained hot
/// blocks, and the watchdog's shadow windows after the mid-run pivot.
/// (Seeds whose drawn window length leaves too few windows simply never
/// trigger — the sweep asserts the arc on the population, the pinned
/// seeds assert it exactly.)
const CT_OPS: u64 = 2400;

const SWEEP_SEEDS: u64 = 12;

fn summary(scenario: &Scenario) -> RunSummary {
    match run(scenario) {
        Outcome::Pass(s) => s,
        Outcome::Fail(report) => panic!(
            "seed {:#x} violated {}: {}\nreproduce: {}",
            report.scenario.seed,
            report.invariant,
            report.detail,
            report.reproducer()
        ),
    }
}

fn control_of(scenario: &Scenario) -> Scenario {
    Scenario {
        disabled: scenario.disabled.with(FaultMask::CT_SHIFT),
        ..*scenario
    }
}

/// Every shifted run and its no-drift control upholds I1–I16, controls
/// never drift/retrain/promote, and the arc is *earned* across the
/// population: most window-rich seeds complete drift → retrain →
/// promotion, and none completes it without a drift trigger first.
#[test]
fn continual_sweep_upholds_invariants_and_controls_stay_silent() {
    let mut completed_arcs = 0u64;
    for i in 0..SWEEP_SEEDS {
        let scenario = Scenario::continual_from_seed(0x5EED_0010 + i, CT_OPS);
        let s = summary(&scenario);
        // The causal chain only ever flows drift → retrain → promotion.
        assert!(
            s.retrains <= s.drift_events,
            "seed {:#x}: {} retrains from {} drift triggers",
            scenario.seed,
            s.retrains,
            s.drift_events
        );
        assert!(
            s.promotions + s.rollbacks <= s.retrains,
            "seed {:#x}: {} promotions + {} rollbacks from {} retrains",
            scenario.seed,
            s.promotions,
            s.rollbacks,
            s.retrains
        );
        if s.promotions > 0 {
            completed_arcs += 1;
        }
        let c = summary(&control_of(&scenario));
        assert_eq!(
            (c.drift_events, c.retrains, c.promotions, c.rollbacks),
            (0, 0, 0, 0),
            "seed {:#x}: the no-drift control must stay silent",
            scenario.seed
        );
    }
    assert!(
        completed_arcs >= 6,
        "only {completed_arcs}/{SWEEP_SEEDS} shifted seeds earned a promotion"
    );
}

/// Three window-rich seeds pinned end to end: the shifted run completes
/// exactly one drift → retrain → promotion arc, its control completes
/// none, and every trace hash is stable down to the byte. A diff here
/// means replay broke — bisect it, don't repin it.
#[test]
fn continual_arc_trace_hashes_are_pinned() {
    // (seed, shifted hash, control hash)
    let pinned = [
        (
            0x5EED_0013u64,
            0xc6fb_acb6_832b_9620u64,
            0x6e77_142d_ed0b_ed56u64,
        ),
        (0x5EED_0016, 0xd90a_feb5_2d97_9109, 0x224b_7438_bce5_f8c5),
        (0x5EED_0019, 0x9c5f_880f_f38e_9948, 0x5aec_15f4_e57b_bfeb),
    ];
    for (seed, shifted_hash, control_hash) in pinned {
        let scenario = Scenario::continual_from_seed(seed, CT_OPS);
        let s = summary(&scenario);
        assert_eq!(
            (s.drift_events, s.retrains, s.promotions, s.rollbacks),
            (1, 1, 1, 0),
            "seed {seed:#x}: the shifted run must earn exactly one promotion"
        );
        assert_eq!(
            s.trace_hash, shifted_hash,
            "seed {seed:#x}: shifted trace hash moved"
        );
        let c = summary(&control_of(&scenario));
        assert_eq!(
            (c.drift_events, c.retrains, c.promotions),
            (0, 0, 0),
            "seed {seed:#x}: control must stay silent"
        );
        assert_eq!(
            c.trace_hash, control_hash,
            "seed {seed:#x}: control trace hash moved"
        );
    }
}

/// The sweep — shifted runs and controls interleaved — produces the same
/// summaries at 1, 3, and 8 workers: reservoir sampling, retraining, and
/// promotion decisions owe nothing to scheduling.
#[test]
fn continual_sweep_is_identical_at_any_worker_count() {
    let jobs: Vec<(u64, bool)> = (0..8u64)
        .flat_map(|i| [(0x5EED_0010 + i, false), (0x5EED_0010 + i, true)])
        .collect();
    let run_job = |_w: usize, &(seed, control): &(u64, bool)| {
        let mut scenario = Scenario::continual_from_seed(seed, CT_OPS);
        if control {
            scenario = control_of(&scenario);
        }
        let s = summary(&scenario);
        (
            s.trace_hash,
            s.decisions,
            s.drift_events,
            s.retrains,
            s.promotions,
            s.rollbacks,
        )
    };
    let single = pool_map(&jobs, 1, run_job);
    for workers in [3usize, 8] {
        let multi = pool_map(&jobs, workers, run_job);
        assert_eq!(
            single, multi,
            "continual sweep diverged at {workers} workers"
        );
    }
}
