//! The DST entry points.
//!
//! - A fixed-seed smoke sweep (CI's `dst-smoke` job).
//! - A wider sweep whose size scales with `KML_DST_CASES` (CI's nightly
//!   sweep sets it; unset, a handful of seeds run).
//! - Determinism: the same seed replays byte-identically, alone and
//!   under the persistent `WorkerPool` at any worker count.
//! - Validation: the deliberately-buggy store (lose-memtable-on-failed-
//!   flush) must be *caught*, shrunk to a minimal scenario, and that
//!   minimal reproducer must replay to the same invariant violation.
//! - `replays_reproducer_from_env`: paste a printed
//!   `KML_DST_SEED=… KML_DST_OPS=…` line in front of `cargo test -p
//!   kml-dst` and this test re-runs exactly that scenario, failing with
//!   the full report if the bug is still there.

use kml_dst::{run, shrink, FaultMask, Outcome, Scenario};
use kml_platform::threading::pool_map;

/// Ops per scenario in the sweeps — enough for several tuner windows,
/// flushes, and compactions on every seed-derived geometry.
const SWEEP_OPS: u64 = 400;

fn run_or_report(scenario: &Scenario) -> u64 {
    match run(scenario) {
        Outcome::Pass(s) => s.trace_hash,
        Outcome::Fail(r) => {
            let minimal = shrink(&r);
            panic!(
                "{}\nshrunk ({} attempts) to:\n{}",
                r, minimal.attempts, minimal.report
            );
        }
    }
}

#[test]
fn smoke_seeds_uphold_all_invariants() {
    for seed in [1u64, 7, 42, 0xC0FFEE, 0xDEAD_BEEF, 0x5EED_0001] {
        run_or_report(&Scenario::from_seed(seed, SWEEP_OPS));
    }
}

/// Pinned trace hashes for the smoke seeds. Any arithmetic change anywhere
/// in the simulated stack — kernels, activation math, training order —
/// shifts these; a refactor that claims bit-exactness (like the blocked
/// GEMM kernels) must leave every one unchanged.
#[test]
fn smoke_seed_trace_hashes_are_pinned() {
    const PINNED: [(u64, u64); 6] = [
        (0x1, 0xb2fae01ba0b891cc),
        (0x7, 0xc9c60934ea50b183),
        (0x2a, 0xbdfb480c188117e8),
        (0xC0FFEE, 0x78f3a72ddaf667a9),
        (0xDEAD_BEEF, 0xbb95304ba9aa4d9c),
        (0x5EED_0001, 0x9779714a9eb0538f),
    ];
    for (seed, want) in PINNED {
        let got = run_or_report(&Scenario::from_seed(seed, SWEEP_OPS));
        assert_eq!(
            got, want,
            "seed 0x{seed:x}: trace hash 0x{got:016x} != pinned 0x{want:016x} — \
             the simulated stack's arithmetic changed"
        );
    }
}

#[test]
fn netfs_smoke_seeds_uphold_rpc_invariants() {
    for seed in [1u64, 7, 42, 0xC0FFEE, 0x5EED_0002] {
        run_or_report(&Scenario::netfs_from_seed(seed, SWEEP_OPS));
    }
}

/// Pinned trace hash for one netfs smoke seed: the network path's
/// arithmetic — transport draws, backoff ladders, DRC behaviour, tuner
/// windows — is part of the bit-exactness contract too.
#[test]
fn netfs_smoke_seed_trace_hash_is_pinned() {
    const SEED: u64 = 0x5EED_0002;
    const PINNED: u64 = 0x1dca_e8fc_2624_1a7f;
    let got = run_or_report(&Scenario::netfs_from_seed(SEED, SWEEP_OPS));
    assert_eq!(
        got, PINNED,
        "netfs seed 0x{SEED:x}: trace hash 0x{got:016x} != pinned 0x{PINNED:016x} — \
         the network stack's arithmetic changed"
    );
}

#[test]
fn lifecycle_smoke_seeds_uphold_all_invariants() {
    for seed in [1u64, 7, 42, 0x5EED_0004] {
        run_or_report(&Scenario::lifecycle_from_seed(seed, SWEEP_OPS));
        run_or_report(&Scenario::netfs_lifecycle_from_seed(seed, SWEEP_OPS));
    }
}

/// Pinned trace hashes for the lifecycle smoke seed on both stacks, plus
/// the demonstration the archetype demands: the scripted arc must
/// actually promote a shadow after its clean windows *and* roll back the
/// deliberately regressed install — deterministically, since the hash
/// (which covers the `lc_*` events) is pinned.
#[test]
fn lifecycle_smoke_seed_trace_hashes_are_pinned() {
    const SEED: u64 = 0x5EED_0004;
    const PINNED_LSM: u64 = 0xc9a4_6ea7_5130_f586;
    const PINNED_NETFS: u64 = 0x6d19_dc1e_5a7c_f6f5;
    for (scenario, pinned, stack) in [
        (
            Scenario::lifecycle_from_seed(SEED, SWEEP_OPS),
            PINNED_LSM,
            "lsm",
        ),
        (
            Scenario::netfs_lifecycle_from_seed(SEED, SWEEP_OPS),
            PINNED_NETFS,
            "netfs",
        ),
    ] {
        match run(&scenario) {
            Outcome::Pass(s) => {
                assert!(
                    s.promotions >= 1,
                    "{stack}: the scripted shadow was never promoted"
                );
                assert!(
                    s.rollbacks >= 1,
                    "{stack}: the regressed install was never rolled back"
                );
                assert_eq!(
                    s.trace_hash, pinned,
                    "{stack} seed 0x{SEED:x}: trace hash 0x{:016x} != pinned 0x{pinned:016x} — \
                     the lifecycle arc or the stack's arithmetic changed",
                    s.trace_hash
                );
            }
            Outcome::Fail(r) => panic!("{r}"),
        }
    }
}

/// The lifecycle sweep. A handful of seeds by default; CI's
/// `lifecycle-smoke` job sets `KML_DST_LIFECYCLE=1` (plus
/// `KML_DST_CASES`) to widen it. Even seeds run the LSM/readahead stack
/// under device faults, odd seeds the netfs rsize stack under network
/// faults — and the whole sweep must be byte-identical at any
/// pool worker count.
#[test]
fn lifecycle_sweep_scales_with_env_and_is_deterministic_at_any_worker_count() {
    let cases: u64 = if std::env::var("KML_DST_LIFECYCLE").is_ok_and(|v| v == "1") {
        std::env::var("KML_DST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16)
    } else {
        4
    };
    let seeds: Vec<u64> = (0..cases).map(|i| 0x4000 + i).collect();
    let run_one = |&seed: &u64| {
        let scenario = if seed % 2 == 0 {
            Scenario::lifecycle_from_seed(seed, SWEEP_OPS)
        } else {
            Scenario::netfs_lifecycle_from_seed(seed, SWEEP_OPS)
        };
        run_or_report(&scenario)
    };
    let hashes_1 = pool_map(&seeds, 1, |_, seed| run_one(seed));
    let hashes_3 = pool_map(&seeds, 3, |_, seed| run_one(seed));
    let hashes_8 = pool_map(&seeds, 8, |_, seed| run_one(seed));
    assert_eq!(
        hashes_1, hashes_3,
        "lifecycle sweep diverged between 1 and 3 workers"
    );
    assert_eq!(
        hashes_1, hashes_8,
        "lifecycle sweep diverged between 1 and 8 workers"
    );
}

#[test]
fn netfs_sweep_scales_with_env_and_is_deterministic_at_any_worker_count() {
    let cases: u64 = std::env::var("KML_DST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let seeds: Vec<u64> = (0..cases).map(|i| 0x2000 + i).collect();
    let hashes_1 = pool_map(&seeds, 1, |_, &seed| {
        run_or_report(&Scenario::netfs_from_seed(seed, SWEEP_OPS))
    });
    let hashes_3 = pool_map(&seeds, 3, |_, &seed| {
        run_or_report(&Scenario::netfs_from_seed(seed, SWEEP_OPS))
    });
    let hashes_8 = pool_map(&seeds, 8, |_, &seed| {
        run_or_report(&Scenario::netfs_from_seed(seed, SWEEP_OPS))
    });
    assert_eq!(
        hashes_1, hashes_3,
        "netfs sweep diverged between 1 and 3 workers"
    );
    assert_eq!(
        hashes_1, hashes_8,
        "netfs sweep diverged between 1 and 8 workers"
    );
}

#[test]
fn sweep_scales_with_env_and_is_deterministic_at_any_worker_count() {
    let cases: u64 = std::env::var("KML_DST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let seeds: Vec<u64> = (0..cases).map(|i| 0x1000 + i).collect();
    // The whole sweep, at three different worker counts: every scenario
    // builds its own world from the seed, so placement must not matter.
    let hashes_1 = pool_map(&seeds, 1, |_, &seed| {
        run_or_report(&Scenario::from_seed(seed, SWEEP_OPS))
    });
    let hashes_3 = pool_map(&seeds, 3, |_, &seed| {
        run_or_report(&Scenario::from_seed(seed, SWEEP_OPS))
    });
    let hashes_8 = pool_map(&seeds, 8, |_, &seed| {
        run_or_report(&Scenario::from_seed(seed, SWEEP_OPS))
    });
    assert_eq!(hashes_1, hashes_3, "sweep diverged between 1 and 3 workers");
    assert_eq!(hashes_1, hashes_8, "sweep diverged between 1 and 8 workers");
}

#[test]
fn same_seed_replays_byte_identically() {
    let scenario = Scenario::from_seed(0x0DD5_EED5, SWEEP_OPS);
    let (a, b) = (run(&scenario), run(&scenario));
    match (a, b) {
        (Outcome::Pass(x), Outcome::Pass(y)) => {
            assert_eq!(x, y, "two runs of one seed disagreed");
            assert!(x.injected.total() > 0, "scenario injected nothing");
            assert!(x.io_errors > 0, "no op ever saw an injected error");
        }
        (Outcome::Fail(r), _) | (_, Outcome::Fail(r)) => panic!("{r}"),
    }
}

#[test]
fn deliberate_lsm_bug_is_caught_shrunk_and_replayed() {
    // The harness's own end-to-end validation: arm the store's deliberate
    // lose-memtable-on-failed-flush bug and demand the invariants catch
    // it, the shrinker minimise it, and the minimal reproducer replay to
    // the same violation.
    for seed in 0u64..32 {
        let scenario = Scenario::from_seed(seed, SWEEP_OPS).with_lsm_bug();
        let report = match run(&scenario) {
            Outcome::Pass(_) => continue, // this seed never failed a flush
            Outcome::Fail(r) => r,
        };
        assert_eq!(
            report.invariant, "I1.lsm-vs-reference",
            "lost keys must surface as a store-vs-reference divergence, got: {report}"
        );
        let minimal = shrink(&report);
        assert!(
            minimal.scenario.ops <= report.scenario.ops,
            "shrinking must never grow the scenario"
        );
        // Write-path faults trigger the bug; the read-only kinds should
        // have been shrunk away.
        assert!(
            !minimal.scenario.disabled.contains(FaultMask::WRITE_ERROR)
                || !minimal.scenario.disabled.contains(FaultMask::TORN_WRITE),
            "shrinker disabled every write fault yet the bug still fired: {}",
            minimal.report
        );
        // The printed line is the contract: replaying the minimal scenario
        // must hit the same invariant at the same step.
        println!("minimal reproducer: {}", minimal.reproducer());
        match run(&minimal.scenario) {
            Outcome::Fail(replayed) => {
                assert_eq!(replayed.invariant, minimal.report.invariant);
                assert_eq!(replayed.step, minimal.report.step);
                assert_eq!(replayed.detail, minimal.report.detail);
            }
            Outcome::Pass(_) => panic!(
                "minimal reproducer did not reproduce: {}",
                minimal.reproducer()
            ),
        }
        return;
    }
    panic!(
        "no seed in 0..32 ever tripped the armed LSM bug — faults too weak to validate the harness"
    );
}

#[test]
fn replays_reproducer_from_env() {
    let Ok(seed_str) = std::env::var("KML_DST_SEED") else {
        return; // no reproducer requested
    };
    let seed = seed_str
        .strip_prefix("0x")
        .map(|h| u64::from_str_radix(h, 16))
        .unwrap_or_else(|| seed_str.parse())
        .expect("KML_DST_SEED must be decimal or 0x-hex");
    let ops = std::env::var("KML_DST_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(SWEEP_OPS);
    let mut scenario = if std::env::var("KML_DST_NETFS").is_ok_and(|v| v == "1") {
        Scenario::netfs_from_seed(seed, ops)
    } else {
        Scenario::from_seed(seed, ops)
    };
    if std::env::var("KML_DST_LIFECYCLE").is_ok_and(|v| v == "1") {
        scenario.lifecycle = true;
    }
    if std::env::var("KML_DST_CONTINUAL").is_ok_and(|v| v == "1") {
        scenario.continual = true;
    }
    if let Ok(disable) = std::env::var("KML_DST_DISABLE") {
        scenario.disabled = FaultMask::from_env(&disable);
    }
    if std::env::var("KML_DST_LSM_BUG").is_ok_and(|v| v == "1") {
        scenario = scenario.with_lsm_bug();
    }
    match run(&scenario) {
        Outcome::Pass(s) => println!(
            "scenario passed: {} steps, {} injected faults, {} op errors, trace 0x{:016x}",
            s.steps,
            s.injected.total(),
            s.io_errors,
            s.trace_hash
        ),
        Outcome::Fail(r) => panic!("{r}"),
    }
}
