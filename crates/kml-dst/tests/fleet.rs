//! Fleet-serving invariants under DST discipline.
//!
//! The shared inference server's contract is that batching is a pure
//! mechanical optimization: grouping windows into B×features forward
//! passes must never change a single tenant's decision. These sweeps arm
//! [`ServeOptions::verify_parity`], which re-derives every batched class
//! with a single-row pass inside the server and panics on the first
//! divergence — so each seed below is a full bit-exactness audit of the
//! batched GEMM path against serial inference, across seed-derived
//! tenant mixes, and at several worker counts.

use kml_fleet::{run_fleet, FleetConfig, FleetModels, FleetSummary, ServeOptions};
use kml_platform::threading;

/// A parity-armed scenario: every batched decision is re-derived
/// serially inside the server and compared bit for bit.
fn parity_cfg(seed: u64) -> FleetConfig {
    FleetConfig {
        tenants: 96,
        rounds: 3,
        shards: 16,
        seed,
        options: ServeOptions {
            verify_parity: true,
            ..ServeOptions::default()
        },
        swaps: kml_fleet::NO_SWAPS,
    }
}

fn run_parity(seed: u64) -> FleetSummary {
    let cfg = parity_cfg(seed);
    run_fleet(&cfg, FleetModels::untrained(seed).unwrap())
        .expect("parity-armed fleet run succeeds")
        .summary
}

/// Seed sweep with parity armed: any batched/serial divergence on any
/// seed-derived tenant mix panics inside the server before the
/// assertions here are even reached.
#[test]
fn fleet_parity_seeds_never_diverge_batched_from_serial() {
    for seed in [1u64, 7, 42, 0xC0FFEE, 0x5EED_0003] {
        let s = run_parity(seed);
        assert_eq!(
            s.windows_submitted, s.decisions_returned,
            "seed 0x{seed:x}: a window was dropped or double-served"
        );
        assert!(
            s.forward_passes < s.windows_submitted,
            "seed 0x{seed:x}: serving never actually batched"
        );
    }
}

/// The parity-armed fleet must also be placement-blind: the same seed
/// yields the same summary at any `parallel_map` worker count.
#[test]
fn fleet_parity_summary_is_invariant_across_worker_counts() {
    const SEED: u64 = 0x5EED_0003;
    let run_with = |threads: &str| {
        // run_fleet reads KML_REPRO_THREADS through default_workers.
        std::env::set_var(threading::WORKERS_ENV, threads);
        let s = run_parity(SEED);
        std::env::remove_var(threading::WORKERS_ENV);
        s
    };
    let one = run_with("1");
    let three = run_with("3");
    let eight = run_with("8");
    assert_eq!(one, three, "fleet summary diverged between 1 and 3 workers");
    assert_eq!(one, eight, "fleet summary diverged between 1 and 8 workers");
}
