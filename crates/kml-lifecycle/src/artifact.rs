//! The versioned, checksummed `.kmlm` deployment artifact.
//!
//! The KMLMODEL container (`kml_core::modelfile`) answers "what are the
//! weights"; a `.kmlm` artifact answers "is this the model you think it
//! is, and is it safe to swap in". It wraps the model payload with the
//! deployment metadata a lifecycle needs to verify *before* touching a
//! live loop: which subsystem the model serves, what precision it was
//! saved at, a hash of the feature schema it consumes, whether it shipped
//! with Q8 calibration tables, and a whole-artifact checksum.
//!
//! ```text
//! offset  field
//! 0       magic "KMLMARTF" (8 bytes)
//! 8       format version u32 = 1
//! 12      model kind tag u8 (0 readahead, 1 iosched, 2 netfs-rsize)
//! 13      saved dtype (u8 length + bytes)
//! ..      feature-schema hash u64 (FNV-1a, see [`ArtifactKind::schema_hash`])
//! ..      flags u8 (bit 0: Q8 calibration tables present)
//! ..      model payload u32 length + KMLMODEL v1 blob (weights as f64,
//!         normalization stats, its own inner checksum)
//! ..      if flags&1: table count u32; per table: u32 length + f32 per-row
//!         symmetric scales (one table per linear layer, chain order)
//! ..      checksum u64 (FNV-1a over everything before it)
//! ```
//!
//! **Load is all-or-nothing.** The outer checksum is verified against the
//! full byte range *before* any field is parsed, so a single flipped byte
//! or a truncation is rejected as a typed [`ArtifactError`] without any
//! partial decode; the model itself is only constructed after every
//! header check passes. Loading never mutates caller state — swap points
//! (`KmlTuner::install_artifact` and friends) decode into a fresh value
//! and only then replace the live model.

use kml_core::model::Model;
use kml_core::scalar::Scalar;
use kml_core::{modelfile, KmlError};

/// Artifact magic ("KML model artifact"), distinct from the inner
/// KMLMODEL payload magic.
pub const MAGIC: &[u8; 8] = b"KMLMARTF";

/// Current `.kmlm` format version.
pub const FORMAT_VERSION: u32 = 1;

/// Which subsystem a packaged model serves. The tag is the on-disk byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// The readahead workload classifier (5 features).
    Readahead,
    /// The I/O-scheduler batching classifier (4 features).
    Iosched,
    /// The NFS rsize congestion classifier (5 features).
    NetfsRsize,
}

impl ArtifactKind {
    /// Every kind, in tag order.
    pub const ALL: [ArtifactKind; 3] = [
        ArtifactKind::Readahead,
        ArtifactKind::Iosched,
        ArtifactKind::NetfsRsize,
    ];

    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            ArtifactKind::Readahead => 0,
            ArtifactKind::Iosched => 1,
            ArtifactKind::NetfsRsize => 2,
        }
    }

    /// Decodes a tag byte.
    pub fn from_tag(tag: u8) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Readahead => "readahead",
            ArtifactKind::Iosched => "iosched",
            ArtifactKind::NetfsRsize => "netfs-rsize",
        }
    }

    /// The feature vector each kind's models consume, in order. These
    /// mirror the tuners' `roll_window` outputs — renaming or reordering
    /// a feature changes the schema hash and (correctly) invalidates
    /// every artifact shipped against the old schema.
    pub fn feature_names(self) -> &'static [&'static str] {
        match self {
            ArtifactKind::Readahead => &[
                "window_count",
                "offset_mean",
                "offset_std",
                "abs_diff_mean",
                "current_ra_kb",
            ],
            ArtifactKind::Iosched => &["window_count", "gap_mean", "adjacency", "depth_mean"],
            ArtifactKind::NetfsRsize => &[
                "transmissions",
                "latency_mean",
                "retransmit_fraction",
                "latency_std",
                "current_rsize_kb",
            ],
        }
    }

    /// FNV-1a over the kind name and its feature names: the artifact's
    /// contract with the loop that will feed it.
    pub fn schema_hash(self) -> u64 {
        let mut h = Fnv::new();
        h.update(self.name().as_bytes());
        for name in self.feature_names() {
            h.update(&[0xff]); // separator: "ab","c" != "a","bc"
            h.update(name.as_bytes());
        }
        h.finish()
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed rejection reasons for `.kmlm` bytes. Every load failure is one
/// of these, and a failed load leaves zero partial state behind.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// A format version this build does not read.
    UnsupportedVersion(u32),
    /// An unknown model-kind tag byte.
    UnknownKind(u8),
    /// The byte range ends before a field does.
    Truncated {
        /// Byte offset of the failed read.
        offset: usize,
        /// Bytes the field needed.
        wanted: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// The trailing FNV-1a does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the artifact.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// Bytes after the checksum.
    TrailingBytes(usize),
    /// The artifact's schema hash does not match its kind's schema.
    SchemaMismatch {
        /// The kind's expected schema hash.
        expected: u64,
        /// The hash stored in the artifact.
        found: u64,
    },
    /// The artifact packages a model for a different subsystem.
    KindMismatch {
        /// The kind the loader serves.
        expected: ArtifactKind,
        /// The kind the artifact declares.
        found: ArtifactKind,
    },
    /// The model's class count does not match the deployment policy.
    ClassMismatch {
        /// Output classes in the artifact's model.
        artifact: usize,
        /// Classes the target policy maps.
        policy: usize,
    },
    /// The model's input width does not match the kind's feature schema.
    FeatureDimMismatch {
        /// The kind's feature count.
        expected: usize,
        /// The model's input width.
        found: usize,
    },
    /// A rebuilt Q8 engine did not reproduce the shipped calibration.
    CalibrationMismatch {
        /// Index of the first diverging linear layer.
        layer: usize,
    },
    /// A structurally malformed header field.
    Header(String),
    /// The inner KMLMODEL payload failed to decode (or Q8 failed to
    /// enable on it).
    Model(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "bad artifact magic"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact format version {v}")
            }
            ArtifactError::UnknownKind(t) => write!(f, "unknown model kind tag {t}"),
            ArtifactError::Truncated {
                offset,
                wanted,
                have,
            } => write!(
                f,
                "truncated artifact: wanted {wanted} bytes at offset {offset}, {have} remain"
            ),
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ),
            ArtifactError::TrailingBytes(n) => write!(f, "{n} trailing bytes after checksum"),
            ArtifactError::SchemaMismatch { expected, found } => write!(
                f,
                "feature-schema hash mismatch: expected {expected:#x}, artifact has {found:#x}"
            ),
            ArtifactError::KindMismatch { expected, found } => {
                write!(f, "model kind mismatch: loader serves {expected}, artifact packages {found}")
            }
            ArtifactError::ClassMismatch { artifact, policy } => write!(
                f,
                "class count mismatch: artifact model has {artifact} classes, policy maps {policy}"
            ),
            ArtifactError::FeatureDimMismatch { expected, found } => write!(
                f,
                "feature dim mismatch: schema has {expected} features, model consumes {found}"
            ),
            ArtifactError::CalibrationMismatch { layer } => write!(
                f,
                "q8 calibration mismatch at linear layer {layer}: rebuilt engine diverges from shipped tables"
            ),
            ArtifactError::Header(msg) => write!(f, "malformed artifact header: {msg}"),
            ArtifactError::Model(msg) => write!(f, "artifact model payload rejected: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<KmlError> for ArtifactError {
    fn from(e: KmlError) -> Self {
        ArtifactError::Model(e.to_string())
    }
}

/// A fully verified, ready-to-swap model unpacked from a `.kmlm`.
#[derive(Debug)]
pub struct LoadedArtifact<S: Scalar> {
    /// The subsystem the model serves.
    pub kind: ArtifactKind,
    /// The precision the model was saved at (informational; the payload
    /// stores parameters as `f64` for cross-precision deploy).
    pub dtype: String,
    /// The artifact's feature-schema hash (already verified against
    /// `kind.schema_hash()`).
    pub schema_hash: u64,
    /// The decoded model, with Q8 serving already enabled when the
    /// artifact shipped calibration tables.
    pub model: Model<S>,
    /// Whether Q8 serving is enabled on `model`.
    pub q8: bool,
}

/// Packages a model as `.kmlm` bytes. When the model has Q8 serving
/// enabled, its per-row calibration tables are embedded (and re-verified
/// on load). Takes `&mut` because reading the calibration may lazily
/// re-quantize a stale engine.
///
/// # Errors
///
/// Propagates model-encoding failures (non-chain graphs) as
/// [`ArtifactError::Model`].
pub fn save_model<S: Scalar>(
    kind: ArtifactKind,
    model: &mut Model<S>,
) -> Result<Vec<u8>, ArtifactError> {
    let payload = modelfile::encode(model)?;
    let calibration = model.q8_calibration()?;

    let mut buf = Vec::with_capacity(payload.len() + 64);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.push(kind.tag());
    let dtype = S::DTYPE.as_bytes();
    buf.push(dtype.len() as u8);
    buf.extend_from_slice(dtype);
    buf.extend_from_slice(&kind.schema_hash().to_le_bytes());
    buf.push(u8::from(calibration.is_some()));
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&payload);
    if let Some(tables) = &calibration {
        buf.extend_from_slice(&(tables.len() as u32).to_le_bytes());
        for table in tables {
            buf.extend_from_slice(&(table.len() as u32).to_le_bytes());
            for &s in table {
                buf.extend_from_slice(&s.to_bits().to_le_bytes());
            }
        }
    }
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    Ok(buf)
}

/// Unpacks and fully verifies `.kmlm` bytes: outer checksum first (before
/// any field parse), then header, schema hash, feature dims, the inner
/// KMLMODEL payload, and — when shipped — the Q8 calibration tables
/// against a freshly rebuilt engine.
///
/// The calibration check compares shipped against rebuilt scales
/// bit-for-bit when loading at the saved precision; at a different
/// precision the engine is rebuilt from the converted weights instead
/// (the scales are a function of the weights, which cross-precision
/// conversion may perturb).
///
/// # Errors
///
/// Every rejection is a typed [`ArtifactError`]; nothing is constructed
/// or mutated on failure.
pub fn load_model<S: Scalar>(bytes: &[u8]) -> Result<LoadedArtifact<S>, ArtifactError> {
    // Whole-artifact integrity gate before any structural parse.
    if bytes.len() < MAGIC.len() + 8 {
        return Err(ArtifactError::Truncated {
            offset: 0,
            wanted: MAGIC.len() + 8,
            have: bytes.len(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(ArtifactError::ChecksumMismatch { stored, computed });
    }

    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion(version));
    }
    let kind_tag = r.u8()?;
    let kind = ArtifactKind::from_tag(kind_tag).ok_or(ArtifactError::UnknownKind(kind_tag))?;
    let dtype_len = r.u8()? as usize;
    let dtype = String::from_utf8(r.take(dtype_len)?.to_vec())
        .map_err(|_| ArtifactError::Header("dtype is not UTF-8".into()))?;
    let schema_hash = r.u64()?;
    if schema_hash != kind.schema_hash() {
        return Err(ArtifactError::SchemaMismatch {
            expected: kind.schema_hash(),
            found: schema_hash,
        });
    }
    let flags = r.u8()?;
    if flags & !1 != 0 {
        return Err(ArtifactError::Header(format!("unknown flags {flags:#x}")));
    }
    let has_q8 = flags & 1 == 1;

    let payload_len = r.u32()? as usize;
    let payload = r.take(payload_len)?;
    let shipped_tables = if has_q8 {
        let count = r.u32()? as usize;
        if count > 10_000 {
            return Err(ArtifactError::Header(format!(
                "implausible q8 table count {count}"
            )));
        }
        let mut tables = Vec::with_capacity(count);
        for _ in 0..count {
            let len = r.u32()? as usize;
            if len > r.remaining() / 4 {
                return Err(ArtifactError::Truncated {
                    offset: r.pos,
                    wanted: len * 4,
                    have: r.remaining(),
                });
            }
            let mut table = Vec::with_capacity(len);
            for _ in 0..len {
                table.push(f32::from_bits(r.u32()?));
            }
            tables.push(table);
        }
        Some(tables)
    } else {
        None
    };
    if r.remaining() != 0 {
        return Err(ArtifactError::TrailingBytes(r.remaining()));
    }

    let mut model = modelfile::decode::<S>(payload)?;
    let expected_dim = kind.feature_names().len();
    if model.input_dim() != expected_dim {
        return Err(ArtifactError::FeatureDimMismatch {
            expected: expected_dim,
            found: model.input_dim(),
        });
    }
    if let Some(shipped) = shipped_tables {
        model.enable_q8()?;
        if dtype == S::DTYPE {
            let rebuilt = model
                .q8_calibration()?
                .expect("q8 just enabled on this model");
            if rebuilt.len() != shipped.len() {
                return Err(ArtifactError::CalibrationMismatch { layer: 0 });
            }
            for (i, (a, b)) in rebuilt.iter().zip(&shipped).enumerate() {
                let same =
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
                if !same {
                    return Err(ArtifactError::CalibrationMismatch { layer: i });
                }
            }
        }
        return Ok(LoadedArtifact {
            kind,
            dtype,
            schema_hash,
            model,
            q8: true,
        });
    }
    Ok(LoadedArtifact {
        kind,
        dtype,
        schema_hash,
        model,
        q8: false,
    })
}

/// [`load_model`] plus a kind check: the loader states which subsystem it
/// serves, and an artifact for any other subsystem is rejected before its
/// payload is decoded.
///
/// # Errors
///
/// [`ArtifactError::KindMismatch`] on the wrong kind, else as
/// [`load_model`].
pub fn load_model_for<S: Scalar>(
    bytes: &[u8],
    expected: ArtifactKind,
) -> Result<LoadedArtifact<S>, ArtifactError> {
    let loaded = load_model::<S>(bytes)?;
    if loaded.kind != expected {
        return Err(ArtifactError::KindMismatch {
            expected,
            found: loaded.kind,
        });
    }
    Ok(loaded)
}

/// Reads the kind tag without decoding the payload (the checksum is still
/// verified first — peeking at corrupt bytes is also a rejection).
///
/// # Errors
///
/// As [`load_model`]'s header path.
pub fn peek_kind(bytes: &[u8]) -> Result<ArtifactKind, ArtifactError> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(ArtifactError::Truncated {
            offset: 0,
            wanted: MAGIC.len() + 8,
            have: bytes.len(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(ArtifactError::ChecksumMismatch { stored, computed });
    }
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion(version));
    }
    let kind_tag = r.u8()?;
    ArtifactKind::from_tag(kind_tag).ok_or(ArtifactError::UnknownKind(kind_tag))
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.pos + n > self.bytes.len() {
            return Err(ArtifactError::Truncated {
                offset: self.pos,
                wanted: n,
                have: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kml_core::model::ModelBuilder;

    fn readahead_model() -> Model<f32> {
        ModelBuilder::readahead_paper_topology(5, 2)
            .seed(0x11FE)
            .build::<f32>()
            .expect("builds")
    }

    #[test]
    fn schema_hashes_are_distinct_and_stable() {
        let hashes: Vec<u64> = ArtifactKind::ALL.iter().map(|k| k.schema_hash()).collect();
        assert_eq!(hashes[0], ArtifactKind::Readahead.schema_hash());
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "schema hash collision");
            }
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let mut m = readahead_model();
        let bytes = save_model(ArtifactKind::Readahead, &mut m).unwrap();
        let loaded = load_model::<f32>(&bytes).unwrap();
        assert_eq!(loaded.kind, ArtifactKind::Readahead);
        assert_eq!(loaded.dtype, "f32");
        assert!(!loaded.q8);
        let mut reloaded = loaded.model;
        let again = save_model(ArtifactKind::Readahead, &mut reloaded).unwrap();
        assert_eq!(bytes, again, "save→load→save must be bit-identical");
    }

    #[test]
    fn q8_tables_round_trip_and_verify() {
        let mut m = readahead_model();
        m.enable_q8().unwrap();
        let bytes = save_model(ArtifactKind::Readahead, &mut m).unwrap();
        let loaded = load_model::<f32>(&bytes).unwrap();
        assert!(loaded.q8);
        assert!(loaded.model.q8_enabled());
        let mut a = m;
        let mut b = loaded.model;
        for probe in [[0.0; 5], [100.0, 3.0, 1.5, 4.0, 128.0]] {
            assert_eq!(a.predict(&probe).unwrap(), b.predict(&probe).unwrap());
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let mut m = readahead_model();
        let bytes = save_model(ArtifactKind::Readahead, &mut m).unwrap();
        // Exhaustive over the header and sampled over the payload.
        for i in (0..bytes.len()).step_by(7).chain(0..32) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                load_model::<f32>(&corrupt).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let mut m = readahead_model();
        let bytes = save_model(ArtifactKind::Readahead, &mut m).unwrap();
        for cut in (0..bytes.len()).step_by(11).chain([bytes.len() - 1]) {
            assert!(
                load_model::<f32>(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn kind_check_rejects_cross_subsystem_artifacts() {
        let mut m = readahead_model();
        let bytes = save_model(ArtifactKind::Readahead, &mut m).unwrap();
        assert_eq!(peek_kind(&bytes).unwrap(), ArtifactKind::Readahead);
        assert!(matches!(
            load_model_for::<f32>(&bytes, ArtifactKind::Iosched),
            Err(ArtifactError::KindMismatch { .. })
        ));
    }

    #[test]
    fn wrong_feature_dim_rejected() {
        let mut m = ModelBuilder::new(3).linear(2).build::<f32>().unwrap();
        let bytes = save_model(ArtifactKind::Readahead, &mut m).unwrap();
        assert!(matches!(
            load_model::<f32>(&bytes),
            Err(ArtifactError::FeatureDimMismatch {
                expected: 5,
                found: 3
            })
        ));
    }
}
