//! The deterministic lifecycle watchdog.
//!
//! A pure state machine over per-window throughput observations — no
//! wall clock, no randomness, so the same observation stream produces the
//! same promote/rollback decisions at any worker count (the closed loops
//! feed it virtual-clock throughput).
//!
//! ```text
//!                 stage_shadow          K clean windows
//!   ┌─────────┐ ───────────────▶ ┌────────────┐ ─────────▶ promote
//!   │ SERVING │                  │ EVALUATING │            (new generation)
//!   └─────────┘ ◀─────────────── └────────────┘
//!        │         clear_shadow
//!        │ N consecutive windows with
//!        │ throughput < ratio × baseline
//!        ▼
//!     rollback (previous generation restored, streaks reset)
//! ```
//!
//! After every generation change ([`Watchdog::on_generation_change`]) the
//! first `baseline_windows` observations rebuild the throughput baseline
//! before regression detection re-arms — a fresh model is judged against
//! its own steady state, not its predecessor's.

/// Watchdog tuning. All window counts are in loop-observation windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Windows that establish the throughput baseline after a generation
    /// change; regression detection is disarmed while it rebuilds.
    pub baseline_windows: u32,
    /// Clean (non-regressed) windows with a shadow staged before the
    /// shadow is promoted — the "K" in "promote after K clean windows".
    pub promote_after: u32,
    /// Consecutive regressed windows before rollback fires — the "N" in
    /// "throughput delta over N windows".
    pub regress_windows: u32,
    /// A window is regressed when `throughput < regress_ratio × baseline`.
    pub regress_ratio: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            baseline_windows: 3,
            promote_after: 4,
            regress_windows: 3,
            regress_ratio: 0.85,
        }
    }
}

/// What the watchdog wants done after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogAction {
    /// Keep serving.
    None,
    /// The staged shadow has accumulated K clean windows: promote it.
    PromoteShadow,
    /// The active model regressed for N consecutive windows: roll back.
    Rollback,
}

/// The watchdog state machine. Feed one [`Watchdog::observe`] call per
/// loop window; call [`Watchdog::on_generation_change`] whenever the
/// active model changes (swap, promotion, or rollback).
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    baseline_sum: f64,
    baseline_n: u32,
    baseline: Option<f64>,
    clean_streak: u32,
    regress_streak: u32,
}

impl Watchdog {
    /// A fresh watchdog (baseline unset, streaks zero).
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            baseline_sum: 0.0,
            baseline_n: 0,
            baseline: None,
            clean_streak: 0,
            regress_streak: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// The established throughput baseline, if warmup has completed.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Resets streaks and restarts baseline warmup (the active model
    /// changed, so its predecessor's steady state no longer applies).
    pub fn on_generation_change(&mut self) {
        self.baseline_sum = 0.0;
        self.baseline_n = 0;
        self.baseline = None;
        self.clean_streak = 0;
        self.regress_streak = 0;
    }

    /// Folds one window's throughput (any monotone goodness measure in
    /// consistent units — the loops use bytes per virtual second) and
    /// whether a shadow candidate is currently staged.
    pub fn observe(&mut self, throughput: f64, shadow_staged: bool) -> WatchdogAction {
        let Some(baseline) = self.baseline else {
            // Warmup: accumulate the baseline. Warmup windows carry no
            // regression signal, so they count as clean for promotion.
            self.baseline_sum += throughput;
            self.baseline_n += 1;
            if self.baseline_n >= self.cfg.baseline_windows.max(1) {
                self.baseline = Some(self.baseline_sum / self.baseline_n as f64);
            }
            return self.clean_window(shadow_staged);
        };
        if throughput < self.cfg.regress_ratio * baseline {
            self.clean_streak = 0;
            self.regress_streak += 1;
            if self.regress_streak >= self.cfg.regress_windows.max(1) {
                return WatchdogAction::Rollback;
            }
            return WatchdogAction::None;
        }
        self.regress_streak = 0;
        self.clean_window(shadow_staged)
    }

    fn clean_window(&mut self, shadow_staged: bool) -> WatchdogAction {
        if shadow_staged {
            self.clean_streak += 1;
            if self.clean_streak >= self.cfg.promote_after.max(1) {
                return WatchdogAction::PromoteShadow;
            }
        } else {
            self.clean_streak = 0;
        }
        WatchdogAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            baseline_windows: 2,
            promote_after: 3,
            regress_windows: 2,
            regress_ratio: 0.85,
        }
    }

    #[test]
    fn promotes_after_k_clean_windows() {
        let mut w = Watchdog::new(cfg());
        assert_eq!(w.observe(100.0, true), WatchdogAction::None);
        assert_eq!(w.observe(100.0, true), WatchdogAction::None);
        assert_eq!(w.observe(100.0, true), WatchdogAction::PromoteShadow);
    }

    #[test]
    fn regression_interrupts_the_clean_streak() {
        let mut w = Watchdog::new(cfg());
        w.observe(100.0, true);
        w.observe(100.0, true);
        // Baseline is now 100; a regressed window resets the streak.
        assert_eq!(w.observe(10.0, true), WatchdogAction::None);
        assert_eq!(w.observe(100.0, true), WatchdogAction::None);
        assert_eq!(w.observe(100.0, true), WatchdogAction::None);
        assert_eq!(w.observe(100.0, true), WatchdogAction::PromoteShadow);
    }

    #[test]
    fn rolls_back_after_n_regressed_windows() {
        let mut w = Watchdog::new(cfg());
        w.observe(100.0, false);
        w.observe(100.0, false);
        assert_eq!(w.observe(10.0, false), WatchdogAction::None);
        assert_eq!(w.observe(10.0, false), WatchdogAction::Rollback);
    }

    #[test]
    fn single_bad_window_does_not_roll_back() {
        let mut w = Watchdog::new(cfg());
        w.observe(100.0, false);
        w.observe(100.0, false);
        assert_eq!(w.observe(10.0, false), WatchdogAction::None);
        assert_eq!(w.observe(100.0, false), WatchdogAction::None);
        assert_eq!(w.observe(10.0, false), WatchdogAction::None);
    }

    #[test]
    fn generation_change_rebuilds_the_baseline() {
        let mut w = Watchdog::new(cfg());
        w.observe(100.0, false);
        w.observe(100.0, false);
        assert_eq!(w.baseline(), Some(100.0));
        w.on_generation_change();
        assert_eq!(w.baseline(), None);
        // The new model's lower steady state becomes the new baseline
        // instead of tripping the detector.
        w.observe(50.0, false);
        w.observe(50.0, false);
        assert_eq!(w.baseline(), Some(50.0));
        assert_eq!(w.observe(49.0, false), WatchdogAction::None);
    }
}
