//! The lifecycle controller: artifacts in, promote/rollback out.
//!
//! [`LifecycleController`] owns the *policy* half of the lifecycle for
//! one swap target (a closed-loop tuner or one fleet model lane). It
//! keeps the active generation's `.kmlm` bytes, the previous generation's
//! bytes for rollback, and an optional staged shadow candidate; every
//! loop window it feeds the [`Watchdog`](crate::watchdog::Watchdog) and
//! executes whatever the watchdog decides. Rollback reinstalls the
//! previous generation *from its artifact bytes* under its original
//! generation tag — the restored model is bit-identical to what served
//! before (artifact decode is deterministic), and the very next decision
//! the loop takes is provably tagged with the previous generation.
//!
//! The controller mutates the target only through
//! [`LifecycleTarget`], whose implementations are required to be
//! all-or-nothing: a failed artifact install leaves the target exactly as
//! it was (generation, model, knob — the DST invariant I13).

use crate::artifact::ArtifactError;
use crate::shadow::ShadowStats;
use crate::watchdog::{Watchdog, WatchdogAction, WatchdogConfig};

/// A swap point the controller can drive: a loop tuner or a fleet model
/// lane. Implementations must make `install_artifact` atomic — decode and
/// verify first, mutate only on success.
pub trait LifecycleTarget {
    /// Decodes, verifies, and atomically installs artifact bytes as the
    /// active model under `generation`.
    ///
    /// # Errors
    ///
    /// A typed [`ArtifactError`]; the target is unchanged on failure.
    fn install_artifact(&mut self, bytes: &[u8], generation: u64) -> Result<(), ArtifactError>;

    /// Decodes, verifies, and stages artifact bytes as the shadow
    /// candidate (replacing any previous candidate and resetting its
    /// stats). The active model and the loop's knob are untouched.
    ///
    /// # Errors
    ///
    /// A typed [`ArtifactError`]; no candidate is staged on failure.
    fn stage_shadow_artifact(&mut self, bytes: &[u8]) -> Result<(), ArtifactError>;

    /// Discards any staged shadow candidate (and its stats).
    fn clear_shadow(&mut self);

    /// The active model's generation tag.
    fn generation(&self) -> u64;

    /// Agreement stats for the currently staged candidate (zeroed when
    /// none is staged).
    fn shadow_stats(&self) -> ShadowStats;
}

/// A promote or rollback the controller executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifecycleEvent {
    /// A staged shadow was promoted to the active model.
    Promoted {
        /// Generation it replaced.
        from: u64,
        /// Generation it now serves as.
        to: u64,
        /// The candidate's decision agreement with the model it replaced,
        /// in percent, frozen at promotion time.
        agreement_pct: f64,
    },
    /// The active model was rolled back to the previous generation.
    RolledBack {
        /// Generation rolled back from.
        from: u64,
        /// Generation restored (its original tag).
        to: u64,
    },
}

/// One executed event plus the loop window it fired on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleRecord {
    /// 1-based index of the observation window the event fired on.
    pub window: u64,
    /// What happened.
    pub event: LifecycleEvent,
}

/// The per-target lifecycle driver. See the module docs.
#[derive(Debug)]
pub struct LifecycleController {
    watchdog: Watchdog,
    next_gen: u64,
    active: (u64, Vec<u8>),
    previous: Option<(u64, Vec<u8>)>,
    shadow: Option<Vec<u8>>,
    window: u64,
    shadow_tp_sum: f64,
    shadow_tp_windows: u64,
    events: Vec<LifecycleRecord>,
}

impl LifecycleController {
    /// Installs `initial` into `target` as generation 1 and starts the
    /// watchdog.
    ///
    /// # Errors
    ///
    /// Propagates the install; the target is unchanged on failure.
    pub fn new<T: LifecycleTarget>(
        cfg: WatchdogConfig,
        target: &mut T,
        initial: Vec<u8>,
    ) -> Result<Self, ArtifactError> {
        target.install_artifact(&initial, 1)?;
        Ok(LifecycleController {
            watchdog: Watchdog::new(cfg),
            next_gen: 2,
            active: (1, initial),
            previous: None,
            shadow: None,
            window: 0,
            shadow_tp_sum: 0.0,
            shadow_tp_windows: 0,
            events: Vec::new(),
        })
    }

    /// Stages `candidate` as the shadow for future promotion. The active
    /// model keeps serving; the candidate only accumulates evidence.
    ///
    /// # Errors
    ///
    /// Propagates the stage; nothing is staged on failure.
    pub fn stage_shadow<T: LifecycleTarget>(
        &mut self,
        target: &mut T,
        candidate: Vec<u8>,
    ) -> Result<(), ArtifactError> {
        target.stage_shadow_artifact(&candidate)?;
        self.shadow = Some(candidate);
        self.shadow_tp_sum = 0.0;
        self.shadow_tp_windows = 0;
        Ok(())
    }

    /// Directly installs `artifact` as a new generation (an operator push
    /// rather than a watchdog promotion), retaining the outgoing
    /// generation for rollback.
    ///
    /// # Errors
    ///
    /// Propagates the install; active/previous are unchanged on failure.
    pub fn install<T: LifecycleTarget>(
        &mut self,
        target: &mut T,
        artifact: Vec<u8>,
    ) -> Result<u64, ArtifactError> {
        let generation = self.next_gen;
        target.install_artifact(&artifact, generation)?;
        self.next_gen += 1;
        self.previous = Some(std::mem::replace(&mut self.active, (generation, artifact)));
        self.watchdog.on_generation_change();
        Ok(generation)
    }

    /// Feeds one loop window's throughput to the watchdog and executes
    /// its decision (promotion or rollback) against the target.
    ///
    /// # Errors
    ///
    /// Propagates a failed promote/rollback install. The retained
    /// artifact bytes round-tripped a successful install before, so this
    /// only fires on genuine target breakage — and the target is still
    /// unchanged in that case.
    pub fn observe_window<T: LifecycleTarget>(
        &mut self,
        target: &mut T,
        throughput: f64,
    ) -> Result<Option<LifecycleEvent>, ArtifactError> {
        self.window += 1;
        if self.shadow.is_some() {
            self.shadow_tp_sum += throughput;
            self.shadow_tp_windows += 1;
        }
        match self.watchdog.observe(throughput, self.shadow.is_some()) {
            WatchdogAction::None => Ok(None),
            WatchdogAction::PromoteShadow => {
                let candidate = self.shadow.take().expect("promote requires a shadow");
                let agreement_pct = target.shadow_stats().agreement_pct();
                let generation = self.next_gen;
                target.install_artifact(&candidate, generation)?;
                target.clear_shadow();
                self.next_gen += 1;
                let from = self.active.0;
                self.previous = Some(std::mem::replace(&mut self.active, (generation, candidate)));
                self.watchdog.on_generation_change();
                let event = LifecycleEvent::Promoted {
                    from,
                    to: generation,
                    agreement_pct,
                };
                self.events.push(LifecycleRecord {
                    window: self.window,
                    event,
                });
                Ok(Some(event))
            }
            WatchdogAction::Rollback => {
                let Some((generation, artifact)) = self.previous.take() else {
                    // Nothing to roll back to (generation 1 regressed):
                    // keep serving and re-arm the detector so the alarm
                    // does not re-fire every window.
                    self.watchdog.on_generation_change();
                    return Ok(None);
                };
                target.install_artifact(&artifact, generation)?;
                let from = self.active.0;
                self.active = (generation, artifact);
                self.watchdog.on_generation_change();
                let event = LifecycleEvent::RolledBack {
                    from,
                    to: generation,
                };
                self.events.push(LifecycleRecord {
                    window: self.window,
                    event,
                });
                Ok(Some(event))
            }
        }
    }

    /// The active generation tag.
    pub fn generation(&self) -> u64 {
        self.active.0
    }

    /// The active generation's artifact bytes.
    pub fn active_artifact(&self) -> &[u8] {
        &self.active.1
    }

    /// Whether a rollback target exists.
    pub fn has_previous(&self) -> bool {
        self.previous.is_some()
    }

    /// Whether a shadow candidate is staged.
    pub fn shadow_staged(&self) -> bool {
        self.shadow.is_some()
    }

    /// Discards the staged shadow candidate (and the target's copy of
    /// it) without promoting — the caller has decided the candidate is
    /// not worth further evidence, e.g. a regression fired while it was
    /// staged. Returns whether a candidate was actually discarded.
    pub fn discard_shadow<T: LifecycleTarget>(&mut self, target: &mut T) -> bool {
        if self.shadow.take().is_some() {
            target.clear_shadow();
            self.shadow_tp_sum = 0.0;
            self.shadow_tp_windows = 0;
            true
        } else {
            false
        }
    }

    /// Mean loop throughput over the windows the current candidate has
    /// been staged for, relative to the watchdog baseline: `Some(+0.02)`
    /// means the loop ran 2% above baseline while shadowed. `None` until
    /// both sides exist.
    pub fn shadow_throughput_delta(&self) -> Option<f64> {
        let baseline = self.watchdog.baseline()?;
        if self.shadow_tp_windows == 0 || baseline == 0.0 {
            return None;
        }
        Some(self.shadow_tp_sum / self.shadow_tp_windows as f64 / baseline - 1.0)
    }

    /// Every promote/rollback executed, in order.
    pub fn events(&self) -> &[LifecycleRecord] {
        &self.events
    }

    /// Observation windows folded so far.
    pub fn windows(&self) -> u64 {
        self.window
    }

    /// The watchdog (for baseline/config introspection).
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal in-memory target: "installing" remembers the bytes and
    /// generation, staging remembers the candidate.
    #[derive(Debug, Default)]
    struct FakeTarget {
        installed: Vec<(u64, Vec<u8>)>,
        generation: u64,
        shadow: Option<Vec<u8>>,
        stats: ShadowStats,
        fail_installs: bool,
    }

    impl LifecycleTarget for FakeTarget {
        fn install_artifact(&mut self, bytes: &[u8], generation: u64) -> Result<(), ArtifactError> {
            if self.fail_installs {
                return Err(ArtifactError::BadMagic);
            }
            self.installed.push((generation, bytes.to_vec()));
            self.generation = generation;
            Ok(())
        }

        fn stage_shadow_artifact(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
            self.shadow = Some(bytes.to_vec());
            self.stats = ShadowStats::default();
            Ok(())
        }

        fn clear_shadow(&mut self) {
            self.shadow = None;
        }

        fn generation(&self) -> u64 {
            self.generation
        }

        fn shadow_stats(&self) -> ShadowStats {
            self.stats
        }
    }

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            baseline_windows: 2,
            promote_after: 2,
            regress_windows: 2,
            regress_ratio: 0.85,
        }
    }

    #[test]
    fn shadow_promotion_full_path() {
        let mut t = FakeTarget::default();
        let mut c = LifecycleController::new(cfg(), &mut t, b"v1".to_vec()).unwrap();
        assert_eq!(t.generation(), 1);
        c.stage_shadow(&mut t, b"v2".to_vec()).unwrap();
        assert!(c.shadow_staged());
        assert_eq!(c.observe_window(&mut t, 100.0).unwrap(), None);
        let event = c.observe_window(&mut t, 100.0).unwrap().unwrap();
        assert!(matches!(
            event,
            LifecycleEvent::Promoted { from: 1, to: 2, .. }
        ));
        assert_eq!(t.generation(), 2);
        assert_eq!(t.installed.last().unwrap().1, b"v2");
        assert!(t.shadow.is_none(), "promotion must clear the shadow lane");
        assert!(!c.shadow_staged());
        assert!(c.has_previous());
    }

    #[test]
    fn regression_rolls_back_to_the_previous_generation_tag() {
        let mut t = FakeTarget::default();
        let mut c = LifecycleController::new(cfg(), &mut t, b"good".to_vec()).unwrap();
        // Establish a baseline on the good model.
        c.observe_window(&mut t, 100.0).unwrap();
        c.observe_window(&mut t, 100.0).unwrap();
        // Operator pushes a bad model: generation 2.
        c.install(&mut t, b"bad".to_vec()).unwrap();
        assert_eq!(t.generation(), 2);
        // Its own baseline forms low... but the detector compares against
        // the *new* baseline, so regression means degrading further.
        // Feed a fresh baseline then collapse.
        c.observe_window(&mut t, 90.0).unwrap();
        c.observe_window(&mut t, 90.0).unwrap();
        assert_eq!(c.observe_window(&mut t, 10.0).unwrap(), None);
        let event = c.observe_window(&mut t, 10.0).unwrap().unwrap();
        assert_eq!(event, LifecycleEvent::RolledBack { from: 2, to: 1 });
        assert_eq!(t.generation(), 1, "restored under its original tag");
        assert_eq!(t.installed.last().unwrap().1, b"good");
        assert!(!c.has_previous(), "rollback consumes the previous slot");
    }

    #[test]
    fn rollback_without_previous_rearms_instead_of_looping() {
        let mut t = FakeTarget::default();
        let mut c = LifecycleController::new(cfg(), &mut t, b"only".to_vec()).unwrap();
        c.observe_window(&mut t, 100.0).unwrap();
        c.observe_window(&mut t, 100.0).unwrap();
        c.observe_window(&mut t, 10.0).unwrap();
        assert_eq!(c.observe_window(&mut t, 10.0).unwrap(), None);
        assert_eq!(t.generation(), 1);
        assert!(c.events().is_empty());
    }

    #[test]
    fn failed_initial_install_builds_no_controller() {
        let mut t = FakeTarget {
            fail_installs: true,
            ..FakeTarget::default()
        };
        assert!(LifecycleController::new(cfg(), &mut t, b"x".to_vec()).is_err());
        assert_eq!(t.generation, 0);
    }
}
