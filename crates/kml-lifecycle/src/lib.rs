//! # kml-lifecycle — model lifecycle for the KML stack
//!
//! The paper trains a model once and deploys it once; a production fleet
//! never gets to stop there. This crate is the missing lifecycle around
//! `kml_core::Model`:
//!
//! - **[`artifact`]** — the versioned, checksummed `.kmlm` deployment
//!   artifact: model kind, saved dtype, feature-schema hash,
//!   normalization stats (inside the KMLMODEL payload), optional Q8
//!   calibration tables, and a whole-artifact checksum. Load is
//!   all-or-nothing with typed errors.
//! - **[`swap`]** — [`Generational`], the generation-tagged `Arc` swap
//!   cell: in-flight batches finish on the generation they pinned,
//!   publishes never tear.
//! - **[`shadow`]** — [`ShadowStats`], decision-agreement accounting for
//!   a candidate that infers on live windows without ever actuating.
//! - **[`watchdog`]** — the deterministic promote/rollback state machine:
//!   a shadow is promoted after K clean windows, an active model is
//!   rolled back after N consecutive windows below `ratio × baseline`
//!   throughput.
//! - **[`controller`]** — [`LifecycleController`], gluing the above to a
//!   swap target ([`LifecycleTarget`]: the readahead/iosched/netfs tuners
//!   and the fleet server's model lanes implement it). Rollback
//!   reinstalls the previous generation from its retained artifact bytes
//!   under its original generation tag.
//!
//! Everything here is deterministic: the watchdog consumes virtual-clock
//! throughput, artifacts decode bit-identically, and generation tags are
//! assigned by the controller — so lifecycle-enabled runs stay
//! byte-identical at any worker count, and kml-dst can torture the whole
//! state machine under seeded fault schedules.

pub mod artifact;
pub mod controller;
pub mod shadow;
pub mod swap;
pub mod watchdog;

pub use artifact::{
    load_model, load_model_for, peek_kind, save_model, ArtifactError, ArtifactKind, LoadedArtifact,
};
pub use controller::{LifecycleController, LifecycleEvent, LifecycleRecord, LifecycleTarget};
pub use shadow::ShadowStats;
pub use swap::{Generational, Pinned};
pub use watchdog::{Watchdog, WatchdogAction, WatchdogConfig};
