//! Generation-tagged atomic hot-swap.
//!
//! [`Generational<T>`] is the swap cell the fleet's batched server keeps
//! one of per model kind: readers *pin* the current generation (an `Arc`
//! clone taken under a short read lock) and keep using it for as long as
//! they hold the pin, while [`Generational::publish`] installs a new
//! generation for future pins without waiting for in-flight work. There
//! is no torn state by construction — a pin observes exactly one
//! `(generation, value)` pair, and a publish replaces the whole pair in
//! one pointer swap.
//!
//! The cell is deliberately small: the *policy* of when to swap (shadow
//! evaluation, watchdog rollback) lives in [`crate::controller`]; this
//! module only guarantees that however a swap is decided, serving never
//! observes half of one model and half of another.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One published generation: the tag plus the value behind its own lock
/// (models need `&mut` for their scratch buffers even during inference).
#[derive(Debug)]
struct GenEntry<T> {
    generation: u64,
    value: Mutex<T>,
}

/// A handle pinning one generation. In-flight work holds a `Pinned` for
/// its whole batch: publishes that happen meanwhile are invisible to it,
/// so the batch finishes on the generation it started on.
#[derive(Debug)]
pub struct Pinned<T> {
    entry: Arc<GenEntry<T>>,
}

impl<T> Pinned<T> {
    /// The pinned generation tag.
    pub fn generation(&self) -> u64 {
        self.entry.generation
    }

    /// Runs `f` with exclusive access to the pinned value.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.entry.value.lock().expect("generation lock poisoned");
        f(&mut guard)
    }
}

impl<T> Clone for Pinned<T> {
    fn clone(&self) -> Self {
        Pinned {
            entry: Arc::clone(&self.entry),
        }
    }
}

/// The generation-tagged swap cell.
#[derive(Debug)]
pub struct Generational<T> {
    slot: RwLock<Arc<GenEntry<T>>>,
    next_gen: AtomicU64,
}

impl<T> Generational<T> {
    /// Wraps `value` as generation 1.
    pub fn new(value: T) -> Self {
        Generational {
            slot: RwLock::new(Arc::new(GenEntry {
                generation: 1,
                value: Mutex::new(value),
            })),
            next_gen: AtomicU64::new(2),
        }
    }

    /// Pins the current generation. The pin stays valid — same
    /// generation, same value — across any number of publishes.
    pub fn pin(&self) -> Pinned<T> {
        Pinned {
            entry: Arc::clone(&self.slot.read().expect("swap slot poisoned")),
        }
    }

    /// The currently published generation tag.
    pub fn generation(&self) -> u64 {
        self.slot.read().expect("swap slot poisoned").generation
    }

    /// Atomically installs `value` as the next generation and returns its
    /// tag. Existing pins are untouched; the swap itself is one pointer
    /// store under the write lock, so the pause it imposes on new pins is
    /// bounded by an `Arc` allocation, not by model size.
    pub fn publish(&self, value: T) -> u64 {
        let generation = self.next_gen.fetch_add(1, Ordering::Relaxed);
        self.publish_tagged(value, generation);
        generation
    }

    /// Installs `value` under an explicit (typically previously issued)
    /// generation tag — the rollback path, where restoring generation `g`
    /// must be observable as generation `g`, not as a new one.
    pub fn publish_tagged(&self, value: T, generation: u64) {
        let entry = Arc::new(GenEntry {
            generation,
            value: Mutex::new(value),
        });
        // Keep future publish() tags ahead of any explicit tag.
        self.next_gen.fetch_max(generation + 1, Ordering::Relaxed);
        *self.slot.write().expect("swap slot poisoned") = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_survive_publishes() {
        let cell = Generational::new(10u64);
        let pinned = cell.pin();
        assert_eq!(pinned.generation(), 1);
        let g2 = cell.publish(20);
        assert_eq!(g2, 2);
        // The in-flight pin still sees generation 1's value.
        assert_eq!(pinned.with(|v| *v), 10);
        assert_eq!(pinned.generation(), 1);
        // A fresh pin sees the new generation.
        let fresh = cell.pin();
        assert_eq!(fresh.generation(), 2);
        assert_eq!(fresh.with(|v| *v), 20);
    }

    #[test]
    fn rollback_restores_the_original_tag() {
        let cell = Generational::new(1u64);
        cell.publish(2);
        cell.publish_tagged(1, 1); // roll back to generation 1
        assert_eq!(cell.generation(), 1);
        // The next forward publish does not collide with generation 2.
        assert_eq!(cell.publish(3), 3);
    }

    #[test]
    fn concurrent_publishes_never_tear() {
        let cell = Arc::new(Generational::new((0u64, 0u64)));
        let publisher = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=1000u64 {
                    cell.publish((i, i.wrapping_mul(0x9E37_79B9)));
                }
            })
        };
        for _ in 0..1000 {
            let pinned = cell.pin();
            let (a, b) = pinned.with(|v| *v);
            assert_eq!(b, a.wrapping_mul(0x9E37_79B9), "torn read");
        }
        publisher.join().expect("publisher thread");
    }
}
