//! Shadow-mode bookkeeping.
//!
//! A shadow candidate infers on exactly the live windows the active model
//! sees, but its predictions are never actuated — the loop's knob moves
//! only on active decisions. What shadow mode produces is evidence:
//! per-window decision agreement with the active model, accumulated here,
//! plus the throughput the loop sustained while the candidate was staged
//! (tracked by the controller against the active baseline). The watchdog
//! promotes a candidate only after enough clean windows of that evidence.

/// Decision-agreement counters for one staged shadow candidate. Reset
/// when a candidate is staged, frozen into the promotion record when it
/// is promoted or discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowStats {
    /// Windows on which both active and shadow produced a decision.
    pub windows: u64,
    /// Windows on which the shadow's class matched the active class.
    pub agreements: u64,
    /// Shadow inference errors (shape mismatches — deployment bugs; the
    /// active path is never affected).
    pub errors: u64,
}

impl ShadowStats {
    /// Folds one compared window.
    pub fn record(&mut self, agreed: bool) {
        self.windows += 1;
        if agreed {
            self.agreements += 1;
        }
    }

    /// Agreement rate in percent (100.0 when no windows were compared —
    /// an unchallenged candidate has no evidence of disagreement).
    pub fn agreement_pct(&self) -> f64 {
        if self.windows == 0 {
            100.0
        } else {
            self.agreements as f64 * 100.0 / self.windows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_accounting() {
        let mut s = ShadowStats::default();
        assert_eq!(s.agreement_pct(), 100.0);
        s.record(true);
        s.record(true);
        s.record(false);
        s.record(true);
        assert_eq!(s.windows, 4);
        assert_eq!(s.agreements, 3);
        assert_eq!(s.agreement_pct(), 75.0);
    }
}
