//! Property suite for the `.kmlm` artifact format.
//!
//! The lifecycle's whole safety story rests on two artifact properties, so
//! they get exhaustive randomized coverage here:
//!
//! 1. **Round-trip fidelity** — for arbitrary models (every shipped dtype,
//!    random q8-compatible topologies, optional normalizer, optional q8
//!    calibration tables), `save → load → save` is bit-identical and the
//!    reloaded model predicts identically to the original.
//! 2. **All-or-nothing load** — any single-byte corruption and any
//!    truncation is rejected with a typed [`ArtifactError`], never a panic
//!    and never a partially constructed model.

use kml_core::dataset::Normalizer;
use kml_core::fixed::Fix32;
use kml_core::matrix::Matrix;
use kml_core::model::{Model, ModelBuilder};
use kml_core::scalar::Scalar;
use kml_lifecycle::{load_model, save_model, ArtifactKind};
use proptest::prelude::*;

/// Random artifact shape: everything that varies between deployments.
#[derive(Debug, Clone)]
struct Shape {
    kind: ArtifactKind,
    hidden: Vec<(usize, bool)>, // (width, relu-instead-of-sigmoid)
    classes: usize,
    seed: u64,
    normalized: bool,
    q8: bool,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        0usize..ArtifactKind::ALL.len(),
        proptest::collection::vec((1usize..12, proptest::any::<bool>()), 0..3),
        (2usize..5, proptest::any::<u64>()),
        (proptest::any::<bool>(), proptest::any::<bool>()),
    )
        .prop_map_shape()
}

/// The vendored proptest has no `prop_map`; a tiny adapter keeps the
/// strategy composition readable.
trait ShapeMap {
    fn prop_map_shape(self) -> MappedShape<Self>
    where
        Self: Sized,
    {
        MappedShape(self)
    }
}

type RawShape = (usize, Vec<(usize, bool)>, (usize, u64), (bool, bool));

impl<S: Strategy<Value = RawShape>> ShapeMap for S {}

struct MappedShape<S>(S);

impl<S: Strategy<Value = RawShape>> Strategy for MappedShape<S> {
    type Value = Shape;
    fn sample(&self, rng: &mut rand::rngs::StdRng) -> Shape {
        let (kind_ix, hidden, (classes, seed), (normalized, q8)) = self.0.sample(rng);
        Shape {
            kind: ArtifactKind::ALL[kind_ix],
            hidden,
            classes,
            seed,
            normalized,
            q8,
        }
    }
}

/// Builds the model a `Shape` describes. Activations are restricted to
/// sigmoid/relu so every generated topology is q8-compatible.
fn build_model<S: Scalar>(shape: &Shape) -> Model<S> {
    let input_dim = shape.kind.feature_names().len();
    let mut b = ModelBuilder::new(input_dim).seed(shape.seed);
    for &(width, relu) in &shape.hidden {
        b = b.linear(width);
        b = if relu { b.relu() } else { b.sigmoid() };
    }
    let mut model = b
        .linear(shape.classes)
        .build::<S>()
        .expect("generated topology builds");
    if shape.normalized {
        // Three seed-derived rows are enough for distinct per-feature
        // means/stds without degenerate zero variance.
        let rows: Vec<Vec<f64>> = (0..3)
            .map(|r| {
                (0..input_dim)
                    .map(|c| {
                        let x = shape.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ ((r * input_dim + c) as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                        (x % 1000) as f64 / 10.0 + r as f64
                    })
                    .collect()
            })
            .collect();
        let m = Matrix::from_rows(&rows).expect("rectangular");
        model.set_normalizer(Normalizer::fit(&m).expect("non-empty"));
    }
    if shape.q8 {
        model.enable_q8().expect("sigmoid/relu chains quantize");
    }
    model
}

fn probe(input_dim: usize) -> Vec<f64> {
    (0..input_dim).map(|i| (i as f64 + 1.0) * 3.5).collect()
}

/// Round-trip one shape at one dtype: save → load → save must be
/// bit-identical, and the reloaded model must predict identically.
fn check_round_trip<S: Scalar>(shape: &Shape) -> Result<(), TestCaseError> {
    let mut original = build_model::<S>(shape);
    let bytes = match save_model(shape.kind, &mut original) {
        Ok(b) => b,
        Err(e) => return Err(TestCaseError(format!("save failed: {e}"))),
    };
    let loaded = match load_model::<S>(&bytes) {
        Ok(l) => l,
        Err(e) => return Err(TestCaseError(format!("load failed: {e}"))),
    };
    prop_assert_eq!(loaded.kind, shape.kind);
    prop_assert_eq!(&loaded.dtype, S::DTYPE);
    prop_assert_eq!(loaded.q8, shape.q8);
    let mut reloaded = loaded.model;
    prop_assert_eq!(reloaded.q8_enabled(), shape.q8);
    let again = match save_model(shape.kind, &mut reloaded) {
        Ok(b) => b,
        Err(e) => return Err(TestCaseError(format!("re-save failed: {e}"))),
    };
    prop_assert_eq!(&bytes, &again, "save→load→save not bit-identical");
    let p = probe(shape.kind.feature_names().len());
    let a = original
        .predict(&p)
        .map_err(|e| TestCaseError(e.to_string()))?;
    let b = reloaded
        .predict(&p)
        .map_err(|e| TestCaseError(e.to_string()))?;
    prop_assert_eq!(a, b, "reloaded model predicts differently");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip fidelity at f32 — the fleet's serving dtype.
    #[test]
    fn round_trip_f32(shape in shape_strategy()) {
        check_round_trip::<f32>(&shape)?;
    }

    /// Round-trip fidelity at f64 — the training dtype.
    #[test]
    fn round_trip_f64(shape in shape_strategy()) {
        check_round_trip::<f64>(&shape)?;
    }

    /// Round-trip fidelity at Fix32 — the kernel-deploy fixed-point dtype.
    #[test]
    fn round_trip_fix32(shape in shape_strategy()) {
        check_round_trip::<Fix32>(&shape)?;
    }

    /// Any single flipped byte is rejected with a typed error: the
    /// whole-artifact checksum catches every bit flip before any field is
    /// trusted, so there is no partially loaded model to observe.
    #[test]
    fn single_byte_corruption_is_rejected(
        shape in shape_strategy(),
        at in proptest::any::<u64>(),
        mask in 1u8..=255,
    ) {
        let mut model = build_model::<f32>(&shape);
        let bytes = save_model(shape.kind, &mut model)
            .map_err(|e| TestCaseError(format!("save failed: {e}")))?;
        let mut corrupt = bytes.clone();
        let i = (at as usize) % corrupt.len();
        corrupt[i] ^= mask;
        prop_assert!(
            load_model::<f32>(&corrupt).is_err(),
            "corruption at byte {} (mask {:#04x}) was accepted", i, mask
        );
    }

    /// Any truncation — including an empty buffer — is rejected with a
    /// typed error, never a panic.
    #[test]
    fn truncation_is_rejected(shape in shape_strategy(), cut in proptest::any::<u64>()) {
        let mut model = build_model::<f32>(&shape);
        let bytes = save_model(shape.kind, &mut model)
            .map_err(|e| TestCaseError(format!("save failed: {e}")))?;
        let keep = (cut as usize) % bytes.len(); // strictly shorter than full
        prop_assert!(
            load_model::<f32>(&bytes[..keep]).is_err(),
            "truncation to {} of {} bytes was accepted", keep, bytes.len()
        );
    }

    /// Appending trailing garbage is rejected: an artifact is exactly its
    /// declared bytes.
    #[test]
    fn trailing_bytes_are_rejected(shape in shape_strategy(), extra in 1usize..16) {
        let mut model = build_model::<f32>(&shape);
        let mut bytes = save_model(shape.kind, &mut model)
            .map_err(|e| TestCaseError(format!("save failed: {e}")))?;
        bytes.extend(std::iter::repeat_n(0xAAu8, extra));
        prop_assert!(load_model::<f32>(&bytes).is_err());
    }
}
