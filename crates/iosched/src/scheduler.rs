//! The simulated block-layer request scheduler.
//!
//! Requests accumulate in a staging queue; a dispatch round fires when the
//! oldest request has waited `batch_wait_ns` or the queue reaches
//! `max_batch`. Each round sorts by `(inode, page)` (one elevator sweep),
//! merges adjacent requests, and issues the merged commands to the
//! [`kernel_sim::BlockDevice`]. Completion time is the device's busy-until
//! point; per-request latency is completion − arrival.

use kernel_sim::{BlockDevice, DeviceProfile, FaultPlan, FaultStats};
use kml_telemetry::{Counter, Gauge, Histogram, Registry};

/// Telemetry handles for one scheduler (no-op until
/// [`IoScheduler::attach_telemetry`] binds them): the staged queue depth,
/// per-request latency distribution, and merge/dispatch counts.
#[derive(Debug, Default)]
struct SchedTelemetry {
    queue_depth: Gauge,
    request_latency_ns: Histogram,
    merged_total: Counter,
    dispatch_total: Counter,
}

impl SchedTelemetry {
    fn bind(registry: &Registry) -> Self {
        SchedTelemetry {
            queue_depth: registry.gauge("iosched.device.queue_depth"),
            request_latency_ns: registry.histogram("iosched.request_latency_ns"),
            merged_total: registry.counter("iosched.merged_total"),
            dispatch_total: registry.counter("iosched.dispatch_total"),
        }
    }
}

/// One block-layer request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// File the request belongs to.
    pub inode: u64,
    /// First page.
    pub page: u64,
    /// Number of pages.
    pub npages: u64,
    /// Write (true) or read (false).
    pub write: bool,
    /// Submission time, ns.
    pub arrival_ns: u64,
}

/// A finished request with its measured service latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedIo {
    /// The original request.
    pub request: IoRequest,
    /// Completion time, ns.
    pub completion_ns: u64,
    /// completion − arrival, ns.
    pub latency_ns: u64,
}

/// Tunables of the scheduler (the KML actuation point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum time a request may wait for merge partners, ns.
    pub batch_wait_ns: u64,
    /// Dispatch as soon as this many requests are staged.
    pub max_batch: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            batch_wait_ns: 200_000, // 200 µs — a deadline-ish default
            max_batch: 64,
        }
    }
}

/// Cumulative scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Requests completed.
    pub completed: u64,
    /// Requests merged away into neighbours.
    pub merged: u64,
    /// Dispatch rounds executed.
    pub dispatches: u64,
    /// Sum of all request latencies, ns.
    pub total_latency_ns: u64,
    /// Merged commands that failed at the device (injected faults). The
    /// member requests still complete — with an error, as the block layer
    /// completes bios with `BLK_STS_IOERR` — and the time the failed
    /// attempt consumed still occupies the device.
    pub io_errors: u64,
}

impl SchedStats {
    /// Mean request latency, ns (0 before any completion).
    pub fn mean_latency_ns(&self) -> u64 {
        self.total_latency_ns
            .checked_div(self.completed)
            .unwrap_or(0)
    }
}

/// The staged-dispatch scheduler.
#[derive(Debug)]
pub struct IoScheduler {
    device: BlockDevice,
    config: SchedulerConfig,
    queue: Vec<IoRequest>,
    /// The device is busy until this simulated time.
    busy_until_ns: u64,
    stats: SchedStats,
    telemetry: SchedTelemetry,
}

impl IoScheduler {
    /// Creates a scheduler over a fresh device of the given profile.
    pub fn new(profile: DeviceProfile, config: SchedulerConfig) -> Self {
        IoScheduler {
            device: BlockDevice::new(profile),
            config,
            queue: Vec::new(),
            busy_until_ns: 0,
            stats: SchedStats::default(),
            telemetry: SchedTelemetry::default(),
        }
    }

    /// Binds this scheduler's metrics (`iosched.*`) to a registry. Until
    /// called, all recording is no-op.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = SchedTelemetry::bind(registry);
    }

    /// Current configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// Re-tunes the batching window (the KML application's action).
    pub fn set_batch_wait_ns(&mut self, wait_ns: u64) {
        self.config.batch_wait_ns = wait_ns;
    }

    /// Stages a request. Dispatch happens on [`IoScheduler::drain`].
    pub fn submit(&mut self, request: IoRequest) {
        self.queue.push(request);
        self.telemetry.queue_depth.set(self.queue.len() as u64);
    }

    /// Requests currently staged.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Advances scheduler time to `now`, dispatching any round whose
    /// trigger (age or batch size) has fired; returns the completions.
    pub fn drain(&mut self, now_ns: u64) -> Vec<CompletedIo> {
        let mut done = Vec::new();
        while let Some(oldest) = self.queue.iter().map(|r| r.arrival_ns).min() {
            let age_fired = now_ns >= oldest + self.config.batch_wait_ns;
            let size_fired = self.queue.len() >= self.config.max_batch;
            if !age_fired && !size_fired {
                break;
            }
            // Dispatch time: when the trigger fired, not earlier.
            let trigger_ns = if size_fired {
                now_ns.min(oldest + self.config.batch_wait_ns)
            } else {
                oldest + self.config.batch_wait_ns
            };
            done.extend(self.dispatch_round(trigger_ns.min(now_ns)));
        }
        done
    }

    /// Forces out everything staged (end of run), as of `now`.
    pub fn flush(&mut self, now_ns: u64) -> Vec<CompletedIo> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        self.dispatch_round(now_ns)
    }

    /// Time at which the device goes idle.
    pub fn busy_until_ns(&self) -> u64 {
        self.busy_until_ns
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Attaches (or clears) a deterministic fault plan on the underlying
    /// device. See [`kernel_sim::FaultConfig`].
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.device.set_fault_plan(plan);
    }

    /// Injected-fault counts from the underlying device's plan.
    pub fn fault_stats(&self) -> FaultStats {
        self.device.fault_stats()
    }

    /// One elevator sweep: sort, merge adjacent same-direction requests,
    /// issue merged commands, assign completions.
    fn dispatch_round(&mut self, dispatch_ns: u64) -> Vec<CompletedIo> {
        let mut batch = std::mem::take(&mut self.queue);
        batch.sort_by_key(|r| (r.inode, r.page, r.arrival_ns));

        // Merge pass: group adjacent (inode, page-range, direction) runs.
        struct Merged {
            inode: u64,
            page: u64,
            npages: u64,
            write: bool,
            members: Vec<IoRequest>,
        }
        let mut merged: Vec<Merged> = Vec::new();
        for req in batch {
            match merged.last_mut() {
                Some(m)
                    if m.inode == req.inode
                        && m.write == req.write
                        && req.page <= m.page + m.npages // adjacent or overlapping
                        && req.page + req.npages > m.page =>
                {
                    let end = (m.page + m.npages).max(req.page + req.npages);
                    m.npages = end - m.page;
                    m.members.push(req);
                    self.stats.merged += 1;
                    self.telemetry.merged_total.inc();
                }
                _ => merged.push(Merged {
                    inode: req.inode,
                    page: req.page,
                    npages: req.npages,
                    write: req.write,
                    members: vec![req],
                }),
            }
        }

        // Issue merged commands back to back starting when the device frees.
        let mut start = self.busy_until_ns.max(dispatch_ns);
        let mut done = Vec::new();
        for m in merged {
            let issued = if m.write {
                self.device.write(m.inode, m.page, m.npages)
            } else {
                self.device.read(m.inode, m.page, m.npages)
            };
            let service = match issued {
                Ok(ns) => ns,
                Err(e) => {
                    // The failed attempt still held the device for `e.ns`;
                    // members complete (errored) when it gives up.
                    self.stats.io_errors += 1;
                    e.ns
                }
            };
            start += service;
            for request in m.members {
                let latency_ns = start.saturating_sub(request.arrival_ns);
                self.stats.completed += 1;
                self.stats.total_latency_ns += latency_ns;
                self.telemetry.request_latency_ns.record(latency_ns);
                done.push(CompletedIo {
                    request,
                    completion_ns: start,
                    latency_ns,
                });
            }
        }
        self.busy_until_ns = start;
        self.stats.dispatches += 1;
        self.telemetry.dispatch_total.inc();
        self.telemetry.queue_depth.set(0);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(page: u64, arrival: u64) -> IoRequest {
        IoRequest {
            inode: 1,
            page,
            npages: 4,
            write: false,
            arrival_ns: arrival,
        }
    }

    #[test]
    fn immediate_dispatch_with_zero_wait() {
        let mut s = IoScheduler::new(
            DeviceProfile::nvme(),
            SchedulerConfig {
                batch_wait_ns: 0,
                max_batch: 64,
            },
        );
        s.submit(req(0, 100));
        let done = s.drain(100);
        assert_eq!(done.len(), 1);
        assert!(done[0].latency_ns > 0); // device service time
    }

    #[test]
    fn requests_wait_for_the_batching_window() {
        let mut s = IoScheduler::new(
            DeviceProfile::nvme(),
            SchedulerConfig {
                batch_wait_ns: 1_000_000,
                max_batch: 64,
            },
        );
        s.submit(req(0, 0));
        assert!(s.drain(500_000).is_empty(), "dispatched before window");
        let done = s.drain(1_000_000);
        assert_eq!(done.len(), 1);
        // Latency includes the full wait.
        assert!(done[0].latency_ns >= 1_000_000);
    }

    #[test]
    fn full_batch_dispatches_early() {
        let mut s = IoScheduler::new(
            DeviceProfile::nvme(),
            SchedulerConfig {
                batch_wait_ns: u64::MAX / 2,
                max_batch: 4,
            },
        );
        for i in 0..4 {
            s.submit(req(i * 100, 10));
        }
        let done = s.drain(20);
        assert_eq!(done.len(), 4, "size trigger should fire");
    }

    #[test]
    fn adjacent_requests_merge_into_one_command() {
        let mut s = IoScheduler::new(
            DeviceProfile::sata_ssd(),
            SchedulerConfig {
                batch_wait_ns: 0,
                max_batch: 64,
            },
        );
        // 8 adjacent 4-page requests — one 32-page command after merging.
        for i in 0..8 {
            s.submit(req(i * 4, 0));
        }
        let done = s.drain(0);
        assert_eq!(done.len(), 8);
        assert_eq!(s.stats().merged, 7);
        let dev = |s: &IoScheduler| s.stats().dispatches;
        assert_eq!(dev(&s), 1);
    }

    #[test]
    fn merging_amortizes_device_base_cost() {
        let run = |wait: u64, arrivals_spread: u64| {
            let mut s = IoScheduler::new(
                DeviceProfile::sata_ssd(),
                SchedulerConfig {
                    batch_wait_ns: wait,
                    max_batch: 1024,
                },
            );
            // A burst of 32 adjacent requests arriving over `spread` ns,
            // drained as they arrive (the open-loop semantics).
            let mut done = Vec::new();
            for i in 0..32u64 {
                let arrival = i * arrivals_spread / 32;
                s.submit(req(i * 4, arrival));
                done.extend(s.drain(arrival));
            }
            done.extend(s.drain(arrivals_spread + wait + 1));
            done.extend(s.flush(arrivals_spread + wait + 1));
            assert_eq!(done.len(), 32);
            s.busy_until_ns()
        };
        // Waiting to merge finishes the whole burst sooner than eager
        // dispatch of 32 separate commands.
        let eager_finish = run(0, 100_000);
        let patient_finish = run(150_000, 100_000);
        assert!(
            patient_finish < eager_finish,
            "patient {patient_finish} !< eager {eager_finish}"
        );
    }

    #[test]
    fn different_direction_requests_do_not_merge() {
        let mut s = IoScheduler::new(
            DeviceProfile::nvme(),
            SchedulerConfig {
                batch_wait_ns: 0,
                max_batch: 64,
            },
        );
        s.submit(IoRequest {
            inode: 1,
            page: 0,
            npages: 4,
            write: false,
            arrival_ns: 0,
        });
        s.submit(IoRequest {
            inode: 1,
            page: 4,
            npages: 4,
            write: true,
            arrival_ns: 0,
        });
        s.drain(0);
        assert_eq!(s.stats().merged, 0);
    }

    #[test]
    fn flush_forces_out_stragglers() {
        let mut s = IoScheduler::new(
            DeviceProfile::nvme(),
            SchedulerConfig {
                batch_wait_ns: u64::MAX / 2,
                max_batch: 1024,
            },
        );
        s.submit(req(0, 0));
        assert!(s.drain(1_000).is_empty());
        let done = s.flush(1_000);
        assert_eq!(done.len(), 1);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn stats_track_latency() {
        let mut s = IoScheduler::new(DeviceProfile::nvme(), SchedulerConfig::default());
        s.submit(req(0, 0));
        s.drain(10_000_000);
        let st = s.stats();
        assert_eq!(st.completed, 1);
        assert!(st.mean_latency_ns() > 0);
    }

    #[test]
    fn telemetry_mirrors_sched_stats() {
        let reg = Registry::new();
        let mut s = IoScheduler::new(
            DeviceProfile::sata_ssd(),
            SchedulerConfig {
                batch_wait_ns: 0,
                max_batch: 64,
            },
        );
        s.attach_telemetry(&reg);
        for i in 0..8 {
            s.submit(req(i * 4, 0));
        }
        s.drain(0);
        let st = s.stats();
        if reg.is_enabled() {
            let snap = reg.snapshot();
            let lat = snap.histogram("iosched.request_latency_ns").unwrap();
            assert_eq!(lat.count, st.completed);
            assert_eq!(lat.sum, st.total_latency_ns);
            assert_eq!(snap.counter("iosched.merged_total"), Some(st.merged));
            assert_eq!(snap.counter("iosched.dispatch_total"), Some(st.dispatches));
            // Everything dispatched: depth back to zero.
            assert_eq!(snap.gauge("iosched.device.queue_depth"), Some(0));
        }
    }
}
