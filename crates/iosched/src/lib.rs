//! # iosched — the second KML use case (paper §6 future work)
//!
//! "We plan to apply KML to other storage subsystems: e.g., I/O
//! schedulers..." This crate does exactly that, reusing every KML building
//! block the readahead case study uses — the lock-free collection path, the
//! feature/normalization pipeline, the classifier, the closed actuation
//! loop — against a different kernel component: the block-layer **request
//! scheduler**, whose *batching window* is the tunable.
//!
//! ## The knob and the trade-off
//!
//! An anticipatory scheduler may hold submitted requests for up to
//! `batch_wait_ns` hoping to merge adjacent ones into fewer, larger device
//! commands (an elevator pass over the queue). For **mergeable burst**
//! traffic (scattered writeback, scans split across threads) waiting wins:
//! merged requests amortize the per-command base cost. For **dependent
//! random** traffic (a synchronous reader issuing one request at a time)
//! waiting is pure added latency — nothing arrives to merge with.
//! No single window wins everywhere: the same shape of problem as
//! readahead, solved with the same framework.
//!
//! ## Example
//!
//! ```
//! use iosched::{IoScheduler, SchedulerConfig, IoRequest};
//! use kernel_sim::DeviceProfile;
//!
//! let mut sched = IoScheduler::new(DeviceProfile::sata_ssd(), SchedulerConfig {
//!     batch_wait_ns: 0, // dispatch immediately
//!     max_batch: 32,
//! });
//! sched.submit(IoRequest { inode: 1, page: 0, npages: 4, write: false, arrival_ns: 0 });
//! let done = sched.drain(1_000_000);
//! assert_eq!(done.len(), 1);
//! ```

pub mod scheduler;
pub mod tuner;
pub mod workload;

pub use scheduler::{CompletedIo, IoRequest, IoScheduler, SchedStats, SchedulerConfig};
pub use tuner::{SchedFeatures, SchedTuner};
pub use workload::{run_sched_workload, SchedWorkload, SchedWorkloadReport};
