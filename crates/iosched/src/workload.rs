//! Block-layer traffic generators for the scheduler case study.
//!
//! Two antagonistic patterns create the tuning dilemma:
//!
//! - [`SchedWorkload::DependentRandom`] — a synchronous client with one
//!   outstanding request: submit, wait for completion, think, repeat.
//!   Any batching wait is pure added latency.
//! - [`SchedWorkload::MergeableBurst`] — periodic bursts of adjacent (but
//!   out-of-order) requests, e.g. writeback or a multi-threaded scan.
//!   Waiting lets the elevator merge the burst into few large commands.
//!
//! A third, [`SchedWorkload::Phased`], alternates between the two so the
//! closed loop has something to adapt *to*.

use crate::scheduler::{IoRequest, IoScheduler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Traffic patterns for the scheduler experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedWorkload {
    /// Synchronous random reader, one outstanding request.
    DependentRandom,
    /// Periodic bursts of adjacent, shuffled requests.
    MergeableBurst,
    /// Alternates between the two every `phase_requests` requests.
    Phased,
}

impl SchedWorkload {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedWorkload::DependentRandom => "dependent_random",
            SchedWorkload::MergeableBurst => "mergeable_burst",
            SchedWorkload::Phased => "phased",
        }
    }
}

impl std::fmt::Display for SchedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of one scheduler-workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedWorkloadReport {
    /// Requests completed.
    pub completed: u64,
    /// Total simulated time, ns.
    pub elapsed_ns: u64,
    /// Requests per simulated second.
    pub requests_per_sec: f64,
    /// Mean per-request latency, ns.
    pub mean_latency_ns: u64,
}

/// Drives `workload` for `total_requests` requests against `sched`,
/// invoking `on_request` for every submitted request (the KML hook).
/// Returns throughput and latency.
pub fn run_sched_workload(
    sched: &mut IoScheduler,
    workload: SchedWorkload,
    total_requests: u64,
    seed: u64,
    mut on_request: impl FnMut(&mut IoScheduler, &IoRequest, u64),
) -> SchedWorkloadReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now: u64 = 0;
    let mut submitted = 0u64;
    let start_completed = sched.stats().completed;
    let start_latency = sched.stats().total_latency_ns;

    let file_pages: u64 = 1 << 22;
    let mut phase_burst = false;
    while submitted < total_requests {
        let burst_mode = match workload {
            SchedWorkload::DependentRandom => false,
            SchedWorkload::MergeableBurst => true,
            SchedWorkload::Phased => {
                // Swap phases every 512 requests.
                if submitted.is_multiple_of(512) {
                    phase_burst = (submitted / 512) % 2 == 1;
                }
                phase_burst
            }
        };
        if burst_mode {
            // A burst: 32 adjacent 4-page requests in shuffled order,
            // arriving over 50 µs.
            let base = (rng.gen_range(0..file_pages / 256)) * 128;
            let mut order: Vec<u64> = (0..32).collect();
            order.shuffle(&mut rng);
            for (k, idx) in order.into_iter().enumerate() {
                let req = IoRequest {
                    inode: 1,
                    page: base + idx * 4,
                    npages: 4,
                    write: false,
                    arrival_ns: now + k as u64 * 1_500,
                };
                sched.submit(req);
                on_request(sched, &req, req.arrival_ns);
                submitted += 1;
                // Open-loop arrivals: the scheduler sees each request as it
                // lands, so an eager (zero-wait) config dispatches singles
                // while a patient one accumulates the burst.
                sched.drain(req.arrival_ns);
            }
            now += 50_000;
            sched.drain(now);
            // Idle gap until the next burst (lets the window trigger fire).
            now = now.max(sched.busy_until_ns());
            sched.drain(now);
            now += 100_000;
            sched.drain(now);
        } else {
            // Synchronous client: submit one random request and block on it.
            let req = IoRequest {
                inode: 1,
                page: rng.gen_range(0..file_pages / 4) * 4,
                npages: 4,
                write: false,
                arrival_ns: now,
            };
            sched.submit(req);
            on_request(sched, &req, now);
            submitted += 1;
            // Wait until this request completes (wait window + service).
            let mut guard = 0;
            loop {
                let done = sched.drain(now);
                if done.iter().any(|c| c.request == req) {
                    now = now.max(done.iter().map(|c| c.completion_ns).max().unwrap_or(now));
                    break;
                }
                // Jump to the next trigger point.
                now += sched.config().batch_wait_ns.max(1_000);
                guard += 1;
                assert!(guard < 10_000, "request never completed");
            }
            now += 2_000; // client think time
        }
    }
    let done = sched.flush(now);
    now = now.max(done.iter().map(|c| c.completion_ns).max().unwrap_or(now));

    let completed = sched.stats().completed - start_completed;
    let latency = sched.stats().total_latency_ns - start_latency;
    SchedWorkloadReport {
        completed,
        elapsed_ns: now,
        requests_per_sec: if now == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / now as f64
        },
        mean_latency_ns: latency.checked_div(completed).unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use kernel_sim::DeviceProfile;

    fn run(workload: SchedWorkload, wait_ns: u64) -> SchedWorkloadReport {
        let mut sched = IoScheduler::new(
            DeviceProfile::sata_ssd(),
            SchedulerConfig {
                batch_wait_ns: wait_ns,
                max_batch: 256,
            },
        );
        run_sched_workload(&mut sched, workload, 2_048, 7, |_, _, _| {})
    }

    #[test]
    fn dependent_random_prefers_zero_wait() {
        let eager = run(SchedWorkload::DependentRandom, 0);
        let patient = run(SchedWorkload::DependentRandom, 300_000);
        assert!(
            eager.requests_per_sec > 1.5 * patient.requests_per_sec,
            "eager {:.0} vs patient {:.0}",
            eager.requests_per_sec,
            patient.requests_per_sec
        );
        assert!(eager.mean_latency_ns < patient.mean_latency_ns);
    }

    #[test]
    fn mergeable_burst_prefers_a_window() {
        let eager = run(SchedWorkload::MergeableBurst, 0);
        let patient = run(SchedWorkload::MergeableBurst, 100_000);
        assert!(
            patient.requests_per_sec > 1.1 * eager.requests_per_sec,
            "patient {:.0} vs eager {:.0}",
            patient.requests_per_sec,
            eager.requests_per_sec
        );
    }

    #[test]
    fn no_single_wait_wins_everywhere() {
        // The scheduler version of the paper's readahead observation.
        let best_for_random = [0u64, 100_000, 300_000]
            .into_iter()
            .max_by(|&a, &b| {
                run(SchedWorkload::DependentRandom, a)
                    .requests_per_sec
                    .total_cmp(&run(SchedWorkload::DependentRandom, b).requests_per_sec)
            })
            .expect("non-empty");
        let best_for_burst = [0u64, 100_000, 300_000]
            .into_iter()
            .max_by(|&a, &b| {
                run(SchedWorkload::MergeableBurst, a)
                    .requests_per_sec
                    .total_cmp(&run(SchedWorkload::MergeableBurst, b).requests_per_sec)
            })
            .expect("non-empty");
        assert_ne!(best_for_random, best_for_burst);
        assert_eq!(best_for_random, 0);
        assert!(best_for_burst > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(SchedWorkload::Phased, 50_000);
        let b = run(SchedWorkload::Phased, 50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn all_requests_complete() {
        for w in [
            SchedWorkload::DependentRandom,
            SchedWorkload::MergeableBurst,
            SchedWorkload::Phased,
        ] {
            let report = run(w, 100_000);
            assert_eq!(report.completed, 2_048, "{w}: lost requests");
        }
    }
}
