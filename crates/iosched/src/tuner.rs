//! The KML application for the scheduler: observe the request stream,
//! classify the traffic pattern, actuate the batching window.
//!
//! Exactly the Figure 1 loop, at a different layer of the stack. Features
//! are computed per window from the arrival stream (the scheduler-side
//! equivalents of the readahead features):
//!
//! 1. request count,
//! 2. mean inter-arrival gap (ns),
//! 3. adjacency fraction — requests contiguous with the previous one by
//!    sector order (the mergeability signal),
//! 4. mean queue depth at submission (burstiness).

use crate::scheduler::{IoRequest, IoScheduler};
use kml_collect::featurize::{Channel, WindowedFeatures};
use kml_core::dataset::{Dataset, Normalizer};
use kml_core::loss::CrossEntropyLoss;
use kml_core::model::{Model, ModelBuilder};
use kml_core::optimizer::Sgd;
use kml_core::{KmlRng, Result};
use kml_lifecycle::{ArtifactError, ArtifactKind, LifecycleTarget, ShadowStats};
use rand::SeedableRng;

/// Number of scheduler features.
pub const NUM_SCHED_FEATURES: usize = 4;

/// Streaming feature extractor over the request-arrival stream.
#[derive(Debug, Clone)]
pub struct SchedFeatures {
    /// Shared window engine: channel 0 is the inter-arrival gap (last
    /// arrival persists across windows), channel 1 the adjacency count,
    /// channel 2 the queue-depth sum.
    windows: WindowedFeatures,
    /// Sector-locality state for the adjacency signal; persists across
    /// windows like the last arrival does.
    last_end: Option<(u64, u64)>,
}

/// Channel index of the inter-arrival gap accumulator.
const CH_GAP: usize = 0;
/// Channel index of the adjacency count.
const CH_ADJACENT: usize = 1;
/// Channel index of the queue-depth sum.
const CH_DEPTH: usize = 2;

impl Default for SchedFeatures {
    fn default() -> Self {
        SchedFeatures {
            windows: WindowedFeatures::new(vec![
                Channel::persistent_gap(),
                Channel::window_sum(),
                Channel::window_sum(),
            ]),
            last_end: None,
        }
    }
}

impl SchedFeatures {
    /// Creates an empty extractor.
    pub fn new() -> Self {
        SchedFeatures::default()
    }

    /// Folds one submitted request (with the queue depth at submission).
    pub fn push(&mut self, req: &IoRequest, queue_depth: usize) {
        self.windows.push_u64(CH_GAP, req.arrival_ns);
        if let Some((inode, end)) = self.last_end {
            // Local in either direction counts: the elevator will sort and
            // merge anything within one burst span.
            const LOCALITY_PAGES: u64 = 256;
            if inode == req.inode && req.page.abs_diff(end) <= LOCALITY_PAGES {
                self.windows.push_u64(CH_ADJACENT, 1);
            }
        }
        self.last_end = Some((req.inode, req.page + req.npages));
        self.windows.push_u64(CH_DEPTH, queue_depth as u64);
        self.windows.record();
    }

    /// Requests folded into the current window.
    pub fn count(&self) -> u64 {
        self.windows.window_count()
    }

    /// Closes the window and returns `[count, mean_gap, adjacency, depth]`.
    pub fn roll_window(&mut self) -> [f64; NUM_SCHED_FEATURES] {
        let features = [
            self.windows.window_count() as f64,
            self.windows.mean(CH_GAP),
            self.windows.mean(CH_ADJACENT),
            self.windows.mean(CH_DEPTH),
        ];
        self.windows.roll();
        features
    }
}

/// The trained scheduler tuner: classifier + class → batch-wait policy.
#[derive(Debug)]
pub struct SchedTuner {
    /// `None` when inference is served remotely by the fleet's shared
    /// batched model server (see [`Self::remote`]).
    model: Option<Model<f32>>,
    /// Batch wait per class: 0 = latency-sensitive, 1 = mergeable.
    policy_ns: [u64; 2],
    features: SchedFeatures,
    window_requests: u64,
    decisions: Vec<(u64, usize, u64, u64)>,
    /// Generation of the active model (1 until the first lifecycle swap).
    model_generation: u64,
    /// Staged shadow candidate: infers on every window, never actuates.
    shadow: Option<Model<f32>>,
    shadow_stats: ShadowStats,
    /// The shadow's prediction for the window most recently returned by
    /// [`SchedTuner::poll_request`], folded into the agreement stats by
    /// the matching [`SchedTuner::apply_class`].
    pending_shadow_class: Option<usize>,
}

impl SchedTuner {
    /// Requests per inference window (count-based, since the scheduler has
    /// no global clock hook).
    pub const WINDOW_REQUESTS: u64 = 128;

    /// Trains the classifier from synthetic labeled windows of the two
    /// traffic patterns and returns the deployed f32 network (round-tripped
    /// through the model file, like the readahead model).
    ///
    /// # Errors
    ///
    /// Propagates dataset/training errors.
    pub fn train_model(seed: u64) -> Result<Model<f32>> {
        let data = Self::training_windows(seed)?;
        let mut model = ModelBuilder::new(NUM_SCHED_FEATURES)
            .linear(10)
            .sigmoid()
            .linear(2)
            .seed(seed)
            .build::<f64>()?;
        // Byte-identical at any worker count; engages only on 64+-row batches.
        model.set_train_workers(kml_platform::threading::default_workers());
        model.set_normalizer(Normalizer::fit(data.features())?);
        let mut sgd = Sgd::new(0.05, 0.9);
        let mut rng = KmlRng::seed_from_u64(seed ^ 0x10);
        for _ in 0..200 {
            model.train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)?;
        }
        let bytes = kml_core::modelfile::encode(&model)?;
        kml_core::modelfile::decode::<f32>(&bytes)
    }

    /// Trains the classifier and wraps it with the policy.
    ///
    /// # Errors
    ///
    /// Propagates dataset/training errors.
    pub fn train(policy_ns: [u64; 2], seed: u64) -> Result<SchedTuner> {
        Ok(Self::with_model(Self::train_model(seed)?, policy_ns))
    }

    /// Wraps an already-trained classifier with the policy.
    pub fn with_model(model: Model<f32>, policy_ns: [u64; 2]) -> SchedTuner {
        SchedTuner {
            model: Some(model),
            policy_ns,
            features: SchedFeatures::new(),
            window_requests: 0,
            decisions: Vec::new(),
            model_generation: 1,
            shadow: None,
            shadow_stats: ShadowStats::default(),
            pending_shadow_class: None,
        }
    }

    /// A tuner with no local model: inference is served by the fleet's
    /// shared model server, which drives [`Self::poll_request`] /
    /// [`Self::apply_class`] directly. Calling [`Self::on_request`] on a
    /// remote tuner is a deployment error.
    pub fn remote(policy_ns: [u64; 2]) -> SchedTuner {
        SchedTuner {
            model: None,
            policy_ns,
            features: SchedFeatures::new(),
            window_requests: 0,
            decisions: Vec::new(),
            model_generation: 1,
            shadow: None,
            shadow_stats: ShadowStats::default(),
            pending_shadow_class: None,
        }
    }

    /// Generates labeled feature windows by running both traffic patterns
    /// against a throwaway scheduler.
    fn training_windows(seed: u64) -> Result<Dataset> {
        use crate::scheduler::SchedulerConfig;
        use crate::workload::{run_sched_workload, SchedWorkload};
        use kernel_sim::DeviceProfile;

        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (class, workload) in [
            SchedWorkload::DependentRandom,
            SchedWorkload::MergeableBurst,
        ]
        .into_iter()
        .enumerate()
        {
            for run_seed in [seed, seed + 1] {
                let mut sched =
                    IoScheduler::new(DeviceProfile::sata_ssd(), SchedulerConfig::default());
                let mut fx = SchedFeatures::new();
                let mut in_window = 0u64;
                run_sched_workload(&mut sched, workload, 2_048, run_seed, |s, req, _| {
                    fx.push(req, s.queued());
                    in_window += 1;
                    if in_window >= Self::WINDOW_REQUESTS {
                        rows.push(fx.roll_window().to_vec());
                        labels.push(class);
                        in_window = 0;
                    }
                });
            }
        }
        Dataset::from_rows(&rows, &labels)
    }

    /// The per-request hook: folds features and, once per window, infers
    /// and re-tunes the batching window.
    ///
    /// # Errors
    ///
    /// Propagates model prediction failures, and rejects local inference
    /// on a [`Self::remote`] tuner.
    pub fn on_request(
        &mut self,
        sched: &mut IoScheduler,
        req: &IoRequest,
        now_ns: u64,
    ) -> Result<()> {
        if let Some(features) = self.poll_request(sched, req) {
            let model = self.model.as_mut().ok_or_else(|| {
                kml_core::KmlError::InvalidConfig("remote-served tuner has no local model".into())
            })?;
            let class = model.predict(&features)?;
            self.apply_class(sched, now_ns, class);
        }
        Ok(())
    }

    /// Folds one request and, when the count-based window fills, rolls and
    /// returns the window's feature vector.
    ///
    /// The inference-free half of [`Self::on_request`]: the fleet's shared
    /// model server batches the returned vectors across tenants and routes
    /// each prediction back through [`Self::apply_class`]. Nothing observes
    /// the scheduler between the two calls, so the split loop is
    /// bit-identical to the fused one.
    pub fn poll_request(
        &mut self,
        sched: &IoScheduler,
        req: &IoRequest,
    ) -> Option<[f64; NUM_SCHED_FEATURES]> {
        self.features.push(req, sched.queued());
        self.window_requests += 1;
        if self.window_requests < Self::WINDOW_REQUESTS {
            return None;
        }
        self.window_requests = 0;
        let features = self.features.roll_window();
        if let Some(shadow) = &mut self.shadow {
            // Shadow inference on the exact window the active model will
            // see; the prediction is only recorded, never actuated.
            match shadow.predict(&features) {
                Ok(class) => self.pending_shadow_class = Some(class),
                Err(_) => {
                    self.shadow_stats.errors += 1;
                    self.pending_shadow_class = None;
                }
            }
        }
        Some(features)
    }

    /// Applies a predicted class for the window most recently returned by
    /// [`Self::poll_request`]: re-tunes the batching window and logs the
    /// decision.
    pub fn apply_class(&mut self, sched: &mut IoScheduler, now_ns: u64, class: usize) {
        if self.shadow.is_some() {
            if let Some(shadow_class) = self.pending_shadow_class.take() {
                self.shadow_stats.record(shadow_class == class);
            }
        }
        let wait = self.policy_ns[class.min(1)];
        sched.set_batch_wait_ns(wait);
        self.decisions
            .push((now_ns, class, wait, self.model_generation));
    }

    /// The decision log `(time_ns, class, batch_wait_ns, generation)`.
    pub fn decisions(&self) -> &[(u64, usize, u64, u64)] {
        &self.decisions
    }

    /// Replaces the active model under an explicit generation tag.
    pub fn swap_model(&mut self, model: Model<f32>, generation: u64) {
        self.model = Some(model);
        self.model_generation = generation;
    }

    /// Stages a shadow candidate (replacing any previous one and resetting
    /// its stats). The active model and the batching window are untouched.
    pub fn stage_shadow_model(&mut self, model: Model<f32>) {
        self.shadow = Some(model);
        self.shadow_stats = ShadowStats::default();
        self.pending_shadow_class = None;
    }

    /// Whether a shadow candidate is staged.
    pub fn shadow_staged(&self) -> bool {
        self.shadow.is_some()
    }

    /// The active model's generation tag.
    pub fn model_generation(&self) -> u64 {
        self.model_generation
    }

    /// Decodes an iosched `.kmlm` artifact into a deployable model,
    /// cross-checking its class count against this tuner's policy.
    fn decode_artifact(&self, bytes: &[u8]) -> std::result::Result<Model<f32>, ArtifactError> {
        let loaded = kml_lifecycle::load_model_for::<f32>(bytes, ArtifactKind::Iosched)?;
        if loaded.model.output_dim() != self.policy_ns.len() {
            return Err(ArtifactError::ClassMismatch {
                artifact: loaded.model.output_dim(),
                policy: self.policy_ns.len(),
            });
        }
        Ok(loaded.model)
    }
}

impl LifecycleTarget for SchedTuner {
    /// Atomic by construction: the artifact is fully decoded and verified
    /// before any tuner state changes; a failed load leaves the model, the
    /// generation, and the batching window exactly as they were.
    fn install_artifact(
        &mut self,
        bytes: &[u8],
        generation: u64,
    ) -> std::result::Result<(), ArtifactError> {
        let model = self.decode_artifact(bytes)?;
        self.swap_model(model, generation);
        Ok(())
    }

    fn stage_shadow_artifact(&mut self, bytes: &[u8]) -> std::result::Result<(), ArtifactError> {
        let model = self.decode_artifact(bytes)?;
        self.stage_shadow_model(model);
        Ok(())
    }

    fn clear_shadow(&mut self) {
        self.shadow = None;
        self.shadow_stats = ShadowStats::default();
        self.pending_shadow_class = None;
    }

    fn generation(&self) -> u64 {
        self.model_generation
    }

    fn shadow_stats(&self) -> ShadowStats {
        self.shadow_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use crate::workload::{run_sched_workload, SchedWorkload, SchedWorkloadReport};
    use kernel_sim::DeviceProfile;

    #[test]
    fn features_separate_the_two_patterns() {
        let collect = |workload| {
            let mut sched = IoScheduler::new(DeviceProfile::sata_ssd(), SchedulerConfig::default());
            let mut fx = SchedFeatures::new();
            let mut windows: Vec<[f64; 4]> = Vec::new();
            run_sched_workload(&mut sched, workload, 1_024, 3, |s, req, _| {
                fx.push(req, s.queued());
                if fx.count() >= 128 {
                    windows.push(fx.roll_window());
                }
            });
            windows
        };
        let random = collect(SchedWorkload::DependentRandom);
        let burst = collect(SchedWorkload::MergeableBurst);
        assert!(!random.is_empty() && !burst.is_empty());
        let adj = |ws: &[[f64; 4]]| ws.iter().map(|w| w[2]).sum::<f64>() / ws.len() as f64;
        let depth = |ws: &[[f64; 4]]| ws.iter().map(|w| w[3]).sum::<f64>() / ws.len() as f64;
        assert!(
            adj(&burst) > adj(&random) + 0.2,
            "adjacency: burst {:.2} vs random {:.2}",
            adj(&burst),
            adj(&random)
        );
        assert!(depth(&burst) > depth(&random));
    }

    fn tuned_run(workload: SchedWorkload) -> SchedWorkloadReport {
        let mut sched = IoScheduler::new(DeviceProfile::sata_ssd(), SchedulerConfig::default());
        let mut tuner = SchedTuner::train([0, 150_000], 5).expect("training succeeds");
        run_sched_workload(&mut sched, workload, 4_096, 11, |s, req, now| {
            tuner.on_request(s, req, now).expect("tuner survives");
        })
    }

    fn static_run(workload: SchedWorkload, wait: u64) -> SchedWorkloadReport {
        let mut sched = IoScheduler::new(
            DeviceProfile::sata_ssd(),
            SchedulerConfig {
                batch_wait_ns: wait,
                max_batch: 256,
            },
        );
        run_sched_workload(&mut sched, workload, 4_096, 11, |_, _, _| {})
    }

    /// The inline featurization this module used before the shared
    /// `kml_collect::featurize` engine existed, kept verbatim as the parity
    /// reference for the refactor.
    #[derive(Default)]
    struct LegacySchedFeatures {
        count: u64,
        last_arrival: Option<u64>,
        gap_sum: u64,
        last_end: Option<(u64, u64)>,
        adjacent: u64,
        depth_sum: u64,
    }

    impl LegacySchedFeatures {
        fn push(&mut self, req: &IoRequest, queue_depth: usize) {
            if let Some(last) = self.last_arrival {
                self.gap_sum += req.arrival_ns.saturating_sub(last);
            }
            self.last_arrival = Some(req.arrival_ns);
            if let Some((inode, end)) = self.last_end {
                const LOCALITY_PAGES: u64 = 256;
                if inode == req.inode && req.page.abs_diff(end) <= LOCALITY_PAGES {
                    self.adjacent += 1;
                }
            }
            self.last_end = Some((req.inode, req.page + req.npages));
            self.depth_sum += queue_depth as u64;
            self.count += 1;
        }

        fn roll_window(&mut self) -> [f64; NUM_SCHED_FEATURES] {
            let n = self.count.max(1) as f64;
            let features = [
                self.count as f64,
                self.gap_sum as f64 / (self.count.saturating_sub(1).max(1)) as f64,
                self.adjacent as f64 / n,
                self.depth_sum as f64 / n,
            ];
            *self = LegacySchedFeatures {
                last_arrival: self.last_arrival,
                last_end: self.last_end,
                ..LegacySchedFeatures::default()
            };
            features
        }
    }

    #[test]
    fn shared_engine_is_bit_identical_to_the_legacy_inline_featurization() {
        let mut new = SchedFeatures::new();
        let mut old = LegacySchedFeatures::default();
        let mut x = 0x5EEDu64;
        let mut now = 0u64;
        for window in 0..40u64 {
            let n = (window * 11) % 17; // includes empty windows
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                now += x % 50_000;
                let req = IoRequest {
                    inode: 1 + x % 3,
                    page: (x >> 8) % 100_000,
                    npages: 1 + x % 8,
                    write: x & 1 == 0,
                    arrival_ns: now,
                };
                let depth = (x >> 16) as usize % 64;
                new.push(&req, depth);
                old.push(&req, depth);
            }
            let f_new = new.roll_window();
            let f_old = old.roll_window();
            for k in 0..NUM_SCHED_FEATURES {
                assert_eq!(
                    f_new[k].to_bits(),
                    f_old[k].to_bits(),
                    "feature {k} diverged in window {window}: {} vs {}",
                    f_new[k],
                    f_old[k]
                );
            }
        }
    }

    #[test]
    fn tuned_scheduler_tracks_the_best_static_config_per_pattern() {
        for workload in [
            SchedWorkload::DependentRandom,
            SchedWorkload::MergeableBurst,
        ] {
            let tuned = tuned_run(workload);
            let best_static = [0u64, 150_000]
                .into_iter()
                .map(|w| static_run(workload, w).requests_per_sec)
                .fold(f64::MIN, f64::max);
            assert!(
                tuned.requests_per_sec > 0.85 * best_static,
                "{workload}: tuned {:.0} vs best static {:.0}",
                tuned.requests_per_sec,
                best_static
            );
        }
    }

    #[test]
    fn tuned_scheduler_beats_both_static_configs_on_phased_traffic() {
        // The adaptive story: when the pattern alternates, neither static
        // setting can win both phases.
        let tuned = tuned_run(SchedWorkload::Phased);
        let eager = static_run(SchedWorkload::Phased, 0);
        let patient = static_run(SchedWorkload::Phased, 150_000);
        assert!(
            tuned.requests_per_sec >= eager.requests_per_sec.min(patient.requests_per_sec),
            "tuned {:.0} vs eager {:.0} / patient {:.0}",
            tuned.requests_per_sec,
            eager.requests_per_sec,
            patient.requests_per_sec
        );
    }
}
