//! # kml-continual — closed-loop online learning for the KML stack
//!
//! The paper's workflow is "train offline for minutes → deploy →
//! hot-swap"; `kml-lifecycle` (PR 8) built the deploy half. This crate
//! closes the loop so no operator sits in it:
//!
//! * [`drift::DriftDetector`] — per-channel distribution sketches over
//!   the live window stream with a z-score divergence and K-consecutive
//!   block hysteresis: a *sustained* feature-distribution shift is the
//!   retrain trigger, noise never is. On trigger it re-baselines, so
//!   one shift fires exactly once.
//! * [`reservoir::Reservoir`] — seeded bottom-k priority sampling over
//!   the window stream. The kept training set is a pure function of
//!   `(seed, ids seen)`: byte-identical at any `--threads`, mergeable
//!   across shards, order-independent.
//! * [`retrain`] — a deterministic reservoir→`.kmlm` candidate trainer,
//!   hosted either inline or on the existing `AsyncTrainer` machinery
//!   ([`retrain::BackgroundRetrainer`]), bit-identical either way.
//! * [`controller::ContinualController`] — the state machine: window →
//!   reservoir + drift → (on trigger) retrain + stage as lifecycle
//!   shadow → watchdog promotes after K clean windows or the candidate
//!   is discarded on regression. A candidate **never** actuates before
//!   promotion.
//!
//! The loop plugs into anything implementing
//! `kml_lifecycle::LifecycleTarget` — the readahead `KmlTuner`, the
//! netfs `RsizeTuner`, and the fleet `InferenceServer` lanes.

#![warn(missing_docs)]

pub mod controller;
pub mod drift;
pub mod reservoir;
pub mod retrain;

pub use controller::{
    ContinualConfig, ContinualController, ContinualError, ContinualEvent, ContinualRecord,
    RetrainMode, WindowOutcome, DRIFT_CHANNELS,
};
pub use drift::{DriftConfig, DriftDetector};
pub use reservoir::{Reservoir, ReservoirSample, RESERVOIR_DIM};
pub use retrain::{train_candidate, BackgroundRetrainer, RetrainSpec};
