//! The training-data reservoir: seeded deterministic sampling over the
//! live window stream.
//!
//! Classic Algorithm R keeps a uniform sample but its contents depend on
//! the order items arrive — useless here, where the same logical stream
//! may be ingested by different worker interleavings and the result must
//! still be byte-identical at any `--threads`. This reservoir uses
//! **bottom-k priority sampling** instead: every sample gets a priority
//! `splitmix64(seed ⊕ mix(id))` from its unique deterministic id (the
//! window sequence number), and the reservoir keeps the `k` smallest
//! `(priority, id)` pairs. The kept set is a pure function of
//! `(seed, {ids})` — independent of ingestion order, mergeable across
//! shards, and uniform over the ids seen (each id's priority is an
//! independent uniform draw, so the k smallest are a uniform k-subset).

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Feature width every reservoir sample carries — the shared window width
/// of all three deployed loops (readahead, iosched pads, netfs rsize).
pub const RESERVOIR_DIM: usize = 5;

/// One retained training sample: a window's feature vector plus the
/// deterministic label the heuristic oracle assigned it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReservoirSample {
    /// Unique deterministic sample id (the window sequence number).
    pub id: u64,
    /// `splitmix64(seed ⊕ mix(id))` — the bottom-k sort key.
    pub priority: u64,
    /// The window's feature vector.
    pub features: [f64; RESERVOIR_DIM],
    /// Training label from the deterministic heuristic oracle.
    pub label: usize,
}

/// A seeded bottom-k priority-sampling reservoir. See the module docs.
#[derive(Debug, Clone)]
pub struct Reservoir {
    seed: u64,
    capacity: usize,
    seen: u64,
    /// Kept samples, sorted ascending by `(priority, id)`.
    samples: Vec<ReservoirSample>,
}

impl Reservoir {
    /// An empty reservoir keeping at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity — a reservoir that can keep nothing is a
    /// configuration bug, not a runtime condition.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(
            capacity > 0,
            "reservoir needs capacity for at least one sample"
        );
        Reservoir {
            seed,
            capacity,
            seen: 0,
            samples: Vec::with_capacity(capacity.min(4096)),
        }
    }

    /// The priority `id` would sample under this reservoir's seed.
    pub fn priority_of(&self, id: u64) -> u64 {
        splitmix(self.seed ^ splitmix(id))
    }

    /// Offers one sample. Returns whether it is retained (a duplicate id
    /// is never double-counted: re-offering an id the reservoir already
    /// holds is a no-op so shard replays cannot skew the sample).
    pub fn offer(&mut self, id: u64, features: [f64; RESERVOIR_DIM], label: usize) -> bool {
        self.seen += 1;
        let priority = self.priority_of(id);
        let key = (priority, id);
        let pos = self
            .samples
            .binary_search_by_key(&key, |s| (s.priority, s.id));
        let pos = match pos {
            Ok(_) => return false, // already held
            Err(pos) => pos,
        };
        if self.samples.len() == self.capacity {
            if pos == self.capacity {
                return false; // larger than everything kept
            }
            self.samples.pop();
        }
        self.samples.insert(
            pos,
            ReservoirSample {
                id,
                priority,
                features,
                label,
            },
        );
        true
    }

    /// Merges another reservoir (same seed, same capacity) into this one,
    /// keeping the k smallest priorities of the union — exactly what one
    /// reservoir fed both streams would hold.
    pub fn merge(&mut self, other: &Reservoir) {
        debug_assert_eq!(
            self.seed, other.seed,
            "merging differently-seeded reservoirs"
        );
        self.seen += other.seen;
        for s in &other.samples {
            let key = (s.priority, s.id);
            let pos = self
                .samples
                .binary_search_by_key(&key, |r| (r.priority, r.id));
            let pos = match pos {
                Ok(_) => continue,
                Err(pos) => pos,
            };
            if self.samples.len() == self.capacity {
                if pos == self.capacity {
                    continue;
                }
                self.samples.pop();
            }
            self.samples.insert(pos, *s);
        }
    }

    /// Samples currently held, sorted ascending by `(priority, id)` — a
    /// canonical order, so equal contents are equal slices.
    pub fn samples(&self) -> &[ReservoirSample] {
        &self.samples
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing is retained yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Offers observed (including rejected and duplicate ones).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum samples kept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// FNV-1a over the canonical byte encoding of the kept set (ids,
    /// priorities, feature bits, labels, in sorted order). Two reservoirs
    /// with the same hash hold byte-identical training data.
    pub fn contents_hash(&self) -> u64 {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        let mut fold = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for s in &self.samples {
            fold(s.id);
            fold(s.priority);
            for f in &s.features {
                fold(f.to_bits());
            }
            fold(s.label as u64);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(x: f64) -> [f64; RESERVOIR_DIM] {
        [x, x + 1.0, x + 2.0, x + 3.0, x + 4.0]
    }

    #[test]
    fn contents_are_order_independent() {
        let mut fwd = Reservoir::new(8, 42);
        let mut rev = Reservoir::new(8, 42);
        for id in 0..100u64 {
            fwd.offer(id, feat(id as f64), (id % 2) as usize);
        }
        for id in (0..100u64).rev() {
            rev.offer(id, feat(id as f64), (id % 2) as usize);
        }
        assert_eq!(fwd.samples(), rev.samples());
        assert_eq!(fwd.contents_hash(), rev.contents_hash());
    }

    #[test]
    fn capacity_is_respected_and_small_streams_keep_everything() {
        let mut r = Reservoir::new(16, 7);
        for id in 0..10u64 {
            assert!(
                r.offer(id, feat(0.0), 0),
                "under capacity, everything is kept"
            );
        }
        assert_eq!(r.len(), 10);
        for id in 10..1000u64 {
            r.offer(id, feat(0.0), 0);
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn merge_equals_single_stream() {
        let ids: Vec<u64> = (0..200).collect();
        let mut whole = Reservoir::new(12, 9);
        for &id in &ids {
            whole.offer(id, feat(id as f64), 0);
        }
        let mut left = Reservoir::new(12, 9);
        let mut right = Reservoir::new(12, 9);
        for &id in &ids {
            if id % 2 == 0 {
                left.offer(id, feat(id as f64), 0);
            } else {
                right.offer(id, feat(id as f64), 0);
            }
        }
        left.merge(&right);
        assert_eq!(left.samples(), whole.samples());
        assert_eq!(left.seen(), whole.seen());
    }

    #[test]
    fn duplicate_ids_are_not_double_counted() {
        let mut r = Reservoir::new(4, 3);
        assert!(r.offer(1, feat(1.0), 0));
        assert!(!r.offer(1, feat(9.0), 1), "re-offered id must be a no-op");
        assert_eq!(r.len(), 1);
        assert_eq!(r.samples()[0].features, feat(1.0), "first offer wins");
    }

    #[test]
    fn different_seeds_keep_different_subsets() {
        let mut a = Reservoir::new(8, 1);
        let mut b = Reservoir::new(8, 2);
        for id in 0..256u64 {
            a.offer(id, feat(0.0), 0);
            b.offer(id, feat(0.0), 0);
        }
        let ids_a: Vec<u64> = a.samples().iter().map(|s| s.id).collect();
        let ids_b: Vec<u64> = b.samples().iter().map(|s| s.id).collect();
        assert_ne!(ids_a, ids_b, "seed must steer the kept subset");
    }
}
