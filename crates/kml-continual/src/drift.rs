//! The drift detector: per-channel distribution sketches plus a
//! divergence score with hysteresis.
//!
//! The detector runs in two phases per cycle:
//!
//! * **Reference** — the first `reference_windows` windows after (re)arm
//!   build a per-channel Welford sketch (mean + variance). On completion
//!   the sketch is frozen as the baseline.
//! * **Monitor** — subsequent windows accumulate into blocks of
//!   `block_windows`. Each completed block scores
//!   `max over channels of |block_mean − ref_mean| / max(ref_std / √block_windows, abs_floor)`,
//!   a z-score of the block *mean* against the frozen baseline — the
//!   denominator is the standard error of a block-sized sample, so noisy
//!   channels still resolve a sustained step once blocks average their
//!   window-to-window scatter away. A block
//!   above `threshold` increments the hot counter; a block at or below
//!   it clears the counter. Only `trigger_blocks` *consecutive* hot
//!   blocks fire a drift trigger — bounded noise cannot sustain that,
//!   while a genuine distribution shift must.
//!
//! On trigger the detector re-arms into Reference, so the post-shift
//! distribution becomes the new baseline and the same shift can never
//! re-trigger — that re-baseline *is* the hysteresis.
//!
//! Everything is pure integer/f64 arithmetic over the values observed:
//! no clocks, no randomness. Same window stream in, same triggers out.

/// Tuning knobs for [`DriftDetector`]. All counts are in windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Windows spent building the baseline sketch after (re)arm.
    pub reference_windows: u32,
    /// Windows aggregated into one scored block.
    pub block_windows: u32,
    /// Z-score a block must exceed to count as hot.
    pub threshold: f64,
    /// Consecutive hot blocks required to fire a trigger.
    pub trigger_blocks: u32,
    /// Lower bound on the score denominator (the block mean's standard
    /// error), so constant reference channels (std 0) don't make the
    /// score blow up on the first ulp of change.
    pub abs_floor: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            reference_windows: 8,
            block_windows: 4,
            threshold: 4.0,
            trigger_blocks: 2,
            abs_floor: 1.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Reference,
    Monitor,
}

/// One channel's state: a Welford sketch while in Reference, a frozen
/// baseline plus a block accumulator while in Monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Channel {
    mean: f64,
    m2: f64,
    ref_std: f64,
    block_sum: f64,
}

impl Channel {
    fn zero() -> Self {
        Channel {
            mean: 0.0,
            m2: 0.0,
            ref_std: 0.0,
            block_sum: 0.0,
        }
    }
}

/// Deterministic sustained-shift detector. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftDetector {
    cfg: DriftConfig,
    channels: Vec<Channel>,
    phase: Phase,
    /// Windows folded into the current phase (Reference) or block (Monitor).
    filled: u32,
    /// Consecutive hot blocks.
    hot: u32,
    /// Lifetime windows observed.
    windows_seen: u64,
    /// Lifetime triggers fired.
    triggers: u64,
    /// Score of the most recently completed block.
    last_score: f64,
}

impl DriftDetector {
    /// A detector over `channels` feature channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or any window/block count in the
    /// config is zero — those are configuration bugs.
    pub fn new(channels: usize, cfg: DriftConfig) -> Self {
        assert!(channels > 0, "drift detector needs at least one channel");
        assert!(
            cfg.reference_windows > 0,
            "reference_windows must be positive"
        );
        assert!(cfg.block_windows > 0, "block_windows must be positive");
        assert!(cfg.trigger_blocks > 0, "trigger_blocks must be positive");
        assert!(cfg.abs_floor > 0.0, "abs_floor must be positive");
        DriftDetector {
            cfg,
            channels: vec![Channel::zero(); channels],
            phase: Phase::Reference,
            filled: 0,
            hot: 0,
            windows_seen: 0,
            triggers: 0,
            last_score: 0.0,
        }
    }

    /// Folds one window's feature vector in. Returns `true` exactly when
    /// this window completes a sustained-shift trigger (the detector has
    /// already re-armed into Reference when it does).
    ///
    /// # Panics
    ///
    /// Panics if `features` is not the channel count given at
    /// construction — width mismatch means the caller wired the wrong
    /// window stream in.
    pub fn observe(&mut self, features: &[f64]) -> bool {
        assert_eq!(
            features.len(),
            self.channels.len(),
            "window width does not match detector channels"
        );
        self.windows_seen += 1;
        match self.phase {
            Phase::Reference => {
                self.filled += 1;
                let n = f64::from(self.filled);
                for (ch, &x) in self.channels.iter_mut().zip(features) {
                    let delta = x - ch.mean;
                    ch.mean += delta / n;
                    ch.m2 += delta * (x - ch.mean);
                }
                if self.filled == self.cfg.reference_windows {
                    let denom = f64::from(self.filled.max(2) - 1);
                    for ch in &mut self.channels {
                        ch.ref_std = (ch.m2 / denom).sqrt();
                        ch.block_sum = 0.0;
                    }
                    self.phase = Phase::Monitor;
                    self.filled = 0;
                    self.hot = 0;
                }
                false
            }
            Phase::Monitor => {
                self.filled += 1;
                for (ch, &x) in self.channels.iter_mut().zip(features) {
                    ch.block_sum += x;
                }
                if self.filled < self.cfg.block_windows {
                    return false;
                }
                let block_n = f64::from(self.cfg.block_windows);
                let mut score: f64 = 0.0;
                for ch in &mut self.channels {
                    let block_mean = ch.block_sum / block_n;
                    // Standard error of the block mean, floored so a
                    // constant reference channel can't blow the score up.
                    let denom = (ch.ref_std / block_n.sqrt()).max(self.cfg.abs_floor);
                    score = score.max((block_mean - ch.mean).abs() / denom);
                    ch.block_sum = 0.0;
                }
                self.filled = 0;
                self.last_score = score;
                if score > self.cfg.threshold {
                    self.hot += 1;
                } else {
                    self.hot = 0;
                }
                if self.hot >= self.cfg.trigger_blocks {
                    self.triggers += 1;
                    self.rearm();
                    return true;
                }
                false
            }
        }
    }

    /// Drops the baseline and returns to Reference — the next
    /// `reference_windows` windows define a fresh one.
    pub fn rearm(&mut self) {
        for ch in &mut self.channels {
            *ch = Channel::zero();
        }
        self.phase = Phase::Reference;
        self.filled = 0;
        self.hot = 0;
    }

    /// Whether the baseline is frozen and blocks are being scored.
    pub fn monitoring(&self) -> bool {
        self.phase == Phase::Monitor
    }

    /// Score of the most recently completed block (0.0 before any).
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    /// Lifetime triggers fired.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Lifetime windows observed.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Serializes the full detector state (config included) to a
    /// deterministic little-endian byte string. `from_bytes` inverts it
    /// exactly: every f64 travels as `to_bits`, so the round trip is
    /// bit-precise, not just approximately equal.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.channels.len() * 32);
        let push_u32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        let push_f64 =
            |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_bits().to_le_bytes());
        push_u32(&mut out, self.cfg.reference_windows);
        push_u32(&mut out, self.cfg.block_windows);
        push_f64(&mut out, self.cfg.threshold);
        push_u32(&mut out, self.cfg.trigger_blocks);
        push_f64(&mut out, self.cfg.abs_floor);
        push_u32(&mut out, self.channels.len() as u32);
        push_u32(
            &mut out,
            match self.phase {
                Phase::Reference => 0,
                Phase::Monitor => 1,
            },
        );
        push_u32(&mut out, self.filled);
        push_u32(&mut out, self.hot);
        push_u64(&mut out, self.windows_seen);
        push_u64(&mut out, self.triggers);
        push_f64(&mut out, self.last_score);
        for ch in &self.channels {
            push_f64(&mut out, ch.mean);
            push_f64(&mut out, ch.m2);
            push_f64(&mut out, ch.ref_std);
            push_f64(&mut out, ch.block_sum);
        }
        out
    }

    /// Inverse of [`to_bytes`](Self::to_bytes). Returns `None` on any
    /// length mismatch or out-of-range field.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        struct Cur<'a>(&'a [u8]);
        impl Cur<'_> {
            fn u32(&mut self) -> Option<u32> {
                let (head, rest) = self.0.split_first_chunk::<4>()?;
                self.0 = rest;
                Some(u32::from_le_bytes(*head))
            }
            fn u64(&mut self) -> Option<u64> {
                let (head, rest) = self.0.split_first_chunk::<8>()?;
                self.0 = rest;
                Some(u64::from_le_bytes(*head))
            }
            fn f64(&mut self) -> Option<f64> {
                Some(f64::from_bits(self.u64()?))
            }
        }
        let mut cur = Cur(bytes);
        let cfg = DriftConfig {
            reference_windows: cur.u32()?,
            block_windows: cur.u32()?,
            threshold: cur.f64()?,
            trigger_blocks: cur.u32()?,
            abs_floor: cur.f64()?,
        };
        let n = cur.u32()? as usize;
        if n == 0 || n > 4096 {
            return None;
        }
        let phase = match cur.u32()? {
            0 => Phase::Reference,
            1 => Phase::Monitor,
            _ => return None,
        };
        let filled = cur.u32()?;
        let hot = cur.u32()?;
        let windows_seen = cur.u64()?;
        let triggers = cur.u64()?;
        let last_score = cur.f64()?;
        let mut channels = Vec::with_capacity(n);
        for _ in 0..n {
            channels.push(Channel {
                mean: cur.f64()?,
                m2: cur.f64()?,
                ref_std: cur.f64()?,
                block_sum: cur.f64()?,
            });
        }
        if !cur.0.is_empty() {
            return None;
        }
        Some(DriftDetector {
            cfg,
            channels,
            phase,
            filled,
            hot,
            windows_seen,
            triggers,
            last_score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriftConfig {
        DriftConfig {
            reference_windows: 4,
            block_windows: 2,
            threshold: 3.0,
            trigger_blocks: 2,
            abs_floor: 1.0,
        }
    }

    #[test]
    fn stationary_stream_never_triggers() {
        let mut d = DriftDetector::new(2, cfg());
        for i in 0..200u32 {
            let wiggle = if i % 2 == 0 { 0.5 } else { -0.5 };
            assert!(!d.observe(&[10.0 + wiggle, 5.0 - wiggle]));
        }
        assert_eq!(d.triggers(), 0);
        assert!(d.monitoring());
    }

    #[test]
    fn sustained_shift_triggers_then_rebaselines() {
        let mut d = DriftDetector::new(1, cfg());
        for _ in 0..20 {
            assert!(!d.observe(&[10.0]));
        }
        // Shift: trigger needs trigger_blocks * block_windows = 4 shifted
        // windows once monitoring.
        let mut fired = 0;
        for _ in 0..4 {
            if d.observe(&[100.0]) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "exactly one trigger on the sustained shift");
        assert_eq!(d.triggers(), 1);
        assert!(!d.monitoring(), "re-armed into Reference after trigger");
        // The shifted distribution becomes the new baseline: staying at
        // 100.0 never re-triggers.
        for _ in 0..100 {
            assert!(!d.observe(&[100.0]));
        }
        assert_eq!(d.triggers(), 1);
    }

    #[test]
    fn single_hot_block_is_not_enough() {
        let mut d = DriftDetector::new(1, cfg());
        for _ in 0..4 {
            d.observe(&[10.0]);
        }
        // One hot block (2 windows), then back to baseline.
        assert!(!d.observe(&[100.0]));
        assert!(!d.observe(&[100.0]));
        for _ in 0..50 {
            assert!(!d.observe(&[10.0]));
        }
        assert_eq!(d.triggers(), 0, "a transient spike must not trigger");
    }

    #[test]
    fn state_round_trips_exactly() {
        let mut d = DriftDetector::new(3, cfg());
        for i in 0..13u32 {
            d.observe(&[f64::from(i), 10.0 - f64::from(i) * 0.25, 0.125]);
        }
        let bytes = d.to_bytes();
        let back = DriftDetector::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, d);
        // And the restored detector continues identically.
        let mut live = d.clone();
        let mut restored = back;
        for i in 0..40u32 {
            let w = [f64::from(i) * 7.5, -1.0, 2.0];
            assert_eq!(live.observe(&w), restored.observe(&w));
        }
        assert_eq!(live, restored);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(DriftDetector::from_bytes(&[]).is_none());
        assert!(DriftDetector::from_bytes(&[0xFF; 7]).is_none());
        let mut ok = DriftDetector::new(1, cfg()).to_bytes();
        ok.push(0); // trailing byte
        assert!(DriftDetector::from_bytes(&ok).is_none());
    }

    #[test]
    fn zero_variance_reference_uses_abs_floor() {
        // Constant reference => ref_std 0 => denominator is abs_floor.
        // A shift of exactly threshold*abs_floor must NOT trigger (score
        // is not strictly greater), but anything beyond must.
        let mut d = DriftDetector::new(1, cfg());
        for _ in 0..4 {
            d.observe(&[5.0]);
        }
        for _ in 0..8 {
            assert!(!d.observe(&[5.0 + 3.0]), "score == threshold is not hot");
        }
        let mut fired = false;
        for _ in 0..4 {
            fired |= d.observe(&[5.0 + 3.5]);
        }
        assert!(fired, "shift beyond threshold*abs_floor triggers");
    }
}
