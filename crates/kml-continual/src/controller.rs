//! The closed-loop state machine: window stream in, earned promotions
//! out.
//!
//! Per observation window the controller:
//!
//! 1. offers the window's features (plus a deterministic heuristic
//!    label) to the [`Reservoir`];
//! 2. feeds the *workload* channels — everything except the actuated
//!    knob — to the [`DriftDetector`]. Feeding the knob back in would
//!    make every promotion look like drift and re-trigger forever;
//! 3. on a sustained-shift trigger, retrains a candidate from the
//!    reservoir (inline or on the [`BackgroundRetrainer`] thread) and
//!    stages it as the lifecycle shadow — **never** installs it. Only
//!    the watchdog promotes, after its K clean windows;
//! 4. forwards the window's throughput to the [`LifecycleController`],
//!    which promotes the candidate once earned or rolls back on
//!    regression — and on rollback any still-staged candidate is
//!    discarded rather than left to promote later against a model that
//!    just proved unstable.
//!
//! Everything downstream of the window stream is deterministic: same
//! windows in, same drifts, same candidate bytes, same promotion
//! schedule — at any worker count.

use kml_lifecycle::{
    ArtifactError, LifecycleController, LifecycleEvent, LifecycleTarget, WatchdogConfig,
};

use crate::drift::{DriftConfig, DriftDetector};
use crate::reservoir::{Reservoir, RESERVOIR_DIM};
use crate::retrain::{train_candidate, BackgroundRetrainer, RetrainSpec};

/// How many leading feature channels the drift detector watches. The
/// trailing channel of every loop's window vector is the actuated knob
/// (readahead KiB / rsize KiB), which shifts *because of* promotion —
/// watching it would turn every promotion into fresh "drift".
pub const DRIFT_CHANNELS: usize = RESERVOIR_DIM - 1;

/// Everything the loop needs configured up front.
#[derive(Debug, Clone, Copy)]
pub struct ContinualConfig {
    /// Drift-detector tuning.
    pub drift: DriftConfig,
    /// Reservoir capacity in samples.
    pub reservoir_capacity: usize,
    /// Seed for reservoir priorities (and folded into retrain inits).
    pub seed: u64,
    /// Minimum retained samples before a drift trigger may retrain; a
    /// trigger below this is recorded but trains nothing.
    pub min_samples: usize,
    /// Watchdog thresholds for shadow promotion / regression rollback.
    pub watchdog: WatchdogConfig,
    /// What to train when drift fires.
    pub spec: RetrainSpec,
}

/// Where candidate training runs.
pub enum RetrainMode {
    /// On the caller's thread — simplest, used by tests and the DST
    /// harness where wall-clock does not matter.
    Inline,
    /// On a dedicated [`BackgroundRetrainer`] thread (the deployed
    /// shape). Output bytes are identical to [`RetrainMode::Inline`].
    Background(BackgroundRetrainer),
}

/// Continual-loop failures.
#[derive(Debug)]
pub enum ContinualError {
    /// Artifact packaging/staging/install failed.
    Artifact(ArtifactError),
    /// Candidate training failed.
    Train(String),
}

impl std::fmt::Display for ContinualError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContinualError::Artifact(e) => write!(f, "artifact: {e}"),
            ContinualError::Train(e) => write!(f, "train: {e}"),
        }
    }
}

impl std::error::Error for ContinualError {}

impl From<ArtifactError> for ContinualError {
    fn from(e: ArtifactError) -> Self {
        ContinualError::Artifact(e)
    }
}

/// What one window did to the loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowOutcome {
    /// A sustained-shift trigger fired this window.
    pub drifted: bool,
    /// A candidate was trained and staged this window.
    pub retrained: bool,
    /// A promote/rollback the watchdog executed this window.
    pub lifecycle: Option<LifecycleEvent>,
}

/// One logged loop event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContinualEvent {
    /// Drift trigger (divergence score of the firing block).
    Drift {
        /// Score of the block that completed the trigger.
        score: f64,
    },
    /// Candidate trained and staged.
    Retrained {
        /// 1-based retrain cycle.
        token: u64,
        /// Reservoir samples it trained on.
        samples: usize,
    },
    /// Watchdog promote/rollback.
    Lifecycle(LifecycleEvent),
}

/// One logged event plus the window it fired on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinualRecord {
    /// 1-based observation window.
    pub window: u64,
    /// What happened.
    pub event: ContinualEvent,
}

/// The closed loop. See the module docs.
pub struct ContinualController {
    cfg: ContinualConfig,
    drift: DriftDetector,
    reservoir: Reservoir,
    lifecycle: LifecycleController,
    mode: RetrainMode,
    window: u64,
    retrains: u64,
    promotions: u64,
    rollbacks: u64,
    discards: u64,
    events: Vec<ContinualRecord>,
}

impl ContinualController {
    /// Installs `initial` into `target` as generation 1 and arms the
    /// loop.
    ///
    /// # Errors
    ///
    /// Propagates the initial install; the target is unchanged on
    /// failure.
    pub fn new<T: LifecycleTarget>(
        cfg: ContinualConfig,
        target: &mut T,
        initial: Vec<u8>,
        mode: RetrainMode,
    ) -> Result<Self, ContinualError> {
        let lifecycle = LifecycleController::new(cfg.watchdog, target, initial)?;
        Ok(ContinualController {
            drift: DriftDetector::new(DRIFT_CHANNELS, cfg.drift),
            reservoir: Reservoir::new(cfg.reservoir_capacity, cfg.seed),
            lifecycle,
            mode,
            cfg,
            window: 0,
            retrains: 0,
            promotions: 0,
            rollbacks: 0,
            discards: 0,
            events: Vec::new(),
        })
    }

    /// Folds one observation window through the whole loop: reservoir →
    /// drift → (maybe) retrain+stage → watchdog. `label` is the
    /// deterministic heuristic class for this window (the training
    /// oracle); `throughput` is the loop throughput the watchdog judges.
    ///
    /// # Errors
    ///
    /// Propagates candidate training/staging failures and watchdog
    /// promote/rollback install failures.
    pub fn observe_window<T: LifecycleTarget>(
        &mut self,
        target: &mut T,
        features: &[f64; RESERVOIR_DIM],
        label: usize,
        throughput: f64,
    ) -> Result<WindowOutcome, ContinualError> {
        self.window += 1;
        self.reservoir.offer(self.window, *features, label);

        let drifted = self.drift.observe(&features[..DRIFT_CHANNELS]);
        if drifted {
            self.events.push(ContinualRecord {
                window: self.window,
                event: ContinualEvent::Drift {
                    score: self.drift.last_score(),
                },
            });
        }

        // Retrain only when drift fired, no candidate is already under
        // evaluation, and the reservoir holds enough evidence to learn
        // from. A trigger that arrives while a shadow is staged is
        // deliberately dropped: the staged candidate already represents
        // "the distribution moved", and replacing it would reset the
        // watchdog's evidence clock forever under oscillation.
        let mut retrained = false;
        if drifted
            && !self.lifecycle.shadow_staged()
            && self.reservoir.len() >= self.cfg.min_samples
        {
            let token = self.retrains + 1;
            let samples = self.reservoir.samples();
            let bytes = match &mut self.mode {
                RetrainMode::Inline => train_candidate(&self.cfg.spec, token, samples),
                RetrainMode::Background(bg) => bg.retrain_blocking(token, samples),
            }
            .map_err(ContinualError::Train)?;
            self.lifecycle.stage_shadow(target, bytes)?;
            self.retrains = token;
            retrained = true;
            self.events.push(ContinualRecord {
                window: self.window,
                event: ContinualEvent::Retrained {
                    token,
                    samples: samples.len(),
                },
            });
        }

        let lifecycle = self.lifecycle.observe_window(target, throughput)?;
        if let Some(event) = lifecycle {
            match event {
                LifecycleEvent::Promoted { .. } => self.promotions += 1,
                LifecycleEvent::RolledBack { .. } => {
                    self.rollbacks += 1;
                    // The loop just proved unstable; a candidate staged
                    // against the pre-rollback world is stale evidence.
                    if self.lifecycle.discard_shadow(target) {
                        self.discards += 1;
                    }
                }
            }
            self.events.push(ContinualRecord {
                window: self.window,
                event: ContinualEvent::Lifecycle(event),
            });
        }

        Ok(WindowOutcome {
            drifted,
            retrained,
            lifecycle,
        })
    }

    /// The active generation tag.
    pub fn generation(&self) -> u64 {
        self.lifecycle.generation()
    }

    /// Whether a candidate is staged (shadow-evaluating).
    pub fn shadow_staged(&self) -> bool {
        self.lifecycle.shadow_staged()
    }

    /// Windows folded so far.
    pub fn windows(&self) -> u64 {
        self.window
    }

    /// Drift triggers fired so far.
    pub fn drift_events(&self) -> u64 {
        self.drift.triggers()
    }

    /// Retrain cycles completed so far.
    pub fn retrains(&self) -> u64 {
        self.retrains
    }

    /// Watchdog promotions so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Watchdog rollbacks so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Candidates discarded on rollback so far.
    pub fn discards(&self) -> u64 {
        self.discards
    }

    /// Divergence score of the most recently completed drift block.
    pub fn last_drift_score(&self) -> f64 {
        self.drift.last_score()
    }

    /// Retained reservoir samples.
    pub fn reservoir_len(&self) -> usize {
        self.reservoir.len()
    }

    /// Canonical hash of the reservoir contents (determinism witness).
    pub fn reservoir_hash(&self) -> u64 {
        self.reservoir.contents_hash()
    }

    /// Every loop event logged, in order.
    pub fn events(&self) -> &[ContinualRecord] {
        &self.events
    }

    /// The inner lifecycle controller (generation history, watchdog).
    pub fn lifecycle(&self) -> &LifecycleController {
        &self.lifecycle
    }

    /// Shuts the loop down, stopping the background retrainer if one is
    /// attached.
    ///
    /// # Errors
    ///
    /// Propagates retrainer thread-join failures.
    pub fn shutdown(self) -> kml_platform::Result<()> {
        match self.mode {
            RetrainMode::Inline => Ok(()),
            RetrainMode::Background(bg) => bg.stop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kml_core::dataset::Normalizer;
    use kml_core::prelude::*;
    use kml_lifecycle::{load_model_for, save_model, ArtifactKind, ShadowStats};

    /// In-memory LifecycleTarget that records installs and validates
    /// bytes like a real loop would.
    struct MemTarget {
        generation: u64,
        installs: Vec<u64>,
        shadow: bool,
        agree: u64,
        windows: u64,
    }

    impl MemTarget {
        fn new() -> Self {
            MemTarget {
                generation: 0,
                installs: Vec::new(),
                shadow: false,
                agree: 0,
                windows: 0,
            }
        }
    }

    impl LifecycleTarget for MemTarget {
        fn install_artifact(&mut self, bytes: &[u8], generation: u64) -> Result<(), ArtifactError> {
            load_model_for::<f32>(bytes, ArtifactKind::Readahead)?;
            self.generation = generation;
            self.installs.push(generation);
            Ok(())
        }
        fn stage_shadow_artifact(&mut self, bytes: &[u8]) -> Result<(), ArtifactError> {
            load_model_for::<f32>(bytes, ArtifactKind::Readahead)?;
            self.shadow = true;
            self.agree = 0;
            self.windows = 0;
            Ok(())
        }
        fn clear_shadow(&mut self) {
            self.shadow = false;
        }
        fn generation(&self) -> u64 {
            self.generation
        }
        fn shadow_stats(&self) -> ShadowStats {
            ShadowStats {
                windows: self.windows,
                agreements: self.agree,
                errors: 0,
            }
        }
    }

    fn initial_artifact() -> Vec<u8> {
        let mut m = ModelBuilder::readahead_paper_topology(RESERVOIR_DIM, 2)
            .seed(0xAB)
            .build::<f32>()
            .expect("build");
        let feats = Matrix::from_rows(&vec![vec![1.0f64, 2.0, 3.0, 4.0, 5.0]; 4]).expect("rows");
        m.set_normalizer(Normalizer::fit(&feats).expect("fit"));
        save_model(ArtifactKind::Readahead, &mut m).expect("save")
    }

    fn cfg() -> ContinualConfig {
        ContinualConfig {
            drift: DriftConfig {
                reference_windows: 4,
                block_windows: 2,
                threshold: 3.0,
                trigger_blocks: 2,
                abs_floor: 1.0,
            },
            reservoir_capacity: 64,
            seed: 0x5EED,
            min_samples: 8,
            watchdog: WatchdogConfig {
                baseline_windows: 2,
                promote_after: 3,
                regress_windows: 2,
                regress_ratio: 0.5,
            },
            spec: RetrainSpec {
                kind: ArtifactKind::Readahead,
                classes: 2,
                epochs: 5,
                seed: 0x5EED,
            },
        }
    }

    fn window(base: f64, knob: f64) -> [f64; RESERVOIR_DIM] {
        [base, base * 2.0, base + 1.0, base * 0.5, knob]
    }

    #[test]
    fn full_arc_drift_retrain_stage_promote() {
        let mut target = MemTarget::new();
        let mut ctl =
            ContinualController::new(cfg(), &mut target, initial_artifact(), RetrainMode::Inline)
                .expect("new");
        assert_eq!(ctl.generation(), 1);

        // Stationary phase: builds baseline, fills reservoir, no drift.
        for i in 0..16u64 {
            let out = ctl
                .observe_window(
                    &mut target,
                    &window(10.0 + (i % 2) as f64, 128.0),
                    0,
                    1000.0,
                )
                .expect("window");
            assert!(!out.drifted);
            assert!(out.lifecycle.is_none());
        }
        assert_eq!(ctl.drift_events(), 0);
        assert_eq!(ctl.retrains(), 0);

        // Sustained shift: drift fires, retrains, stages, and the
        // watchdog promotes after its clean windows.
        target.agree = 9;
        target.windows = 10;
        let mut saw_drift = false;
        let mut saw_promotion = false;
        for _ in 0..32 {
            let out = ctl
                .observe_window(&mut target, &window(500.0, 128.0), 1, 1000.0)
                .expect("window");
            saw_drift |= out.drifted;
            if let Some(LifecycleEvent::Promoted { from, to, .. }) = out.lifecycle {
                assert_eq!((from, to), (1, 2));
                saw_promotion = true;
                break;
            }
        }
        assert!(saw_drift, "sustained shift must trigger drift");
        assert!(saw_promotion, "watchdog must promote the candidate");
        assert_eq!(ctl.generation(), 2);
        assert_eq!(ctl.retrains(), 1);
        assert_eq!(ctl.promotions(), 1);
        assert_eq!(
            target.installs,
            vec![1, 2],
            "candidate must never install before promotion"
        );
        assert!(!ctl.shadow_staged());
    }

    #[test]
    fn no_drift_means_no_retrain_ever() {
        let mut target = MemTarget::new();
        let mut ctl =
            ContinualController::new(cfg(), &mut target, initial_artifact(), RetrainMode::Inline)
                .expect("new");
        for i in 0..200u64 {
            let wiggle = if i % 2 == 0 { 0.25 } else { -0.25 };
            ctl.observe_window(&mut target, &window(10.0 + wiggle, 128.0), 0, 1000.0)
                .expect("window");
        }
        assert_eq!(ctl.drift_events(), 0);
        assert_eq!(ctl.retrains(), 0);
        assert_eq!(ctl.promotions(), 0);
        assert_eq!(ctl.generation(), 1);
        assert_eq!(target.installs, vec![1]);
    }

    #[test]
    fn knob_channel_is_invisible_to_drift() {
        let mut target = MemTarget::new();
        let mut ctl =
            ContinualController::new(cfg(), &mut target, initial_artifact(), RetrainMode::Inline)
                .expect("new");
        // The knob channel (index 4) swings wildly; workload channels
        // are stationary. No drift may fire.
        for i in 0..100u64 {
            let knob = if i % 2 == 0 { 16.0 } else { 1024.0 };
            ctl.observe_window(&mut target, &window(10.0, knob), 0, 1000.0)
                .expect("window");
        }
        assert_eq!(ctl.drift_events(), 0);
    }

    #[test]
    fn regression_rolls_back_and_discards_staged_candidate() {
        let mut target = MemTarget::new();
        let mut ctl =
            ContinualController::new(cfg(), &mut target, initial_artifact(), RetrainMode::Inline)
                .expect("new");
        // Phase 1: healthy baseline on gen 1.
        for i in 0..16u64 {
            ctl.observe_window(
                &mut target,
                &window(10.0 + (i % 2) as f64, 128.0),
                0,
                1000.0,
            )
            .expect("window");
        }
        // Phase 2: first shift promotes gen 2, so a rollback target
        // exists, then keep running so the drift detector finishes its
        // post-trigger re-baseline on the new distribution.
        target.agree = 9;
        target.windows = 10;
        let mut promoted = false;
        for _ in 0..32 {
            let out = ctl
                .observe_window(&mut target, &window(500.0, 128.0), 1, 1000.0)
                .expect("window");
            if matches!(out.lifecycle, Some(LifecycleEvent::Promoted { .. })) {
                promoted = true;
                break;
            }
        }
        assert!(promoted);
        for _ in 0..10 {
            ctl.observe_window(&mut target, &window(500.0, 128.0), 1, 1000.0)
                .expect("window");
        }
        // Phase 3a: a second shift at healthy throughput stages a new
        // candidate...
        let mut retrained = false;
        for _ in 0..12 {
            let out = ctl
                .observe_window(&mut target, &window(5000.0, 128.0), 0, 1000.0)
                .expect("window");
            if out.retrained {
                retrained = true;
                break;
            }
        }
        assert!(retrained);
        assert!(ctl.shadow_staged());
        // ...Phase 3b: then throughput collapses before the candidate
        // earns promotion. The watchdog rolls back to gen 1 and the
        // staged candidate is discarded with it.
        let mut rolled_back = false;
        for _ in 0..4 {
            let out = ctl
                .observe_window(&mut target, &window(5000.0, 128.0), 0, 100.0)
                .expect("window");
            if matches!(out.lifecycle, Some(LifecycleEvent::RolledBack { .. })) {
                rolled_back = true;
                break;
            }
        }
        assert!(rolled_back);
        assert_eq!(ctl.rollbacks(), 1);
        assert_eq!(
            ctl.discards(),
            1,
            "staged candidate must die with the rollback"
        );
        assert!(!ctl.shadow_staged());
        assert_eq!(ctl.generation(), 1);
        assert_eq!(target.installs, vec![1, 2, 1]);
        assert_eq!(ctl.retrains(), 2);
        assert_eq!(ctl.promotions(), 1);
    }

    #[test]
    fn reservoir_hash_tracks_only_window_stream() {
        let run = |mode_seed: u64| {
            let mut target = MemTarget::new();
            let mut c = cfg();
            c.seed = mode_seed;
            c.spec.seed = mode_seed;
            let mut ctl =
                ContinualController::new(c, &mut target, initial_artifact(), RetrainMode::Inline)
                    .expect("new");
            for i in 0..50u64 {
                ctl.observe_window(
                    &mut target,
                    &window(10.0 + (i % 3) as f64, 128.0),
                    0,
                    1000.0,
                )
                .expect("window");
            }
            ctl.reservoir_hash()
        };
        assert_eq!(run(1), run(1), "same stream+seed => same reservoir");
        assert_ne!(run(1), run(2), "seed steers the kept subset");
    }
}
