//! The background retrainer: reservoir samples → trained candidate →
//! `.kmlm` bytes, off the control-loop thread.
//!
//! [`train_candidate`] is the pure core — a deterministic function from
//! `(spec, token, samples)` to artifact bytes. It runs the sharded
//! [`Model::train_batch`] path, which is bit-identical to the serial
//! path at any worker count, so the candidate bytes are the same at
//! `--threads 1/3/8`.
//!
//! [`BackgroundRetrainer`] hosts that function on the existing
//! [`AsyncTrainer`] machinery: samples stream through a
//! [`RingBuffer`] into the "kml-train" thread, a `Go` marker closes the
//! batch, and the artifact comes back through a shared result slot. The
//! producer side applies explicit backpressure (the ring overwrites on
//! overflow, which would silently corrupt the training set), so the
//! bytes produced are still a pure function of the samples sent —
//! threading moves wall-clock time around, never the output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use kml_collect::ringbuf::RingBuffer;
use kml_collect::trainer::AsyncTrainer;
use kml_core::dataset::Normalizer;
use kml_core::loss::TargetRef;
use kml_core::modelfile;
use kml_core::prelude::*;
use kml_lifecycle::{save_model, ArtifactKind};
use kml_platform::threading::{self, kml_yield};
use kml_platform::Persona;

use crate::reservoir::{ReservoirSample, RESERVOIR_DIM};

/// What to train when drift fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrainSpec {
    /// Artifact kind the candidate is packaged as (fixes schema hash and
    /// feature naming at install time).
    pub kind: ArtifactKind,
    /// Output classes of the policy head.
    pub classes: usize,
    /// Full-batch epochs over the reservoir.
    pub epochs: u32,
    /// Base seed; the retrain token is folded in so successive candidates
    /// start from distinct (but deterministic) initializations.
    pub seed: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Trains a candidate from reservoir samples and packages it as `.kmlm`
/// bytes. Deterministic: same `(spec, token, samples)` in, same bytes
/// out, at any worker count.
///
/// # Errors
///
/// Returns a description when the sample set is empty or degenerate
/// (e.g. a label outside `spec.classes`) or when model building,
/// training, or encoding fails.
pub fn train_candidate(
    spec: &RetrainSpec,
    token: u64,
    samples: &[ReservoirSample],
) -> Result<Vec<u8>, String> {
    if samples.is_empty() {
        return Err("retrain with empty reservoir".into());
    }
    if let Some(bad) = samples.iter().find(|s| s.label >= spec.classes) {
        return Err(format!(
            "reservoir label {} out of range for {} classes",
            bad.label, spec.classes
        ));
    }
    let rows: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_vec()).collect();
    let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
    let features = Matrix::from_rows(&rows).map_err(|e| e.to_string())?;
    let normalizer = Normalizer::fit(&features).map_err(|e| e.to_string())?;
    let normed = normalizer.apply(&features).map_err(|e| e.to_string())?;

    let mut model = ModelBuilder::readahead_paper_topology(RESERVOIR_DIM, spec.classes)
        .seed(spec.seed ^ token.wrapping_mul(GOLDEN))
        .build::<f64>()
        .map_err(|e| e.to_string())?;
    model.set_normalizer(normalizer);
    model.set_train_workers(threading::default_workers());

    let mut sgd = Sgd::paper_defaults();
    for _ in 0..spec.epochs {
        model
            .train_batch(
                &normed,
                TargetRef::Classes(&labels),
                &CrossEntropyLoss,
                &mut sgd,
            )
            .map_err(|e| e.to_string())?;
    }

    // Serve in f32 like every deployed artifact: encode the f64 trainee,
    // re-decode at serving precision, then wrap in the .kmlm envelope.
    let f64_bytes = modelfile::encode(&model).map_err(|e| e.to_string())?;
    let mut m32 = modelfile::decode::<f32>(&f64_bytes).map_err(|e| e.to_string())?;
    save_model(spec.kind, &mut m32).map_err(|e| e.to_string())
}

/// Messages streamed to the training thread.
#[derive(Debug, Clone, Copy)]
enum RetrainMsg {
    /// One reservoir sample of the batch being staged.
    Sample(ReservoirSample),
    /// Close the staged batch and train. `count` cross-checks that every
    /// staged sample arrived.
    Go { token: u64, count: u32 },
}

type ResultSlot = Arc<Mutex<Option<(u64, Result<Vec<u8>, String>)>>>;

/// Hosts [`train_candidate`] on an [`AsyncTrainer`] thread.
pub struct BackgroundRetrainer {
    trainer: AsyncTrainer,
    producer: kml_collect::ringbuf::Producer<RetrainMsg>,
    /// Samples acknowledged by the training thread — producer-side
    /// backpressure so the ring never overwrites unread messages.
    accepted: Arc<AtomicU64>,
    sent: u64,
    capacity: usize,
    result: ResultSlot,
}

impl BackgroundRetrainer {
    /// Spawns the retrain thread under `persona` with the "kml-train"
    /// thread name (kernel persona makes it a kthread like the paper's
    /// in-kernel trainer).
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn failures.
    pub fn spawn(persona: Persona, spec: RetrainSpec) -> kml_platform::Result<Self> {
        let ring = RingBuffer::<RetrainMsg>::with_capacity(1024);
        let capacity = 1024;
        let (producer, consumer) = ring.split();
        let accepted = Arc::new(AtomicU64::new(0));
        let result: ResultSlot = Arc::new(Mutex::new(None));
        let thread_accepted = accepted.clone();
        let thread_result = result.clone();
        let mut staged: Vec<ReservoirSample> = Vec::new();
        let trainer = AsyncTrainer::spawn(persona, consumer, move |batch: &[RetrainMsg]| {
            for msg in batch {
                match *msg {
                    RetrainMsg::Sample(s) => {
                        staged.push(s);
                        thread_accepted.fetch_add(1, Ordering::Release);
                    }
                    RetrainMsg::Go { token, count } => {
                        let outcome = if staged.len() == count as usize {
                            train_candidate(&spec, token, &staged)
                        } else {
                            Err(format!(
                                "staged {} samples but batch declared {count}",
                                staged.len()
                            ))
                        };
                        staged.clear();
                        *thread_result.lock().expect("result slot poisoned") =
                            Some((token, outcome));
                    }
                }
            }
        })?;
        Ok(BackgroundRetrainer {
            trainer,
            producer,
            accepted,
            sent: 0,
            capacity,
            result,
        })
    }

    /// Streams `samples` to the training thread, closes the batch, and
    /// waits for the candidate bytes. Wall-clock blocks; the returned
    /// bytes are a pure function of `(spec, token, samples)`.
    ///
    /// # Errors
    ///
    /// Propagates [`train_candidate`] failures.
    pub fn retrain_blocking(
        &mut self,
        token: u64,
        samples: &[ReservoirSample],
    ) -> Result<Vec<u8>, String> {
        let backpressure_at = (self.capacity - 2) as u64;
        for s in samples {
            while self.sent - self.accepted.load(Ordering::Acquire) >= backpressure_at {
                kml_yield();
            }
            self.producer.push(RetrainMsg::Sample(*s));
            self.sent += 1;
        }
        self.producer.push(RetrainMsg::Go {
            token,
            count: samples.len() as u32,
        });
        loop {
            if let Some((done, outcome)) = self
                .result
                .lock()
                .expect("result slot poisoned")
                .take_if(|(done, _)| *done == token)
            {
                debug_assert_eq!(done, token);
                return outcome;
            }
            kml_yield();
        }
    }

    /// Total samples delivered to the training thread.
    pub fn samples_processed(&self) -> u64 {
        self.trainer.samples_processed()
    }

    /// Stops the training thread, draining anything still queued.
    ///
    /// # Errors
    ///
    /// Propagates thread-join failures.
    pub fn stop(self) -> kml_platform::Result<()> {
        self.trainer.stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservoir::Reservoir;

    fn spec() -> RetrainSpec {
        RetrainSpec {
            kind: ArtifactKind::Readahead,
            classes: 2,
            epochs: 20,
            seed: 0x5EED,
        }
    }

    fn filled_reservoir(n: u64) -> Reservoir {
        let mut r = Reservoir::new(96, 0xC0FFEE);
        for id in 0..n {
            // Two separable clusters so training has something to learn.
            let (base, label) = if id % 2 == 0 { (10.0, 0) } else { (500.0, 1) };
            let x = base + (id % 7) as f64;
            r.offer(id, [x, x * 2.0, x * 0.5, x + 3.0, 128.0], label);
        }
        r
    }

    #[test]
    fn train_candidate_is_deterministic_and_loadable() {
        let r = filled_reservoir(200);
        let a = train_candidate(&spec(), 1, r.samples()).expect("train");
        let b = train_candidate(&spec(), 1, r.samples()).expect("train again");
        assert_eq!(a, b, "same inputs must give byte-identical artifacts");
        let loaded =
            kml_lifecycle::load_model_for::<f32>(&a, ArtifactKind::Readahead).expect("load");
        assert_eq!(loaded.model.input_dim(), RESERVOIR_DIM);
        assert_eq!(loaded.model.output_dim(), 2);
    }

    #[test]
    fn distinct_tokens_give_distinct_candidates() {
        let r = filled_reservoir(200);
        let a = train_candidate(&spec(), 1, r.samples()).expect("train");
        let b = train_candidate(&spec(), 2, r.samples()).expect("train");
        assert_ne!(a, b, "the token folds into the init seed");
    }

    #[test]
    fn empty_and_bad_label_inputs_are_rejected() {
        assert!(train_candidate(&spec(), 1, &[]).is_err());
        let mut r = Reservoir::new(4, 1);
        r.offer(0, [1.0; RESERVOIR_DIM], 7);
        assert!(train_candidate(&spec(), 1, r.samples()).is_err());
    }

    #[test]
    fn background_matches_inline() {
        let r = filled_reservoir(200);
        let inline = train_candidate(&spec(), 3, r.samples()).expect("inline");
        let mut bg = BackgroundRetrainer::spawn(Persona::Kernel, spec()).expect("spawn");
        let first = bg.retrain_blocking(3, r.samples()).expect("background");
        assert_eq!(first, inline, "background path must not change the bytes");
        // A second cycle on the same retrainer reuses the thread cleanly.
        let second = bg.retrain_blocking(4, r.samples()).expect("second cycle");
        assert_ne!(second, first);
        assert_eq!(bg.samples_processed(), 2 * (r.len() as u64 + 1));
        bg.stop().expect("stop");
    }
}
