//! Wires the continual loop into all three deployed serving paths —
//! the readahead `KmlTuner` on a live page-cache sim, the netfs
//! `RsizeTuner`, and a fleet `InferenceServer` lane — and drives the
//! full drift → retrain → shadow → earned-promotion arc through each.

use kernel_sim::{DeviceProfile, Sim, SimConfig};
use kml_collect::RingBuffer;
use kml_continual::{
    train_candidate, ContinualConfig, ContinualController, DriftConfig, ReservoirSample,
    RetrainMode, RetrainSpec, RESERVOIR_DIM,
};
use kml_fleet::{FleetModels, InferRequest, InferenceServer, ModelKind, ServeOptions};
use kml_lifecycle::{ArtifactKind, WatchdogConfig};
use netfs::{RsizePolicy, RsizeTuner, RsizeTunerModel, NUM_RSIZE_FEATURES};
use readahead::{KmlTuner, RaPolicy, TunerModel};

/// Builds `.kmlm` bytes by training on a synthetic labeled cluster set —
/// the same path the live retrainer takes.
fn artifact_from(kind: ArtifactKind, clusters: &[([f64; RESERVOIR_DIM], usize)]) -> Vec<u8> {
    let mut samples = Vec::new();
    for (i, &(center, label)) in clusters.iter().enumerate() {
        for j in 0..24u64 {
            let mut features = center;
            // Small deterministic jitter so the normalizer sees variance.
            for (k, f) in features.iter_mut().enumerate() {
                *f *= 1.0 + ((i as u64 * 31 + j * 7 + k as u64) % 13) as f64 * 0.01;
            }
            samples.push(ReservoirSample {
                id: (i as u64) << 32 | j,
                priority: 0,
                features,
                label,
            });
        }
    }
    train_candidate(
        &RetrainSpec {
            kind,
            classes: 2,
            epochs: 60,
            seed: 0x1217,
        },
        0,
        &samples,
    )
    .expect("initial artifact")
}

fn continual_cfg(kind: ArtifactKind) -> ContinualConfig {
    ContinualConfig {
        drift: DriftConfig {
            reference_windows: 6,
            block_windows: 2,
            threshold: 8.0,
            trigger_blocks: 2,
            abs_floor: 1.0,
        },
        reservoir_capacity: 64,
        seed: 0xC0_11EC7,
        min_samples: 16,
        watchdog: WatchdogConfig {
            baseline_windows: 2,
            promote_after: 3,
            regress_windows: 2,
            regress_ratio: 0.5,
        },
        spec: RetrainSpec {
            kind,
            classes: 2,
            epochs: 60,
            seed: 0xC0_11EC7,
        },
    }
}

/// Random-phase readahead windows: huge mean |Δoffset| (feature 3).
const RA_RANDOM: [f64; RESERVOIR_DIM] = [100.0, 500_000.0, 290_000.0, 330_000.0, 128.0];
/// Sequential-phase readahead windows: near-unit |Δoffset|.
const RA_SEQ: [f64; RESERVOIR_DIM] = [4000.0, 500_000.0, 2_000.0, 1.0, 128.0];

#[test]
fn readahead_loop_runs_the_full_arc_on_a_live_sim() {
    let mut sim = Sim::new(SimConfig {
        device: DeviceProfile::sata_ssd(),
        cache_pages: 2048,
        ..SimConfig::default()
    });
    let (producer, consumer) = RingBuffer::with_capacity(1 << 14).split();
    sim.attach_trace(producer);
    let file = sim.create_file(1 << 20);

    // The placeholder model is never consulted: the controller installs
    // the initial artifact as generation 1 before the first window.
    let mut tuner = KmlTuner::new(
        TunerModel::Remote,
        RaPolicy::new(vec![16, 1024]),
        consumer,
        1_000_000,
        128,
    );
    let initial = artifact_from(ArtifactKind::Readahead, &[(RA_RANDOM, 0)]);
    let mut ctl = ContinualController::new(
        continual_cfg(ArtifactKind::Readahead),
        &mut tuner,
        initial,
        RetrainMode::Inline,
    )
    .expect("controller");
    assert_eq!(tuner.model_generation(), 1);

    let drive = |sim: &mut Sim,
                 tuner: &mut KmlTuner,
                 ctl: &mut ContinualController,
                 ops: u64,
                 mut read_at: Box<dyn FnMut(u64) -> u64>| {
        for op in 0..ops {
            sim.read(file, read_at(op), 4).expect("read");
            if let Some(features) = tuner.poll_window(sim) {
                let label = KmlTuner::heuristic_class(&features);
                // Lifecycle first, so a promotion executed on this window
                // serves this window's decision — post-promotion decisions
                // must carry the new generation.
                ctl.observe_window(tuner, &features, label, 1000.0)
                    .expect("window");
                let class = tuner.predict_active(&features).expect("predict");
                tuner.apply_class(sim, class);
            }
        }
    };

    // Phase 1: random reads. The baseline forms here; no drift, no
    // retrain, and the class-0 model keeps readahead minimal.
    let mut x = 5u64;
    drive(
        &mut sim,
        &mut tuner,
        &mut ctl,
        800,
        Box::new(move |_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 16) % ((1 << 20) - 8)
        }),
    );
    assert_eq!(ctl.drift_events(), 0, "stationary phase must not drift");
    assert_eq!(ctl.retrains(), 0);
    assert_eq!(tuner.model_generation(), 1);
    assert_eq!(tuner.current_ra_kb(), 16, "random phase mis-tuned");

    // Phase 2: sequential scan — a genuine workload shift. Drift fires,
    // the reservoir retrains a candidate, shadow evaluation runs, and
    // the watchdog promotes on clean windows.
    drive(&mut sim, &mut tuner, &mut ctl, 30_000, Box::new(|op| op));

    assert!(
        ctl.drift_events() >= 1,
        "sustained shift must trigger drift"
    );
    assert!(ctl.retrains() >= 1, "drift must retrain");
    assert!(ctl.promotions() >= 1, "clean windows must earn promotion");
    assert_eq!(
        ctl.generation(),
        1 + ctl.promotions(),
        "every generation bump must be an earned promotion"
    );
    assert_eq!(tuner.model_generation(), ctl.generation());
    assert_eq!(
        tuner.current_ra_kb(),
        1024,
        "promoted model must classify the sequential phase"
    );

    // Decision log: generations are monotone and every decision after
    // the last promotion carries the promoted generation.
    let decisions = tuner.decisions();
    assert!(decisions
        .windows(2)
        .all(|w| w[0].generation <= w[1].generation));
    assert_eq!(
        decisions.last().expect("decisions").generation,
        ctl.generation()
    );
    // Retrains only ever happen on drift windows.
    assert!(ctl.retrains() <= ctl.drift_events());
    ctl.shutdown().expect("shutdown");
}

/// Calm link windows: negligible retransmit fraction (feature 2).
const NET_CALM: [f64; NUM_RSIZE_FEATURES] = [200.0, 2_000_000.0, 0.01, 100_000.0, 1024.0];
/// Congested link windows: half the RPCs retransmit.
const NET_CONGESTED: [f64; NUM_RSIZE_FEATURES] = [150.0, 9_000_000.0, 0.55, 4_000_000.0, 1024.0];

#[test]
fn netfs_loop_retrains_and_promotes_on_congestion_shift() {
    let (_producer, consumer) = RingBuffer::with_capacity(1 << 10).split();
    let mut tuner = RsizeTuner::new(
        RsizeTunerModel::Remote,
        RsizePolicy::new(vec![1024, 64]),
        consumer,
        RsizeTuner::DEFAULT_WINDOW_NS,
    );
    let initial = artifact_from(ArtifactKind::NetfsRsize, &[(NET_CALM, 0)]);
    let mut ctl = ContinualController::new(
        continual_cfg(ArtifactKind::NetfsRsize),
        &mut tuner,
        initial,
        RetrainMode::Inline,
    )
    .expect("controller");

    // Calm phase: baseline forms, nothing fires.
    for i in 0..20u64 {
        let mut w = NET_CALM;
        w[0] += (i % 3) as f64; // bounded noise
        let label = RsizeTuner::heuristic_class(&w);
        assert_eq!(label, 0);
        let out = ctl
            .observe_window(&mut tuner, &w, label, 1000.0)
            .expect("window");
        assert!(!out.drifted);
    }
    assert_eq!(ctl.retrains(), 0);
    assert_eq!(tuner.model_generation(), 1);

    // Congestion shift: the retransmit fraction jumps and stays up.
    let mut promoted = false;
    for i in 0..30u64 {
        let mut w = NET_CONGESTED;
        w[0] += (i % 3) as f64;
        let label = RsizeTuner::heuristic_class(&w);
        assert_eq!(label, 1);
        let out = ctl
            .observe_window(&mut tuner, &w, label, 1000.0)
            .expect("window");
        if out
            .lifecycle
            .map(|e| matches!(e, kml_lifecycle::LifecycleEvent::Promoted { .. }))
            .unwrap_or(false)
        {
            promoted = true;
        }
    }
    assert!(promoted, "congestion shift must earn a promotion");
    assert_eq!(ctl.drift_events(), 1);
    assert_eq!(ctl.retrains(), 1);
    assert_eq!(tuner.model_generation(), 2);
    // The promoted model classifies the congested link, so the loop
    // would now shrink the transfer size.
    let class = tuner.predict_active(&NET_CONGESTED).expect("predict");
    assert_eq!(class, 1, "promoted model must recognize congestion");
    ctl.shutdown().expect("shutdown");
}

#[test]
fn fleet_lane_promotes_without_touching_other_kinds() {
    let mut server = InferenceServer::new(
        FleetModels::untrained(0xF1EE7).expect("models"),
        ServeOptions::default(),
    );
    let initial = artifact_from(ArtifactKind::Readahead, &[(RA_RANDOM, 0)]);
    let mut ctl = ContinualController::new(
        continual_cfg(ArtifactKind::Readahead),
        &mut server.lifecycle_lane(ModelKind::Readahead),
        initial,
        RetrainMode::Inline,
    )
    .expect("controller");
    assert_eq!(server.generation(ModelKind::Readahead), 1);
    let iosched_gen = server.generation(ModelKind::Iosched);
    let netfs_gen = server.generation(ModelKind::Netfs);

    let serve_window = |server: &mut InferenceServer, features: [f64; RESERVOIR_DIM]| {
        let req = InferRequest {
            tenant_id: 7,
            kind: ModelKind::Readahead,
            features,
            dim: RESERVOIR_DIM,
        };
        let responses = server.serve(&[req]).expect("serve");
        responses[0].class
    };

    // Calm phase: the installed class-0 model answers every tick.
    for i in 0..20u64 {
        let mut w = RA_RANDOM;
        w[0] += (i % 3) as f64;
        let class = serve_window(&mut server, w);
        assert_eq!(class, 0, "initial model must classify the calm phase");
        ctl.observe_window(
            &mut server.lifecycle_lane(ModelKind::Readahead),
            &w,
            0,
            1000.0,
        )
        .expect("window");
    }
    assert_eq!(ctl.retrains(), 0);

    // Shift: serve ticks keep flowing while the lane drifts, retrains,
    // shadow-evaluates, and promotes.
    let mut last_class = 0;
    for i in 0..30u64 {
        let mut w = RA_SEQ;
        w[0] += (i % 3) as f64;
        last_class = serve_window(&mut server, w);
        ctl.observe_window(
            &mut server.lifecycle_lane(ModelKind::Readahead),
            &w,
            1,
            1000.0,
        )
        .expect("window");
    }
    assert!(ctl.promotions() >= 1, "fleet lane must earn its promotion");
    assert_eq!(
        server.generation(ModelKind::Readahead),
        1 + ctl.promotions()
    );
    assert_eq!(
        last_class, 1,
        "post-promotion ticks must be served by the retrained model"
    );
    // The other lanes never moved.
    assert_eq!(server.generation(ModelKind::Iosched), iosched_gen);
    assert_eq!(server.generation(ModelKind::Netfs), netfs_gen);
    assert_eq!(server.shadow_stats(ModelKind::Readahead).windows, 0);
    ctl.shutdown().expect("shutdown");
}
