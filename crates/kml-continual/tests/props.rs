//! Property suites for the two determinism-critical pieces of the
//! continual loop:
//!
//! 1. **Reservoir determinism** — same seed ⇒ byte-identical reservoir
//!    contents across item counts, ingestion orderings within a shard,
//!    and worker counts (sharded ingest + merge equals single-stream
//!    ingest).
//! 2. **Drift hysteresis** — bounded noise around a stationary
//!    distribution can never trigger; a scripted sustained shift is
//!    mathematically guaranteed to trigger at a predictable window; and
//!    detector state round-trips through bytes mid-stream without
//!    perturbing subsequent behavior.

use kml_continual::{DriftConfig, DriftDetector, Reservoir, RESERVOIR_DIM};
use proptest::prelude::*;

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn feat(id: u64) -> [f64; RESERVOIR_DIM] {
    let x = id as f64;
    [x, x * 0.5, x + 2.0, 1000.0 - x, 128.0]
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..n).collect();
    for i in (1..ids.len()).rev() {
        let j = (mix(seed ^ i as u64) % (i as u64 + 1)) as usize;
        ids.swap(i, j);
    }
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ingesting the same id set in any order — identity, a random
    /// permutation, or reversed — keeps byte-identical contents.
    #[test]
    fn reservoir_is_ingestion_order_independent(
        n in 1u64..400,
        capacity in 1usize..64,
        seed in any::<u64>(),
        shuffle in any::<u64>(),
    ) {
        let mut in_order = Reservoir::new(capacity, seed);
        for id in 0..n {
            in_order.offer(id, feat(id), (id % 2) as usize);
        }
        let mut shuffled = Reservoir::new(capacity, seed);
        for id in permutation(n, shuffle) {
            shuffled.offer(id, feat(id), (id % 2) as usize);
        }
        let mut reversed = Reservoir::new(capacity, seed);
        for id in (0..n).rev() {
            reversed.offer(id, feat(id), (id % 2) as usize);
        }
        prop_assert_eq!(in_order.samples(), shuffled.samples());
        prop_assert_eq!(in_order.samples(), reversed.samples());
        prop_assert_eq!(in_order.contents_hash(), shuffled.contents_hash());
        prop_assert_eq!(in_order.contents_hash(), reversed.contents_hash());
        prop_assert!(in_order.len() == capacity.min(n as usize));
    }

    /// Sharding the stream over any worker count and merging the shard
    /// reservoirs equals one reservoir fed the whole stream — worker
    /// count cannot steer the training set.
    #[test]
    fn reservoir_sharded_merge_equals_single_stream(
        n in 1u64..400,
        capacity in 1usize..64,
        seed in any::<u64>(),
        workers in 1usize..9,
    ) {
        let mut whole = Reservoir::new(capacity, seed);
        for id in 0..n {
            whole.offer(id, feat(id), 0);
        }
        let mut shards: Vec<Reservoir> =
            (0..workers).map(|_| Reservoir::new(capacity, seed)).collect();
        for id in 0..n {
            shards[(id % workers as u64) as usize].offer(id, feat(id), 0);
        }
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(merged.samples(), whole.samples());
        prop_assert_eq!(merged.contents_hash(), whole.contents_hash());
        prop_assert_eq!(merged.seen(), whole.seen());
    }

    /// Bounded noise can never trigger: with |noise| ≤ d, any block mean
    /// sits within 2d of the reference mean, so keeping
    /// 2d ≤ threshold · abs_floor bounds every score at the threshold —
    /// strictly below the "hot" criterion — no matter how the noise
    /// lands.
    #[test]
    fn drift_never_triggers_on_bounded_noise(
        base in -1000.0f64..1000.0,
        noise_seed in any::<u64>(),
        channels in 1usize..5,
        windows in 50u32..250,
    ) {
        let cfg = DriftConfig {
            reference_windows: 6,
            block_windows: 3,
            threshold: 4.0,
            trigger_blocks: 2,
            abs_floor: 1.0,
        };
        // d = threshold * abs_floor / 2.
        let d = 2.0;
        let mut det = DriftDetector::new(channels, cfg);
        for w in 0..windows {
            let vals: Vec<f64> = (0..channels)
                .map(|c| {
                    let r = mix(noise_seed ^ u64::from(w) ^ ((c as u64) << 32));
                    // Uniform in [-d, d].
                    base + (r as f64 / u64::MAX as f64 * 2.0 - 1.0) * d
                })
                .collect();
            prop_assert!(!det.observe(&vals), "noise triggered at window {}", w);
        }
        prop_assert_eq!(det.triggers(), 0);
    }

    /// A sustained shift is guaranteed to trigger, at exactly the first
    /// window arithmetic allows: constant reference (std 0 ⇒ denominator
    /// is abs_floor), then a constant shifted value beyond
    /// threshold · abs_floor makes every block hot.
    #[test]
    fn drift_always_triggers_on_sustained_shift(
        base in -1000.0f64..1000.0,
        delta_mag in 4.1f64..500.0,
        negative in any::<bool>(),
        channels in 1usize..5,
    ) {
        let cfg = DriftConfig {
            reference_windows: 5,
            block_windows: 2,
            threshold: 4.0,
            trigger_blocks: 3,
            abs_floor: 1.0,
        };
        let delta = if negative { -delta_mag } else { delta_mag };
        let mut det = DriftDetector::new(channels, cfg);
        let refs = vec![base; channels];
        for _ in 0..cfg.reference_windows {
            prop_assert!(!det.observe(&refs));
        }
        let shifted = vec![base + delta; channels];
        // Trigger lands exactly when the trigger_blocks-th hot block
        // completes: trigger_blocks * block_windows shifted windows.
        let span = cfg.trigger_blocks * cfg.block_windows;
        for w in 0..span - 1 {
            prop_assert!(!det.observe(&shifted), "early trigger at shifted window {}", w);
        }
        prop_assert!(det.observe(&shifted), "no trigger at the guaranteed window");
        prop_assert_eq!(det.triggers(), 1);
        // Hysteresis: the shifted level is the new baseline; holding it
        // never re-triggers.
        for _ in 0..6 * span {
            prop_assert!(!det.observe(&shifted));
        }
        prop_assert_eq!(det.triggers(), 1);
    }

    /// Detector state round-trips through bytes at an arbitrary point in
    /// an arbitrary stream, and the restored detector behaves
    /// identically from there on.
    #[test]
    fn drift_state_round_trips_mid_stream(
        stream_seed in any::<u64>(),
        split in 1u32..120,
        channels in 1usize..4,
    ) {
        let cfg = DriftConfig {
            reference_windows: 4,
            block_windows: 2,
            threshold: 3.0,
            trigger_blocks: 2,
            abs_floor: 0.5,
        };
        let window = |w: u32| -> Vec<f64> {
            (0..channels)
                .map(|c| {
                    let r = mix(stream_seed ^ u64::from(w) ^ ((c as u64) << 40));
                    // Mix of calm stretches and violent jumps so round
                    // trips are exercised across phases and triggers.
                    if r.is_multiple_of(11) {
                        500.0
                    } else {
                        (r % 16) as f64
                    }
                })
                .collect()
        };
        let mut live = DriftDetector::new(channels, cfg);
        for w in 0..split {
            live.observe(&window(w));
        }
        let bytes = live.to_bytes();
        let mut restored = DriftDetector::from_bytes(&bytes)
            .ok_or_else(|| TestCaseError("state failed to deserialize".into()))?;
        prop_assert_eq!(&restored, &live);
        prop_assert_eq!(restored.to_bytes(), bytes, "re-serialization must be stable");
        for w in split..split + 100 {
            let v = window(w);
            prop_assert_eq!(live.observe(&v), restored.observe(&v), "diverged at window {}", w);
        }
        prop_assert_eq!(&restored, &live);
        prop_assert_eq!(live.to_bytes(), restored.to_bytes());
    }
}
