//! Training-data collection (paper §4 "Data collection").
//!
//! The paper collects kernel tracepoints while running the four *training*
//! workloads on NVMe, windows them once per second, extracts the five
//! features, and labels each window with its workload class. We reproduce
//! that pipeline against the simulator: the tracepoint stream flows through
//! KML's lock-free ring buffer into the [`crate::FeatureExtractor`], and
//! windows are cut on the simulated clock.
//!
//! One deliberate deviation: the window is 10 ms of *simulated* time by
//! default rather than the paper's 1 s of wall-clock time — the simulator's
//! clock only advances by charged I/O costs (there is no think time), so a
//! simulated second packs orders of magnitude more events than a wall-clock
//! second on the authors' testbed (documented in EXPERIMENTS.md).

use crate::features::{FeatureExtractor, FeatureVector};
use kernel_sim::{DeviceProfile, Sim, SimConfig};
use kml_collect::RingBuffer;
use kml_core::dataset::Dataset;
use kml_core::Result;
use kvstore::{fill_db, run_workload, FillMode, Workload, WorkloadConfig};

/// Scale parameters for training-data collection.
#[derive(Debug, Clone)]
pub struct DatagenConfig {
    /// Keys in the benchmark database.
    pub num_keys: u64,
    /// Operations per collection run.
    pub ops: u64,
    /// Page-cache capacity in pages.
    pub cache_pages: usize,
    /// Feature-window length in simulated nanoseconds.
    pub window_ns: u64,
    /// Static readahead settings to collect under (varies feature v).
    pub ra_settings_kb: Vec<u32>,
    /// One collection run per seed (adds sample diversity).
    pub seeds: Vec<u64>,
    /// Capacity of the tracepoint ring buffer.
    pub ring_capacity: usize,
}

impl Default for DatagenConfig {
    fn default() -> Self {
        DatagenConfig {
            num_keys: 1 << 20,
            ops: 20_000,
            cache_pages: 16_384,
            window_ns: 10_000_000,
            ra_settings_kb: vec![8, 32, 128, 512, 1024],
            seeds: vec![1, 2, 3],
            ring_capacity: 1 << 16,
        }
    }
}

impl DatagenConfig {
    /// Reduced scale for unit tests.
    pub fn quick() -> Self {
        DatagenConfig {
            num_keys: 1 << 16,
            ops: 6_000,
            cache_pages: 2_048,
            window_ns: 5_000_000,
            ra_settings_kb: vec![32, 512],
            seeds: vec![1, 2],
            ring_capacity: 1 << 16,
        }
    }
}

/// Class index of a workload within [`Workload::training_set`]
/// (`None` for the never-seen evaluation workloads).
pub fn class_of(workload: Workload) -> Option<usize> {
    Workload::training_set().iter().position(|&w| w == workload)
}

/// Workload of a class index.
///
/// # Panics
///
/// Panics if `class >= 4`.
pub fn workload_of_class(class: usize) -> Workload {
    Workload::training_set()[class]
}

/// Runs `workload` once under a static readahead and returns the feature
/// vector of every window that saw at least one tracepoint.
pub fn collect_windows(
    device: DeviceProfile,
    workload: Workload,
    ra_kb: u32,
    seed: u64,
    cfg: &DatagenConfig,
) -> Vec<FeatureVector> {
    let mut sim = Sim::new(SimConfig {
        device,
        cache_pages: cfg.cache_pages,
        default_ra_kb: ra_kb,
        ..SimConfig::default()
    });
    let (producer, mut consumer) = RingBuffer::with_capacity(cfg.ring_capacity).split();
    sim.attach_trace(producer);

    // Scans visit keys orders of magnitude faster than point reads; give
    // them proportionally more operations so every class yields a
    // comparable number of feature windows (class balance).
    let ops_factor = match workload {
        Workload::ReadSeq | Workload::ReadReverse => 40,
        _ => 1,
    };
    let wcfg = WorkloadConfig {
        num_keys: cfg.num_keys,
        ops: cfg.ops * ops_factor,
        seed,
        ..WorkloadConfig::new(workload)
    };
    let mut db = fill_db(&mut sim, &wcfg, FillMode::Bulk).expect("fault-free fill");
    sim.drop_caches().expect("fault-free drop_caches"); // the paper clears caches before every run
    sim.set_ra_kb(ra_kb);
    // Discard fill-phase tracepoints: training must only see the workload.
    while consumer.pop().is_some() {}

    let mut extractor = FeatureExtractor::new();
    let mut windows = Vec::new();
    let mut window_end = sim.now_ns() + cfg.window_ns;
    run_workload(&mut sim, &mut db, &wcfg, |sim| {
        while let Some(record) = consumer.pop() {
            extractor.push(&record);
        }
        while sim.now_ns() >= window_end {
            if extractor.window_count() > 0 {
                windows.push(extractor.roll_window(ra_kb as f64));
            }
            window_end += cfg.window_ns;
        }
    });
    // Close the final partial window if it saw traffic.
    while let Some(record) = consumer.pop() {
        extractor.push(&record);
    }
    if extractor.window_count() > 0 {
        windows.push(extractor.roll_window(ra_kb as f64));
    }
    windows
}

/// Captures the raw tracepoint stream of one workload run (no feature
/// extraction) — the §3.3 offline path: save with
/// [`kernel_sim::tracefile::save`], ship to user space, and train later
/// with [`windows_from_trace`].
pub fn capture_trace(
    device: DeviceProfile,
    workload: Workload,
    ra_kb: u32,
    seed: u64,
    cfg: &DatagenConfig,
) -> Vec<kernel_sim::TraceRecord> {
    let mut sim = Sim::new(SimConfig {
        device,
        cache_pages: cfg.cache_pages,
        default_ra_kb: ra_kb,
        ..SimConfig::default()
    });
    let (producer, mut consumer) = RingBuffer::with_capacity(cfg.ring_capacity).split();
    sim.attach_trace(producer);
    // Same scan-workload op scaling as the live collection path.
    let ops_factor = match workload {
        Workload::ReadSeq | Workload::ReadReverse => 40,
        _ => 1,
    };
    let wcfg = WorkloadConfig {
        num_keys: cfg.num_keys,
        ops: cfg.ops * ops_factor,
        seed,
        ..WorkloadConfig::new(workload)
    };
    let mut db = fill_db(&mut sim, &wcfg, FillMode::Bulk).expect("fault-free fill");
    sim.drop_caches().expect("fault-free drop_caches");
    sim.set_ra_kb(ra_kb);
    while consumer.pop().is_some() {} // discard fill-phase records
    let mut trace = Vec::new();
    run_workload(&mut sim, &mut db, &wcfg, |_| {
        trace.extend(consumer.drain());
    });
    trace.extend(consumer.drain());
    trace
}

/// Extracts per-window feature vectors from a captured trace — the offline
/// twin of [`collect_windows`], cutting windows on the *recorded*
/// timestamps via [`kernel_sim::tracefile::replay`].
pub fn windows_from_trace(
    trace: &[kernel_sim::TraceRecord],
    ra_kb: u32,
    window_ns: u64,
) -> Vec<FeatureVector> {
    use kernel_sim::tracefile::ReplayEvent;
    let mut extractor = FeatureExtractor::new();
    let mut windows = Vec::new();
    kernel_sim::tracefile::replay(trace, window_ns, |event| match event {
        ReplayEvent::Record(record) => extractor.push(record),
        ReplayEvent::WindowBoundary(_) => {
            if extractor.window_count() > 0 {
                windows.push(extractor.roll_window(ra_kb as f64));
            }
        }
    });
    if extractor.window_count() > 0 {
        windows.push(extractor.roll_window(ra_kb as f64));
    }
    windows
}

/// Collects the full labeled training set: the four training workloads on
/// NVMe (as the paper trains), across every configured readahead setting
/// and seed.
///
/// # Errors
///
/// Returns an error if collection produced no windows (configuration too
/// small) — a dataset cannot be built from nothing.
pub fn training_dataset(cfg: &DatagenConfig) -> Result<Dataset> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    for (class, workload) in Workload::training_set().into_iter().enumerate() {
        for &ra_kb in &cfg.ra_settings_kb {
            for &seed in &cfg.seeds {
                for fv in collect_windows(DeviceProfile::nvme(), workload, ra_kb, seed, cfg) {
                    rows.push(fv.to_vec());
                    labels.push(class);
                }
            }
        }
    }
    Dataset::from_rows(&rows, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping_is_consistent() {
        for (i, w) in Workload::training_set().into_iter().enumerate() {
            assert_eq!(class_of(w), Some(i));
            assert_eq!(workload_of_class(i), w);
        }
        assert_eq!(class_of(Workload::MixGraph), None);
        assert_eq!(class_of(Workload::UpdateRandom), None);
    }

    #[test]
    fn collection_produces_windows_with_sane_features() {
        let cfg = DatagenConfig::quick();
        let windows = collect_windows(DeviceProfile::nvme(), Workload::ReadRandom, 128, 1, &cfg);
        assert!(!windows.is_empty(), "no windows collected");
        for w in &windows {
            assert!(w[0] > 0.0, "window with zero tracepoints leaked");
            assert!(w.iter().all(|v| v.is_finite()));
            assert_eq!(w[4], 128.0);
        }
    }

    #[test]
    fn sequential_windows_look_sequential() {
        let cfg = DatagenConfig::quick();
        let seq = collect_windows(DeviceProfile::nvme(), Workload::ReadSeq, 128, 1, &cfg);
        let rnd = collect_windows(DeviceProfile::nvme(), Workload::ReadRandom, 128, 1, &cfg);
        assert!(!seq.is_empty() && !rnd.is_empty());
        let seq_diff = seq.iter().map(|w| w[3]).sum::<f64>() / seq.len() as f64;
        let rnd_diff = rnd.iter().map(|w| w[3]).sum::<f64>() / rnd.len() as f64;
        assert!(
            rnd_diff > 10.0 * seq_diff.max(1.0),
            "abs-diff failed to separate: seq {seq_diff:.1} vs random {rnd_diff:.1}"
        );
    }

    #[test]
    fn training_dataset_covers_all_classes() {
        let cfg = DatagenConfig::quick();
        let data = training_dataset(&cfg).unwrap();
        assert_eq!(data.num_classes(), 4);
        assert_eq!(data.feature_dim(), crate::NUM_FEATURES);
        for class in 0..4 {
            let count = data.labels().iter().filter(|&&l| l == class).count();
            assert!(count >= 2, "class {class} has only {count} windows");
        }
    }

    #[test]
    fn trace_capture_and_offline_windows_match_online_pipeline() {
        let cfg = DatagenConfig::quick();
        // Online: the live collect path.
        let online = collect_windows(DeviceProfile::nvme(), Workload::ReadRandom, 128, 1, &cfg);
        // Offline: capture the trace, then extract from the recording.
        let trace = capture_trace(DeviceProfile::nvme(), Workload::ReadRandom, 128, 1, &cfg);
        assert!(!trace.is_empty());
        let offline = windows_from_trace(&trace, 128, cfg.window_ns);
        assert!(!offline.is_empty());
        // Same run, same windowing: identical window count and features.
        assert_eq!(online.len(), offline.len());
        for (a, b) in online.iter().zip(&offline) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "online {a:?} vs offline {b:?}");
            }
        }
    }

    #[test]
    fn traces_survive_the_file_round_trip() {
        let cfg = DatagenConfig::quick();
        let trace = capture_trace(DeviceProfile::nvme(), Workload::ReadSeq, 128, 2, &cfg);
        let path = std::env::temp_dir().join(format!("kml-dg-{}.trc", std::process::id()));
        kernel_sim::tracefile::save(&trace, &path).unwrap();
        let loaded = kernel_sim::tracefile::load(&path).unwrap();
        assert_eq!(trace, loaded);
        std::fs::remove_file(path).unwrap();
    }
}
