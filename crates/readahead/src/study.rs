//! §4 "Studying the problem": the readahead-vs-throughput sweep.
//!
//! "We tested RocksDB with four different workloads, 20 different readahead
//! sizes (ranging from 8 to 1024), and two different storage media ... We
//! then built a mapping from the workload type to the readahead value that
//! provided the best throughput. The results showed that no single
//! readahead value maximized throughput for all workloads."
//!
//! [`ReadaheadStudy::run`] regenerates that experiment (E1 in DESIGN.md)
//! for any device/workload set, and the winning values feed the tuner's
//! class → readahead [`crate::tuner::RaPolicy`].

use kernel_sim::{DeviceProfile, Sim, SimConfig};
use kml_platform::threading;
use kvstore::{fill_db, run_workload, FillMode, Workload, WorkloadConfig};

/// The paper's sweep: 20 readahead sizes from 8 KiB to 1024 KiB.
pub const RA_SWEEP_KB: [u32; 20] = [
    8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 192, 256, 320, 384, 448, 512, 640, 768, 896, 1024,
];

/// Scale parameters of a study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Keys in the benchmark database.
    pub num_keys: u64,
    /// Operations per (workload, readahead) cell.
    pub ops: u64,
    /// Page-cache capacity in pages.
    pub cache_pages: usize,
    /// Readahead sizes to sweep, KiB.
    pub sweep_kb: Vec<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            num_keys: 1 << 20,
            ops: 20_000,
            cache_pages: 16_384,
            sweep_kb: RA_SWEEP_KB.to_vec(),
            seed: 0x57,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for unit tests and smoke runs.
    pub fn quick() -> Self {
        StudyConfig {
            num_keys: 1 << 16,
            ops: 3_000,
            cache_pages: 2_048,
            sweep_kb: vec![8, 32, 128, 512, 1024],
            seed: 0x57,
        }
    }
}

/// One cell of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyCell {
    /// Workload of this cell.
    pub workload: Workload,
    /// Readahead size of this cell, KiB.
    pub ra_kb: u32,
    /// Measured throughput, ops per simulated second.
    pub ops_per_sec: f64,
}

/// Results of a full sweep on one device.
#[derive(Debug, Clone)]
pub struct ReadaheadStudy {
    /// Device the study ran on.
    pub device: DeviceProfile,
    /// All measured cells.
    pub cells: Vec<StudyCell>,
}

impl ReadaheadStudy {
    /// Runs the sweep for the given workloads on `device`, spreading the
    /// independent cells across [`kml_platform::threading::default_workers`]
    /// worker threads (override with the `KML_REPRO_THREADS` environment
    /// variable). Cell order and values are identical to a sequential run.
    pub fn run(device: DeviceProfile, workloads: &[Workload], cfg: &StudyConfig) -> Self {
        Self::run_with_workers(device, workloads, cfg, threading::default_workers())
    }

    /// [`ReadaheadStudy::run`] with an explicit worker count (1 = inline
    /// sequential execution). Every cell builds its own simulator seeded
    /// from `cfg.seed`, so results are byte-identical at any worker count.
    pub fn run_with_workers(
        device: DeviceProfile,
        workloads: &[Workload],
        cfg: &StudyConfig,
        workers: usize,
    ) -> Self {
        let mut tasks = Vec::with_capacity(workloads.len() * cfg.sweep_kb.len());
        for &workload in workloads {
            for &ra_kb in &cfg.sweep_kb {
                tasks.push((workload, ra_kb));
            }
        }
        let cells = threading::pool_map(&tasks, workers, |_, &(workload, ra_kb)| StudyCell {
            workload,
            ra_kb,
            ops_per_sec: measure(device, workload, ra_kb, cfg),
        });
        ReadaheadStudy { device, cells }
    }

    /// Throughput of one cell (`None` if that cell was not swept).
    pub fn throughput(&self, workload: Workload, ra_kb: u32) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.ra_kb == ra_kb)
            .map(|c| c.ops_per_sec)
    }

    /// The readahead size that maximized throughput for `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `workload` was not part of the sweep.
    pub fn best_ra_kb(&self, workload: Workload) -> u32 {
        self.cells
            .iter()
            .filter(|c| c.workload == workload)
            .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
            .map(|c| c.ra_kb)
            .expect("workload was part of the sweep")
    }

    /// Cells of one workload, in sweep order (for printing the curves).
    pub fn curve(&self, workload: Workload) -> Vec<StudyCell> {
        self.cells
            .iter()
            .filter(|c| c.workload == workload)
            .copied()
            .collect()
    }

    /// Best readahead per class for [`Workload::training_set`] order — the
    /// mapping deployed into the tuner policy.
    pub fn training_class_policy(&self) -> Vec<u32> {
        Workload::training_set()
            .into_iter()
            .map(|w| self.best_ra_kb(w))
            .collect()
    }
}

/// Measures one (device, workload, readahead) cell: fresh simulator, bulk
/// fill, cold caches, fixed readahead — exactly how the paper measures its
/// static sweep.
pub fn measure(device: DeviceProfile, workload: Workload, ra_kb: u32, cfg: &StudyConfig) -> f64 {
    let mut sim = Sim::new(SimConfig {
        device,
        cache_pages: cfg.cache_pages,
        default_ra_kb: ra_kb,
        ..SimConfig::default()
    });
    // Scans visit keys far faster than point reads; scale their op budget
    // so every cell runs long enough for readahead to reach steady state.
    let ops_factor = match workload {
        Workload::ReadSeq | Workload::ReadReverse => 10,
        _ => 1,
    };
    let wcfg = WorkloadConfig {
        num_keys: cfg.num_keys,
        ops: cfg.ops * ops_factor,
        seed: cfg.seed,
        ..WorkloadConfig::new(workload)
    };
    let mut db = fill_db(&mut sim, &wcfg, FillMode::Bulk).expect("fault-free fill");
    sim.drop_caches().expect("fault-free drop_caches");
    sim.set_ra_kb(ra_kb); // files created during fill pick up the tuned value
    sim.reset_stats();
    run_workload(&mut sim, &mut db, &wcfg, |_| {}).ops_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_single_readahead_wins_everywhere() {
        // The paper's central motivating observation.
        let cfg = StudyConfig::quick();
        let study = ReadaheadStudy::run(
            DeviceProfile::sata_ssd(),
            &[Workload::ReadSeq, Workload::ReadRandom],
            &cfg,
        );
        let best_seq = study.best_ra_kb(Workload::ReadSeq);
        let best_rand = study.best_ra_kb(Workload::ReadRandom);
        assert_ne!(
            best_seq, best_rand,
            "sequential and random should prefer different readahead"
        );
        assert!(best_seq > best_rand, "seq {best_seq} !> rand {best_rand}");
    }

    #[test]
    fn sequential_curve_rises_with_readahead() {
        let cfg = StudyConfig::quick();
        let study = ReadaheadStudy::run(DeviceProfile::sata_ssd(), &[Workload::ReadSeq], &cfg);
        let lo = study.throughput(Workload::ReadSeq, 8).unwrap();
        let hi = study.throughput(Workload::ReadSeq, 1024).unwrap();
        assert!(hi > lo * 1.3, "seq: ra=1024 {hi:.0} vs ra=8 {lo:.0}");
    }

    #[test]
    fn random_curve_falls_beyond_block_size() {
        let cfg = StudyConfig::quick();
        let study = ReadaheadStudy::run(DeviceProfile::sata_ssd(), &[Workload::ReadRandom], &cfg);
        let at_32 = study.throughput(Workload::ReadRandom, 32).unwrap();
        let at_1024 = study.throughput(Workload::ReadRandom, 1024).unwrap();
        assert!(
            at_32 > at_1024 * 1.1,
            "random: ra=32 {at_32:.0} should beat ra=1024 {at_1024:.0}"
        );
    }

    #[test]
    fn policy_covers_all_training_classes() {
        let cfg = StudyConfig::quick();
        let study = ReadaheadStudy::run(DeviceProfile::nvme(), &Workload::training_set(), &cfg);
        let policy = study.training_class_policy();
        assert_eq!(policy.len(), 4);
        assert!(policy.iter().all(|&kb| cfg.sweep_kb.contains(&kb)));
    }

    #[test]
    fn unknown_cell_returns_none() {
        let cfg = StudyConfig::quick();
        let study = ReadaheadStudy::run(DeviceProfile::nvme(), &[Workload::ReadRandom], &cfg);
        assert!(study.throughput(Workload::ReadSeq, 8).is_none());
        assert!(study.throughput(Workload::ReadRandom, 7).is_none());
    }
}
