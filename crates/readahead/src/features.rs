//! The five readahead features (paper §4 "Data pre-processing and feature
//! extraction").
//!
//! "We process the collected data points every second and then extract
//! features at runtime. ... five features that had the most predictive
//! accuracy: (i) the number of tracepoints that were traced, (ii) the
//! cumulative moving average of page offsets, (iii) the cumulative moving
//! standard deviation of page offsets, (iv) the mean absolute page offset
//! differences for consecutive tracepoints, and (v) the current readahead
//! value."
//!
//! Features (ii)–(iii) are *cumulative* — they integrate over the whole run
//! (that is what separates a forward scan, whose running average climbs,
//! from a backward scan, whose running average sinks). Features (i) and
//! (iv) are per-window. Z-scoring happens in the model's attached
//! normalizer, fitted on training data.

use kernel_sim::TraceRecord;
use kml_collect::featurize::{Channel, WindowedFeatures};

/// Number of features the readahead models consume.
pub const NUM_FEATURES: usize = 5;

/// One extracted feature vector (one per window).
pub type FeatureVector = [f64; NUM_FEATURES];

/// Streaming feature extractor over the tracepoint stream.
///
/// Feed every [`TraceRecord`] with [`FeatureExtractor::push`]; call
/// [`FeatureExtractor::roll_window`] at each window boundary (once per
/// simulated second in the closed loop) to obtain the feature vector for
/// the elapsed window.
///
/// # Example
///
/// ```
/// use readahead::features::FeatureExtractor;
/// use kernel_sim::{TraceKind, TraceRecord};
///
/// let mut fx = FeatureExtractor::new();
/// for i in 0..100u64 {
///     fx.push(&TraceRecord {
///         kind: TraceKind::AddToPageCache,
///         inode: 1,
///         page_offset: i,       // perfectly sequential
///         time_ns: i * 1000,
///     });
/// }
/// let f = fx.roll_window(128.0);
/// assert_eq!(f[0], 100.0);          // tracepoints in window
/// assert!((f[3] - 1.0).abs() < 1e-9); // mean |Δoffset| = 1 (sequential)
/// assert_eq!(f[4], 128.0);          // current readahead
/// ```
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    /// The shared window engine: channel 0 is the cumulative offset
    /// statistics (paper features ii–iii), channel 1 the per-window mean
    /// absolute consecutive-offset difference (feature iv).
    windows: WindowedFeatures,
}

/// Channel index of the cumulative offset statistics.
const CH_OFFSET: usize = 0;
/// Channel index of the per-window |Δoffset| accumulator.
const CH_ABSDIFF: usize = 1;

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor {
            windows: WindowedFeatures::new(vec![Channel::cumulative(), Channel::window_abs_diff()]),
        }
    }
}

impl FeatureExtractor {
    /// Creates an empty extractor.
    pub fn new() -> Self {
        FeatureExtractor::default()
    }

    /// Folds one tracepoint record into the current window.
    pub fn push(&mut self, record: &TraceRecord) {
        let offset = record.page_offset as f64;
        self.windows.push_f64(CH_OFFSET, offset);
        self.windows.push_f64(CH_ABSDIFF, offset);
        self.windows.record();
    }

    /// Closes the current window and returns its feature vector.
    /// `current_ra_kb` is feature (v), the readahead value in force.
    ///
    /// Per-window accumulators reset; cumulative statistics persist.
    pub fn roll_window(&mut self, current_ra_kb: f64) -> FeatureVector {
        let features = [
            self.windows.window_count() as f64,
            self.windows.mean(CH_OFFSET),
            self.windows.std(CH_OFFSET),
            self.windows.mean(CH_ABSDIFF),
            current_ra_kb,
        ];
        self.windows.roll();
        features
    }

    /// Records pushed into the current (open) window.
    pub fn window_count(&self) -> u64 {
        self.windows.window_count()
    }

    /// Records pushed since creation.
    pub fn total(&self) -> u64 {
        self.windows.total()
    }

    /// Resets everything, including the cumulative statistics (a fresh run).
    pub fn reset(&mut self) {
        self.windows.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::TraceKind;

    fn rec(offset: u64) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::AddToPageCache,
            inode: 1,
            page_offset: offset,
            time_ns: 0,
        }
    }

    #[test]
    fn sequential_and_random_streams_differ_in_absdiff() {
        let mut seq = FeatureExtractor::new();
        for i in 0..1000 {
            seq.push(&rec(i));
        }
        let fseq = seq.roll_window(128.0);

        let mut random = FeatureExtractor::new();
        let mut x = 99u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            random.push(&rec(x % 100_000));
        }
        let frand = random.roll_window(128.0);

        assert!(fseq[3] < 2.0);
        assert!(frand[3] > 1_000.0);
        assert!(frand[2] > fseq[2], "random std should exceed sequential");
    }

    #[test]
    fn forward_and_backward_scans_differ_in_cumulative_mean_trajectory() {
        let n = 10_000u64;
        let mut fwd = FeatureExtractor::new();
        let mut bwd = FeatureExtractor::new();
        // First half of each scan.
        for i in 0..n / 2 {
            fwd.push(&rec(i));
            bwd.push(&rec(n - 1 - i));
        }
        let f_fwd = fwd.roll_window(128.0);
        let f_bwd = bwd.roll_window(128.0);
        // Forward scan's running average sits low, backward's sits high.
        assert!(f_fwd[1] < n as f64 * 0.3);
        assert!(f_bwd[1] > n as f64 * 0.7);
        // Both look "sequential" by absolute diff.
        assert!((f_fwd[3] - 1.0).abs() < 1e-9);
        assert!((f_bwd[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_counters_reset_but_cumulative_persists() {
        let mut fx = FeatureExtractor::new();
        for i in 0..10 {
            fx.push(&rec(i));
        }
        let w1 = fx.roll_window(128.0);
        assert_eq!(w1[0], 10.0);
        assert_eq!(fx.window_count(), 0);
        for i in 10..15 {
            fx.push(&rec(i));
        }
        let w2 = fx.roll_window(128.0);
        assert_eq!(w2[0], 5.0);
        // Cumulative mean covers all 15 offsets 0..15 → mean 7.
        assert!((w2[1] - 7.0).abs() < 1e-9);
        assert_eq!(fx.total(), 15);
    }

    #[test]
    fn empty_window_yields_neutral_features() {
        let mut fx = FeatureExtractor::new();
        let f = fx.roll_window(64.0);
        assert_eq!(f, [0.0, 0.0, 0.0, 0.0, 64.0]);
    }

    #[test]
    fn reset_clears_cumulative_state() {
        let mut fx = FeatureExtractor::new();
        for i in 0..100 {
            fx.push(&rec(i * 1000));
        }
        fx.reset();
        fx.push(&rec(5));
        let f = fx.roll_window(8.0);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[1], 5.0);
        assert_eq!(f[2], 0.0);
    }

    /// The inline featurization this module used before the shared
    /// `kml_collect::featurize` engine existed, kept verbatim as the parity
    /// reference: the refactored extractor must reproduce it bit-for-bit
    /// (the kml-dst pinned trace hashes depend on it).
    #[derive(Default)]
    struct LegacyExtractor {
        cumulative: kml_collect::stats::CumulativeStats,
        window_count: u64,
        window_absdiff: kml_collect::stats::AbsDiffMean,
        total: u64,
    }

    impl LegacyExtractor {
        fn push(&mut self, record: &TraceRecord) {
            let offset = record.page_offset as f64;
            self.cumulative.push(offset);
            self.window_absdiff.push(offset);
            self.window_count += 1;
            self.total += 1;
        }

        fn roll_window(&mut self, current_ra_kb: f64) -> FeatureVector {
            let features = [
                self.window_count as f64,
                self.cumulative.mean(),
                self.cumulative.std(),
                self.window_absdiff.mean(),
                current_ra_kb,
            ];
            self.window_count = 0;
            self.window_absdiff.reset();
            features
        }
    }

    #[test]
    fn shared_engine_is_bit_identical_to_the_legacy_inline_featurization() {
        let mut new = FeatureExtractor::new();
        let mut old = LegacyExtractor::default();
        let mut x = 0xDEAD_BEEFu64;
        for window in 0..50u64 {
            // Vary window sizes and access patterns (empty windows included).
            let n = (window * 7) % 13;
            for i in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let offset = if window % 3 == 0 {
                    window * 100 + i
                } else {
                    x % 1_000_000
                };
                new.push(&rec(offset));
                old.push(&rec(offset));
            }
            let ra = [16.0, 128.0, 1024.0][(window % 3) as usize];
            let f_new = new.roll_window(ra);
            let f_old = old.roll_window(ra);
            for k in 0..NUM_FEATURES {
                assert_eq!(
                    f_new[k].to_bits(),
                    f_old[k].to_bits(),
                    "feature {k} diverged in window {window}: {} vs {}",
                    f_new[k],
                    f_old[k]
                );
            }
        }
        assert_eq!(new.total(), old.total);
    }

    #[test]
    fn absdiff_does_not_leak_across_windows() {
        let mut fx = FeatureExtractor::new();
        fx.push(&rec(0));
        fx.push(&rec(1_000_000));
        fx.roll_window(128.0);
        // New window: first diff pair starts fresh.
        fx.push(&rec(10));
        fx.push(&rec(11));
        let f = fx.roll_window(128.0);
        assert!((f[3] - 1.0).abs() < 1e-9, "window absdiff leaked: {}", f[3]);
    }
}
