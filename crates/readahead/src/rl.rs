//! Reinforcement-learning readahead tuning (paper §3.3 + §6 future work).
//!
//! "Using reinforcement learning, we can build ML approaches that can adapt
//! themselves based on the feedback from the system. For example, when we
//! apply our readahead neural network on applications that use different
//! file access patterns — and hence not represented in our training dataset
//! — the readahead neural network may not perform as well. In that case, we
//! can build a feedback system in the kernel."
//!
//! [`BanditTuner`] is that feedback system, kept deliberately simple (it
//! must run in a kernel): a UCB1 multi-armed bandit whose arms are
//! readahead sizes and whose reward is the *operation completion rate*
//! observed in the window after pulling an arm (a VFS-boundary counter —
//! deliberately not the tracepoint volume, which counts wasted prefetch
//! pages as if they were work). No training data, no classifier — it
//! adapts to *any* workload, at the cost of spending windows exploring.
//! The `repro rl` experiment compares it against the supervised tuner.

use kernel_sim::Sim;

/// Per-arm statistics of the bandit.
#[derive(Debug, Clone, Copy, Default)]
struct Arm {
    pulls: u64,
    mean_reward: f64,
}

/// One entry of the bandit's decision log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BanditDecision {
    /// Simulated time of the decision, ns.
    pub time_ns: u64,
    /// Readahead applied, KiB.
    pub ra_kb: u32,
    /// Reward credited to the *previous* arm (ops in its window).
    pub reward: f64,
}

/// UCB1 bandit over readahead sizes, rewarded by per-window throughput.
///
/// Drive it exactly like [`crate::KmlTuner`]: call [`BanditTuner::on_op`]
/// after every workload operation.
#[derive(Debug)]
pub struct BanditTuner {
    arms_kb: Vec<u32>,
    arms: Vec<Arm>,
    exploration: f64,
    window_ns: u64,
    next_window_end: Option<u64>,
    window_start: u64,
    window_ops: u64,
    current_arm: usize,
    total_pulls: u64,
    decisions: Vec<BanditDecision>,
}

impl BanditTuner {
    /// Creates a bandit over the given readahead arms.
    ///
    /// `exploration` scales the UCB bonus (√2 is the classic choice; lower
    /// values exploit sooner, which suits stable workloads).
    ///
    /// # Panics
    ///
    /// Panics if `arms_kb` is empty or `window_ns == 0`.
    pub fn new(arms_kb: Vec<u32>, exploration: f64, window_ns: u64) -> Self {
        assert!(!arms_kb.is_empty(), "bandit needs at least one arm");
        assert!(window_ns > 0, "window must be positive");
        let n = arms_kb.len();
        BanditTuner {
            arms_kb,
            arms: vec![Arm::default(); n],
            exploration,
            window_ns,
            next_window_end: None,
            window_start: 0,
            window_ops: 0,
            current_arm: 0,
            total_pulls: 0,
            decisions: Vec::new(),
        }
    }

    /// The classic sweep arms: 8..1024 KiB in octaves, with √2 exploration.
    pub fn with_default_arms(window_ns: u64) -> Self {
        BanditTuner::new(
            vec![8, 16, 32, 64, 128, 256, 512, 1024],
            std::f64::consts::SQRT_2,
            window_ns,
        )
    }

    /// The hook invoked after every workload operation.
    pub fn on_op(&mut self, sim: &mut Sim) {
        self.window_ops += 1;
        let now = sim.now_ns();
        let end = *self.next_window_end.get_or_insert_with(|| {
            self.window_start = now;
            now + self.window_ns
        });
        if now < end {
            return;
        }

        // Credit the arm that was active for the elapsed window with the
        // operation completion rate it achieved.
        let elapsed = (now - self.window_start).max(1) as f64 / 1e9;
        let reward = self.window_ops as f64 / elapsed;
        let arm = &mut self.arms[self.current_arm];
        arm.pulls += 1;
        arm.mean_reward += (reward - arm.mean_reward) / arm.pulls as f64;
        self.total_pulls += 1;

        // UCB1 selection for the next window.
        let next_arm = self.select_arm();
        self.current_arm = next_arm;
        let ra_kb = self.arms_kb[next_arm];
        sim.set_ra_kb(ra_kb);
        self.decisions.push(BanditDecision {
            time_ns: now,
            ra_kb,
            reward,
        });

        self.window_ops = 0;
        self.window_start = now;
        let mut next = end;
        while next <= now {
            next += self.window_ns;
        }
        self.next_window_end = Some(next);
    }

    fn select_arm(&self) -> usize {
        // Pull every arm once first.
        if let Some(unpulled) = self.arms.iter().position(|a| a.pulls == 0) {
            return unpulled;
        }
        // Normalize rewards so the exploration bonus is scale-free.
        let max_mean = self
            .arms
            .iter()
            .map(|a| a.mean_reward)
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let ln_total = kml_core::math::ln(self.total_pulls as f64);
        let mut best = 0;
        let mut best_score = f64::MIN;
        for (i, arm) in self.arms.iter().enumerate() {
            let bonus = self.exploration * kml_core::math::sqrt(ln_total / arm.pulls as f64);
            let score = arm.mean_reward / max_mean + bonus;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// The arm (readahead KiB) currently in force.
    pub fn current_ra_kb(&self) -> u32 {
        self.arms_kb[self.current_arm]
    }

    /// The arm with the highest observed mean reward so far.
    pub fn best_arm_kb(&self) -> u32 {
        let mut best = 0;
        for (i, arm) in self.arms.iter().enumerate() {
            if arm.mean_reward > self.arms[best].mean_reward {
                best = i;
            }
        }
        self.arms_kb[best]
    }

    /// Windows completed (arm pulls) so far.
    pub fn pulls(&self) -> u64 {
        self.total_pulls
    }

    /// The decision log.
    pub fn decisions(&self) -> &[BanditDecision] {
        &self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::{DeviceProfile, SimConfig};

    fn driven_bandit(
        arms: Vec<u32>,
        drive: impl Fn(&mut Sim, &mut dyn FnMut(&mut Sim)),
    ) -> BanditTuner {
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::sata_ssd(),
            cache_pages: 1024,
            ..SimConfig::default()
        });
        let mut bandit = BanditTuner::new(arms, 0.5, 2_000_000);
        drive(&mut sim, &mut |sim| bandit.on_op(sim));
        bandit
    }

    #[test]
    fn bandit_explores_every_arm_first() {
        let bandit = driven_bandit(vec![8, 128, 1024], |sim, tick| {
            let f = sim.create_file(1 << 18);
            let mut x = 1u64;
            for _ in 0..3_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                sim.read(f, (x >> 14) % ((1 << 18) - 4), 4).unwrap();
                tick(sim);
            }
        });
        assert!(bandit.pulls() >= 3, "only {} pulls", bandit.pulls());
        // All three arms appear in the decision log.
        let mut seen: Vec<u32> = bandit.decisions().iter().map(|d| d.ra_kb).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![8, 128, 1024]);
    }

    #[test]
    fn bandit_converges_toward_better_arm_for_random_reads() {
        // Random block reads: small readahead beats huge readahead. After
        // warm-up, the bandit should pull the small arm far more often.
        let bandit = driven_bandit(vec![16, 1024], |sim, tick| {
            let f = sim.create_file(1 << 20);
            let mut x = 3u64;
            for _ in 0..40_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                sim.read(f, (x >> 14) % ((1 << 20) - 4), 4).unwrap();
                tick(sim);
            }
        });
        assert!(bandit.pulls() > 20, "too few windows: {}", bandit.pulls());
        assert_eq!(
            bandit.best_arm_kb(),
            16,
            "bandit should learn small readahead wins for random reads"
        );
        // Exploitation dominates the tail of the decision log.
        let tail = &bandit.decisions()[bandit.decisions().len() / 2..];
        let small = tail.iter().filter(|d| d.ra_kb == 16).count();
        assert!(
            small * 2 > tail.len(),
            "tail pulls of the good arm: {small}/{}",
            tail.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_arms_panics() {
        let _ = BanditTuner::new(vec![], 1.0, 1000);
    }

    #[test]
    fn idle_clock_rotates_arms_safely() {
        let mut sim = Sim::new(SimConfig::default());
        let mut bandit = BanditTuner::with_default_arms(1_000_000);
        // Pure think time: every window sees the same (trivial) op rate, so
        // rewards are uninformative — the bandit must keep exploring
        // without panicking or getting stuck.
        for _ in 0..20 {
            sim.advance(2_000_000);
            bandit.on_op(&mut sim);
        }
        assert!(bandit.pulls() > 0);
    }
}
