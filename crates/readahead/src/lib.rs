//! # readahead — the paper's §4 use case on top of KML
//!
//! Everything specific to *"Use case: improving readahead"*:
//!
//! - [`features`] — turns the tracepoint stream into the paper's five
//!   features, windowed once per (simulated) second.
//! - [`study`] — §4 "Studying the problem": sweeps readahead sizes across
//!   workloads and devices, building the workload-class → best-readahead
//!   mapping (experiment E1 / the motivating curves).
//! - [`datagen`] — collects labeled training windows by running the four
//!   training workloads (readrandom, readseq, readreverse,
//!   readrandomwriterandom) on NVMe, as the paper does.
//! - [`model`] — builds/trains the readahead neural network (three linear
//!   layers + sigmoids, cross-entropy, SGD lr=0.01 momentum=0.99) and the
//!   comparison decision tree, with k-fold validation (E2).
//! - [`tuner`] — the deployed KML application: drains tracepoints, extracts
//!   features once a second, infers the workload class, and actuates the
//!   readahead size (Figure 1's green closed loop).
//! - [`closed_loop`] — end-to-end vanilla-vs-KML benchmark runs producing
//!   Table 2 rows (E3) and the Figure 2 timeline (E4).
//! - [`rl`] — the paper's future-work reinforcement-learning direction: a
//!   UCB1 bandit that tunes readahead from throughput feedback alone.
//! - [`seq`] — sequence-native workload classification with the RNN/LSTM
//!   models of `kml_core::recurrent` (the other §6 future-work item).
//!
//! ## Quick taste
//!
//! ```no_run
//! use readahead::closed_loop;
//! use readahead::model::LoopConfig;
//! use kernel_sim::DeviceProfile;
//! use kvstore::Workload;
//!
//! let cfg = LoopConfig::default();
//! let trained = readahead::model::train_paper_model(&cfg).unwrap();
//! let outcome = closed_loop::compare(
//!     Workload::MixGraph,
//!     DeviceProfile::nvme(),
//!     &trained,
//!     &cfg,
//! ).unwrap();
//! println!("mixgraph speedup on NVMe: {:.2}x", outcome.speedup);
//! ```

pub mod closed_loop;
pub mod datagen;
pub mod features;
pub mod model;
pub mod rl;
pub mod seq;
pub mod study;
pub mod tuner;

pub use features::{FeatureExtractor, FeatureVector, NUM_FEATURES};
pub use study::{ReadaheadStudy, RA_SWEEP_KB};
pub use tuner::{KmlTuner, RaPolicy, TunerModel};
