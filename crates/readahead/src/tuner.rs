//! The deployed KML readahead application (paper §3.3 execution flow).
//!
//! "(1) KML starts collecting data from the memory management component;
//! (2) the collected data is processed and normalized ...; (3) features are
//! passed to the KML engine for inference; (4) KML's engine ... generates
//! predictions; and (5) finally, the KML application takes actions based on
//! the predictions just made — e.g., changes readahead sizes using block
//! device layer ioctls and updates the readahead values in struct files."
//!
//! [`KmlTuner`] is that loop: it drains the tracepoint ring buffer on every
//! hook invocation, and once per window rolls the features, infers the
//! workload class (neural network or decision tree), and actuates the
//! class's best readahead value from the [`RaPolicy`].

use crate::datagen::workload_of_class;
use crate::features::{FeatureExtractor, FeatureVector};
use kernel_sim::{Sim, TraceRecord};
use kml_collect::ringbuf::Consumer;
use kml_core::dtree::DecisionTree;
use kml_core::model::Model;
use kml_core::Result;
use kml_lifecycle::{ArtifactError, ArtifactKind, LifecycleTarget, ShadowStats};
use kml_telemetry::{Counter, Gauge, Registry, Span, StageSet};

/// Metric name prefix for the tuner's loop-stage and decision metrics.
pub const LOOP_METRIC_PREFIX: &str = "readahead.loop";

/// Telemetry for the closed loop itself: wall-clock span per stage
/// (collect/featurize/infer/actuate — the in-loop counterpart of the
/// paper's Table 3 overhead numbers) plus decision accounting.
#[derive(Debug)]
struct TunerTelemetry {
    stages: StageSet,
    decision_total: Counter,
    actuation_total: Counter,
    class_total: Vec<Counter>,
    ra_bytes: Gauge,
    ring_dropped: Gauge,
}

impl TunerTelemetry {
    fn noop() -> Self {
        TunerTelemetry {
            stages: StageSet::noop(),
            decision_total: Counter::noop(),
            actuation_total: Counter::noop(),
            class_total: Vec::new(),
            ra_bytes: Gauge::noop(),
            ring_dropped: Gauge::noop(),
        }
    }

    fn bind(registry: &Registry, classes: usize) -> Self {
        let p = LOOP_METRIC_PREFIX;
        TunerTelemetry {
            stages: StageSet::register(registry, p),
            decision_total: registry.counter(&format!("{p}.decision_total")),
            actuation_total: registry.counter(&format!("{p}.actuation_total")),
            class_total: (0..classes)
                .map(|c| {
                    let name = workload_of_class(c.min(3)).name();
                    registry.counter(&format!("{p}.class.{name}_total"))
                })
                .collect(),
            ra_bytes: registry.gauge(&format!("{p}.ra_bytes")),
            ring_dropped: registry.gauge(&format!("{p}.ring_dropped_total")),
        }
    }
}

/// Class → readahead-KiB mapping, built from a [`crate::ReadaheadStudy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaPolicy {
    per_class_kb: Vec<u32>,
}

impl RaPolicy {
    /// Builds a policy from per-class best readahead values (indexed by
    /// training-class id).
    ///
    /// # Panics
    ///
    /// Panics if `per_class_kb` is empty.
    pub fn new(per_class_kb: Vec<u32>) -> Self {
        assert!(!per_class_kb.is_empty(), "policy needs at least one class");
        RaPolicy { per_class_kb }
    }

    /// Best readahead for a class (clamped to the last entry for overflow).
    pub fn ra_kb_for(&self, class: usize) -> u32 {
        self.per_class_kb[class.min(self.per_class_kb.len() - 1)]
    }

    /// Number of classes the policy covers.
    pub fn classes(&self) -> usize {
        self.per_class_kb.len()
    }
}

/// Which trained model drives the tuner.
#[derive(Debug)]
pub enum TunerModel {
    /// The readahead neural network (f32, as deployed in-kernel).
    NeuralNet(Box<Model<f32>>),
    /// The comparison decision tree.
    Tree(DecisionTree),
    /// Inference is served by a shared fleet model server: the tenant's
    /// harness calls [`KmlTuner::poll_window`]/[`KmlTuner::apply_class`]
    /// around a batched remote prediction, so local `predict` is a
    /// deployment error.
    Remote,
}

impl TunerModel {
    /// Predicts the workload class for a feature vector.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the underlying model, and
    /// rejects local prediction on [`TunerModel::Remote`].
    pub fn predict(&mut self, features: &[f64]) -> Result<usize> {
        match self {
            TunerModel::NeuralNet(m) => m.predict(features),
            TunerModel::Tree(t) => t.predict(features),
            TunerModel::Remote => Err(kml_core::KmlError::InvalidConfig(
                "remote-served tuner has no local model".into(),
            )),
        }
    }
}

/// One entry of the tuner's decision log (drives Figure 2's Y2 axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerDecision {
    /// Simulated time of the decision, ns.
    pub time_ns: u64,
    /// Predicted workload class.
    pub class: usize,
    /// Readahead applied, KiB.
    pub ra_kb: u32,
    /// Generation of the model that took the decision (1 until the first
    /// lifecycle swap) — the rollback proof reads this field.
    pub generation: u64,
}

/// The closed-loop readahead tuner.
#[derive(Debug)]
pub struct KmlTuner {
    model: TunerModel,
    policy: RaPolicy,
    extractor: FeatureExtractor,
    consumer: Consumer<TraceRecord>,
    window_ns: u64,
    next_window_end: Option<u64>,
    current_ra_kb: u32,
    /// Class predicted in the previous window (hysteresis state).
    last_class: Option<usize>,
    /// Whether actuation waits for two agreeing windows (default true).
    hysteresis: bool,
    decisions: Vec<TunerDecision>,
    telemetry: TunerTelemetry,
    telemetry_bound: bool,
    /// Generation of the active model (1 until the first lifecycle swap).
    model_generation: u64,
    /// Staged shadow candidate: infers on every window the active model
    /// sees, never actuates.
    shadow: Option<TunerModel>,
    shadow_stats: ShadowStats,
    /// The shadow's prediction for the window most recently returned by
    /// [`KmlTuner::poll_window`], folded into the agreement stats by the
    /// matching [`KmlTuner::apply_class`].
    pending_shadow_class: Option<usize>,
}

impl KmlTuner {
    /// Creates a tuner.
    ///
    /// - `model`/`policy`: the trained classifier and class→readahead map.
    /// - `consumer`: the read end of the ring buffer attached to the sim.
    /// - `window_ns`: inference cadence on the simulated clock (the paper
    ///   infers once per second).
    /// - `initial_ra_kb`: the readahead in force before the first decision.
    pub fn new(
        model: TunerModel,
        policy: RaPolicy,
        consumer: Consumer<TraceRecord>,
        window_ns: u64,
        initial_ra_kb: u32,
    ) -> Self {
        KmlTuner {
            model,
            policy,
            extractor: FeatureExtractor::new(),
            consumer,
            window_ns,
            next_window_end: None,
            current_ra_kb: initial_ra_kb,
            last_class: None,
            hysteresis: true,
            decisions: Vec::new(),
            telemetry: TunerTelemetry::noop(),
            telemetry_bound: false,
            model_generation: 1,
            shadow: None,
            shadow_stats: ShadowStats::default(),
            pending_shadow_class: None,
        }
    }

    /// Disables/enables the two-window agreement requirement before
    /// actuating (on by default). Exposed for the hysteresis ablation.
    pub fn set_hysteresis(&mut self, enabled: bool) {
        self.hysteresis = enabled;
    }

    /// The hook invoked after every workload operation: drains tracepoints
    /// and, at window boundaries, infers and actuates.
    ///
    /// # Errors
    ///
    /// Propagates model prediction failures (dimension mismatch, or a
    /// [`TunerModel::Remote`] tuner driven locally — deployment bugs, not
    /// runtime conditions).
    pub fn on_op(&mut self, sim: &mut Sim) -> Result<()> {
        if let Some(features) = self.poll_window(sim) {
            let class = {
                // The span owns a cloned handle, so timing holds no borrow
                // of self across the model call.
                let span = Span::start(&self.telemetry.stages.infer_ns);
                let class = self.model.predict(&features)?;
                span.finish();
                class
            };
            self.apply_class(sim, class);
        }
        Ok(())
    }

    /// Runs the *active* model on a window's feature vector (inside the
    /// inference span), without actuating. Continual-learning harnesses
    /// use this between [`Self::poll_window`] and [`Self::apply_class`]
    /// so drift detection and reservoir sampling can observe the window
    /// before the decision lands.
    ///
    /// # Errors
    ///
    /// Propagates model prediction failures, exactly like
    /// [`Self::on_op`].
    pub fn predict_active(&mut self, features: &FeatureVector) -> Result<usize> {
        let span = Span::start(&self.telemetry.stages.infer_ns);
        let class = self.model.predict(features)?;
        span.finish();
        Ok(class)
    }

    /// The deterministic label oracle continual retraining trains
    /// against: sequential streams have near-unit mean |Δoffset|
    /// (feature 3), random streams jump by whole file spans. Pure
    /// function of the features — usable at any worker count.
    pub fn heuristic_class(features: &FeatureVector) -> usize {
        if features[3] <= 16.0 {
            1 // sequential => large readahead
        } else {
            0 // random => minimal readahead
        }
    }

    /// Drains tracepoints and, when a window has closed with traffic in it,
    /// rolls and returns the window's feature vector.
    ///
    /// This is `on_op` with the inference step cut out: the caller owns
    /// what happens between `poll_window` returning `Some(features)` and
    /// the matching [`Self::apply_class`] call. The fleet's shared model
    /// server uses exactly that seam to batch feature vectors from many
    /// tenants into one forward pass; because the simulated clock does not
    /// advance between the two calls, the split loop is bit-identical to
    /// the fused `on_op` loop.
    pub fn poll_window(&mut self, sim: &mut Sim) -> Option<FeatureVector> {
        if !self.telemetry_bound {
            // Bind once to whatever registry the sim carries (a no-op
            // registry yields no-op handles, so unattached runs cost
            // nothing beyond this one-time setup).
            self.telemetry = TunerTelemetry::bind(sim.telemetry(), self.policy.classes());
            self.telemetry_bound = true;
        }
        {
            let span = Span::start(&self.telemetry.stages.collect_ns);
            while let Some(record) = self.consumer.pop() {
                self.extractor.push(&record);
            }
            span.finish();
        }
        let now = sim.now_ns();
        let end = *self.next_window_end.get_or_insert(now + self.window_ns);
        if now < end {
            return None;
        }
        // Window closed: roll features unless the window was idle (idle
        // windows are skipped entirely — nothing to learn from).
        let features = if self.extractor.window_count() > 0 {
            let featurize = &self.telemetry.stages.featurize_ns;
            let (extractor, ra) = (&mut self.extractor, self.current_ra_kb as f64);
            Some(featurize.time(|| extractor.roll_window(ra)))
        } else {
            None
        };
        let mut next = end;
        while next <= now {
            next += self.window_ns;
        }
        self.next_window_end = Some(next);
        if let (Some(f), Some(shadow)) = (&features, &mut self.shadow) {
            // Shadow inference on the exact window the active model will
            // see; the prediction is only recorded, never actuated.
            match shadow.predict(f) {
                Ok(class) => self.pending_shadow_class = Some(class),
                Err(_) => {
                    self.shadow_stats.errors += 1;
                    self.pending_shadow_class = None;
                }
            }
        }
        features
    }

    /// Applies a predicted class for the window most recently returned by
    /// [`Self::poll_window`]: hysteresis, actuation, and decision logging
    /// (steps 4-5 of the §3.3 flow).
    ///
    /// Hysteresis: actuate only when two consecutive windows agree, so a
    /// single misclassified window (the Figure 2 fluctuations) cannot
    /// whipsaw the readahead setting.
    pub fn apply_class(&mut self, sim: &mut Sim, class: usize) {
        let now = sim.now_ns();
        if self.shadow.is_some() {
            if let Some(shadow_class) = self.pending_shadow_class.take() {
                self.shadow_stats.record(shadow_class == class);
            }
        }
        let confirmed = !self.hysteresis || self.last_class == Some(class);
        self.last_class = Some(class);
        let ra_kb = if confirmed {
            let target = self.policy.ra_kb_for(class);
            if target != self.current_ra_kb {
                let span = Span::start(&self.telemetry.stages.actuate_ns);
                sim.set_ra_kb(target);
                span.finish();
                self.current_ra_kb = target;
                self.telemetry.actuation_total.inc();
            }
            target
        } else {
            self.current_ra_kb
        };
        self.telemetry.decision_total.inc();
        if let Some(c) = self.telemetry.class_total.get(class) {
            c.inc();
        }
        self.telemetry.ra_bytes.set(u64::from(ra_kb) * 1024);
        self.telemetry.ring_dropped.set(self.consumer.dropped());
        self.decisions.push(TunerDecision {
            time_ns: now,
            class,
            ra_kb,
            generation: self.model_generation,
        });
    }

    /// Replaces the active model under an explicit generation tag. The
    /// hysteresis state resets — the new model's first window should not be
    /// confirmed by its predecessor's last prediction.
    pub fn swap_model(&mut self, model: TunerModel, generation: u64) {
        self.model = model;
        self.model_generation = generation;
        self.last_class = None;
    }

    /// Stages a shadow candidate (replacing any previous one and resetting
    /// its stats). The active model and the readahead knob are untouched.
    pub fn stage_shadow_model(&mut self, model: TunerModel) {
        self.shadow = Some(model);
        self.shadow_stats = ShadowStats::default();
        self.pending_shadow_class = None;
    }

    /// Whether a shadow candidate is staged.
    pub fn shadow_staged(&self) -> bool {
        self.shadow.is_some()
    }

    /// The active model's generation tag.
    pub fn model_generation(&self) -> u64 {
        self.model_generation
    }

    /// Decodes a readahead `.kmlm` artifact into a deployable model,
    /// cross-checking its class count against this tuner's policy.
    fn decode_artifact(&self, bytes: &[u8]) -> std::result::Result<TunerModel, ArtifactError> {
        let loaded = kml_lifecycle::load_model_for::<f32>(bytes, ArtifactKind::Readahead)?;
        if loaded.model.output_dim() != self.policy.classes() {
            return Err(ArtifactError::ClassMismatch {
                artifact: loaded.model.output_dim(),
                policy: self.policy.classes(),
            });
        }
        Ok(TunerModel::NeuralNet(Box::new(loaded.model)))
    }

    /// The readahead currently in force, KiB.
    pub fn current_ra_kb(&self) -> u32 {
        self.current_ra_kb
    }

    /// All decisions taken so far.
    pub fn decisions(&self) -> &[TunerDecision] {
        &self.decisions
    }

    /// Tracepoint records lost to ring-buffer overwrites.
    pub fn records_dropped(&self) -> u64 {
        self.consumer.dropped()
    }

    /// Human-readable summary of the most recent decision.
    pub fn last_decision_summary(&self) -> Option<String> {
        self.decisions.last().map(|d| {
            format!(
                "t={:.3}s class={} ({}) ra={}KiB",
                d.time_ns as f64 / 1e9,
                d.class,
                workload_of_class(d.class.min(3)).name(),
                d.ra_kb
            )
        })
    }
}

impl LifecycleTarget for KmlTuner {
    /// Atomic by construction: the artifact is fully decoded and verified
    /// before any tuner state changes; a failed load leaves the model, the
    /// generation, and the readahead knob exactly as they were.
    fn install_artifact(
        &mut self,
        bytes: &[u8],
        generation: u64,
    ) -> std::result::Result<(), ArtifactError> {
        let model = self.decode_artifact(bytes)?;
        self.swap_model(model, generation);
        Ok(())
    }

    fn stage_shadow_artifact(&mut self, bytes: &[u8]) -> std::result::Result<(), ArtifactError> {
        let model = self.decode_artifact(bytes)?;
        self.stage_shadow_model(model);
        Ok(())
    }

    fn clear_shadow(&mut self) {
        self.shadow = None;
        self.shadow_stats = ShadowStats::default();
        self.pending_shadow_class = None;
    }

    fn generation(&self) -> u64 {
        self.model_generation
    }

    fn shadow_stats(&self) -> ShadowStats {
        self.shadow_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::{DeviceProfile, SimConfig};
    use kml_collect::RingBuffer;
    use kml_core::dataset::Dataset;
    use kml_core::dtree::DecisionTreeConfig;

    #[test]
    fn policy_lookup_and_clamping() {
        let p = RaPolicy::new(vec![8, 1024, 32, 128]);
        assert_eq!(p.ra_kb_for(0), 8);
        assert_eq!(p.ra_kb_for(3), 128);
        assert_eq!(p.ra_kb_for(99), 128); // clamped
        assert_eq!(p.classes(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_policy_panics() {
        let _ = RaPolicy::new(vec![]);
    }

    /// A stub decision tree that always predicts by thresholding feature 3
    /// (mean abs diff): big → class 0 (random), small → class 1 (seq).
    fn stub_tree() -> DecisionTree {
        let data = Dataset::from_rows(
            &[
                vec![100.0, 0.0, 0.0, 5000.0, 128.0],
                vec![100.0, 0.0, 0.0, 6000.0, 128.0],
                vec![100.0, 0.0, 0.0, 1.0, 128.0],
                vec![100.0, 0.0, 0.0, 2.0, 128.0],
            ],
            &[0, 0, 1, 1],
        )
        .unwrap();
        DecisionTree::fit(&data, DecisionTreeConfig::default()).unwrap()
    }

    #[test]
    fn tuner_retunes_at_window_boundaries() {
        let mut sim = Sim::new(SimConfig {
            device: DeviceProfile::sata_ssd(),
            cache_pages: 2048,
            ..SimConfig::default()
        });
        let (producer, consumer) = RingBuffer::with_capacity(1 << 14).split();
        sim.attach_trace(producer);
        let f = sim.create_file(1 << 20);

        // Policy: class 0 (random) → 16 KiB, class 1 (seq) → 1024 KiB.
        let mut tuner = KmlTuner::new(
            TunerModel::Tree(stub_tree()),
            RaPolicy::new(vec![16, 1024]),
            consumer,
            1_000_000, // 1 ms windows so the test crosses many
            128,
        );

        // Phase 1: random reads → the tuner should settle at 16 KiB.
        let mut x = 5u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sim.read(f, (x >> 16) % ((1 << 20) - 8), 4).unwrap();
            tuner.on_op(&mut sim).unwrap();
        }
        assert_eq!(tuner.current_ra_kb(), 16, "random phase mis-tuned");
        assert!(!tuner.decisions().is_empty());

        // Phase 2: sequential scan → the tuner should move to 1024 KiB.
        for p in 0..20_000u64 {
            sim.read(f, p, 1).unwrap();
            tuner.on_op(&mut sim).unwrap();
        }
        assert_eq!(tuner.current_ra_kb(), 1024, "sequential phase mis-tuned");
        // Decisions recorded with monotone timestamps.
        let d = tuner.decisions();
        assert!(d.windows(2).all(|w| w[0].time_ns <= w[1].time_ns));
    }

    /// Trains nothing: an untrained f32 net with the right dims, saved as
    /// a readahead artifact.
    fn artifact(seed: u64, classes: usize) -> Vec<u8> {
        let mut m = kml_core::model::ModelBuilder::readahead_paper_topology(5, classes)
            .seed(seed)
            .build::<f32>()
            .unwrap();
        kml_lifecycle::save_model(ArtifactKind::Readahead, &mut m).unwrap()
    }

    #[test]
    fn lifecycle_swap_shadow_and_atomic_failure() {
        let mut sim = Sim::new(SimConfig::default());
        let (producer, consumer) = RingBuffer::with_capacity(1 << 14).split();
        sim.attach_trace(producer);
        let f = sim.create_file(1 << 20);
        let mut tuner = KmlTuner::new(
            TunerModel::Tree(stub_tree()),
            RaPolicy::new(vec![16, 1024]),
            consumer,
            1_000_000,
            128,
        );
        assert_eq!(tuner.model_generation(), 1);

        // Install a real artifact as generation 2 and stage a shadow.
        tuner.install_artifact(&artifact(7, 2), 2).unwrap();
        assert_eq!(tuner.model_generation(), 2);
        tuner.stage_shadow_artifact(&artifact(8, 2)).unwrap();
        assert!(tuner.shadow_staged());

        // Drive traffic: decisions carry the generation, the shadow
        // accumulates agreement windows, and the knob only ever moves on
        // active decisions.
        for p in 0..4_000u64 {
            sim.read(f, p % ((1 << 20) - 8), 4).unwrap();
            tuner.on_op(&mut sim).unwrap();
        }
        assert!(!tuner.decisions().is_empty());
        assert!(tuner.decisions().iter().all(|d| d.generation == 2));
        let stats = LifecycleTarget::shadow_stats(&tuner);
        assert!(stats.windows > 0, "shadow saw no windows");
        assert_eq!(stats.errors, 0);

        // A wrong-class artifact is rejected atomically: generation, knob,
        // and staged shadow all untouched.
        let ra_before = tuner.current_ra_kb();
        let err = tuner.install_artifact(&artifact(9, 3), 3).unwrap_err();
        assert!(matches!(
            err,
            ArtifactError::ClassMismatch {
                artifact: 3,
                policy: 2
            }
        ));
        assert_eq!(tuner.model_generation(), 2);
        assert_eq!(tuner.current_ra_kb(), ra_before);
        assert!(tuner.shadow_staged());

        // So is a corrupted artifact.
        let mut corrupt = artifact(7, 2);
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        assert!(tuner.install_artifact(&corrupt, 3).is_err());
        assert_eq!(tuner.model_generation(), 2);
    }

    #[test]
    fn tuner_skips_idle_windows() {
        let mut sim = Sim::new(SimConfig::default());
        let (_producer, consumer) = RingBuffer::<TraceRecord>::with_capacity(16).split();
        let mut tuner = KmlTuner::new(
            TunerModel::Tree(stub_tree()),
            RaPolicy::new(vec![16, 1024]),
            consumer,
            1_000_000,
            128,
        );
        // Clock advances with no tracepoints at all: no decisions.
        for _ in 0..10 {
            sim.advance(10_000_000);
            tuner.on_op(&mut sim).unwrap();
        }
        assert!(tuner.decisions().is_empty());
        assert_eq!(tuner.current_ra_kb(), 128);
    }
}
