//! Building and training the readahead models (paper §4 "Neural network
//! model").
//!
//! "Our model has three linear layers, and these layers are connected with
//! sigmoid activation functions ... We used the cross-entropy loss function
//! and optimized our network using an SGD optimizer, configured with a
//! (conventional) learning rate of 0.01 and a momentum of 0.99. ... We
//! measured the performance of our neural network using k-fold
//! cross-validation with k = 10, and found that our model reached an
//! average accuracy of 95.5%."
//!
//! [`train_paper_model`] reproduces the full §4 pipeline: run the study on
//! both devices, collect the NVMe training windows, train the network (in
//! `f64` "user space"), validate with k-fold, deploy as `f32` through the
//! model-file round trip (the §3.3 train-in-user-space/deploy-in-kernel
//! flow), and fit the comparison decision tree.

use crate::datagen::{self, DatagenConfig};
use crate::study::{ReadaheadStudy, StudyConfig};
use crate::tuner::RaPolicy;
use kernel_sim::DeviceProfile;
use kml_core::dataset::{Dataset, Normalizer};
use kml_core::dtree::{DecisionTree, DecisionTreeConfig};
use kml_core::loss::CrossEntropyLoss;
use kml_core::model::{Model, ModelBuilder};
use kml_core::optimizer::Sgd;
use kml_core::validate::{k_fold_cross_validate, CrossValidation};
use kml_core::{KmlRng, Result};
use rand::SeedableRng;

/// Scale of the whole train-and-evaluate pipeline.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Study scale (the class→readahead mapping sweep).
    pub study: StudyConfig,
    /// Training-data collection scale.
    pub datagen: DatagenConfig,
    /// Training epochs for the neural network.
    pub epochs: usize,
    /// Folds for cross-validation (the paper uses 10).
    pub k_folds: usize,
    /// Operations per closed-loop evaluation run.
    pub eval_ops: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            study: StudyConfig::default(),
            datagen: DatagenConfig::default(),
            epochs: 300,
            k_folds: 10,
            eval_ops: 30_000,
            seed: 0x4B4D4C,
        }
    }
}

impl LoopConfig {
    /// Reduced scale for unit tests and smoke runs.
    pub fn quick() -> Self {
        LoopConfig {
            study: StudyConfig::quick(),
            datagen: DatagenConfig::quick(),
            epochs: 300,
            k_folds: 4,
            eval_ops: 4_000,
            seed: 0x4B4D4C,
        }
    }
}

/// Everything §4 trains: network, tree, per-device policies, validation.
#[derive(Debug)]
pub struct TrainedReadahead {
    /// The deployed (f32) neural network with its fitted normalizer.
    pub network: Model<f32>,
    /// The comparison decision tree (on raw, unnormalized features).
    pub tree: DecisionTree,
    /// Class→readahead policy measured on NVMe.
    pub policy_nvme: RaPolicy,
    /// Class→readahead policy measured on SATA SSD.
    pub policy_ssd: RaPolicy,
    /// k-fold cross-validation result of the network recipe.
    pub cross_validation: CrossValidation,
    /// Held-in training accuracy of the tree (for reporting).
    pub tree_training_accuracy: f64,
}

impl TrainedReadahead {
    /// The policy for a device profile (by name).
    pub fn policy_for(&self, device: &DeviceProfile) -> &RaPolicy {
        if device.name == "ssd" {
            &self.policy_ssd
        } else {
            &self.policy_nvme
        }
    }
}

/// Builds the untrained paper topology: 5 → 15 → σ → 10 → σ → 4.
pub fn build_network<S: kml_core::scalar::Scalar>(seed: u64) -> Result<Model<S>> {
    ModelBuilder::readahead_paper_topology(crate::NUM_FEATURES, 4)
        .seed(seed)
        .build()
}

/// Trains a network on `data` (fitting the normalizer on it) with the
/// paper's loss/optimizer; returns the trained model.
///
/// # Errors
///
/// Propagates dataset and training errors.
pub fn train_network(data: &Dataset, epochs: usize, seed: u64) -> Result<Model<f64>> {
    let mut model = build_network::<f64>(seed)?;
    // Safe at any worker count: sharded training is byte-identical to
    // serial, so this only ever changes wall-clock, never the weights.
    model.set_train_workers(kml_platform::threading::default_workers());
    model.set_normalizer(Normalizer::fit(data.features())?);
    let mut sgd = Sgd::paper_defaults();
    let mut rng = KmlRng::seed_from_u64(seed ^ 0xA5A5);
    for _ in 0..epochs {
        model.train_epoch(data, &CrossEntropyLoss, &mut sgd, &mut rng)?;
    }
    Ok(model)
}

/// Returns a copy of the dataset with feature (v) — the current readahead
/// value — zeroed, used for decision-tree fitting (see `train_paper_model`).
fn mask_ra_feature(data: &Dataset) -> Result<Dataset> {
    let mut features = data.features().clone();
    let ra_col = features.cols() - 1;
    for r in 0..features.rows() {
        features.set(r, ra_col, 0.0);
    }
    Dataset::from_matrix(features, data.labels().to_vec())
}

/// The full §4 pipeline. Expensive at default scale; use
/// [`LoopConfig::quick`] in tests.
///
/// # Errors
///
/// Propagates study, collection, and training failures.
pub fn train_paper_model(cfg: &LoopConfig) -> Result<TrainedReadahead> {
    // 1. Study the problem: best readahead per training class, per device.
    let workloads = kvstore::Workload::training_set();
    let study_nvme = ReadaheadStudy::run(DeviceProfile::nvme(), &workloads, &cfg.study);
    let study_ssd = ReadaheadStudy::run(DeviceProfile::sata_ssd(), &workloads, &cfg.study);
    let policy_nvme = RaPolicy::new(study_nvme.training_class_policy());
    let policy_ssd = RaPolicy::new(study_ssd.training_class_policy());

    // 2. Collect labeled windows on NVMe (the paper's training device).
    //    The collection sweep is extended with the readahead values the
    //    policies will actually deploy: the deployed tuner changes feature
    //    (v) and the event-rate features with it, and models — especially
    //    the tree's hard thresholds — must see those regimes in training.
    let mut dcfg = cfg.datagen.clone();
    for policy in [&policy_nvme, &policy_ssd] {
        for class in 0..policy.classes() {
            let kb = policy.ra_kb_for(class);
            if !dcfg.ra_settings_kb.contains(&kb) {
                dcfg.ra_settings_kb.push(kb);
            }
        }
    }
    let data = datagen::training_dataset(&dcfg)?;

    // 3. Validate the recipe with k-fold cross-validation (E2).
    let mut rng = KmlRng::seed_from_u64(cfg.seed);
    let epochs = cfg.epochs;
    let cross_validation = k_fold_cross_validate(
        &data,
        cfg.k_folds.min(data.len() / 2).max(2),
        epochs,
        &CrossEntropyLoss,
        |fold| build_network::<f64>(cfg.seed + fold as u64),
        Sgd::paper_defaults,
        &mut rng,
    )?;

    // 4. Train the final network on everything, then deploy through the
    //    model file into f32 — the user-space-train / kernel-infer flow.
    let trained = train_network(&data, epochs, cfg.seed)?;
    let bytes = kml_core::modelfile::encode(&trained)?;
    let network = kml_core::modelfile::decode::<f32>(&bytes)?;

    // 5. Fit the comparison decision tree. Feature (v), the current
    //    readahead value, is masked to zero for the tree: its axis-aligned
    //    hard thresholds latch onto absolute readahead values seen during
    //    (static-ra) collection, but at deployment the tuner itself moves
    //    that feature — a feedback loop that whipsaws the tree. The NN's
    //    smooth boundaries tolerate it; masking keeps the tree competitive
    //    (and a masked feature is never split on, so deployment values are
    //    ignored entirely).
    let masked = mask_ra_feature(&data)?;
    let tree = DecisionTree::fit(&masked, DecisionTreeConfig::default())?;
    let tree_training_accuracy = tree.accuracy(&masked)?;

    Ok(TrainedReadahead {
        network,
        tree,
        policy_nvme,
        policy_ssd,
        cross_validation,
        tree_training_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kml_core::layers::LayerKind;

    #[test]
    fn network_topology_matches_paper() {
        let m = build_network::<f32>(1).unwrap();
        assert_eq!(
            m.layer_kinds(),
            vec![
                LayerKind::Linear,
                LayerKind::Sigmoid,
                LayerKind::Linear,
                LayerKind::Sigmoid,
                LayerKind::Linear,
            ]
        );
        assert_eq!(m.input_dim(), 5);
        assert_eq!(m.output_dim(), 4);
        // §4 memory claims: ~4 KB init footprint, sub-KB inference scratch.
        assert!(m.param_bytes() < 4096);
        assert!(
            (1500..4500).contains(&m.init_memory_bytes()),
            "init memory {} B should be in the paper's ~4 KB class",
            m.init_memory_bytes()
        );
        assert!(m.inference_scratch_bytes() < 1024);
    }

    #[test]
    fn quick_pipeline_learns_the_workload_classes() {
        let cfg = LoopConfig::quick();
        let trained = train_paper_model(&cfg).unwrap();
        let acc = trained.cross_validation.mean_accuracy();
        // The paper reports 95.5% at full scale; at quick scale we demand
        // clear learning (≫ 25% chance for 4 classes).
        assert!(acc > 0.7, "cross-validation accuracy {acc:.3}");
        assert!(
            trained.tree_training_accuracy > 0.8,
            "tree accuracy {:.3}",
            trained.tree_training_accuracy
        );
        // Policies exist for all classes on both devices.
        assert_eq!(trained.policy_nvme.classes(), 4);
        assert_eq!(trained.policy_ssd.classes(), 4);
    }

    #[test]
    fn deployed_f32_network_agrees_with_f64_training() {
        let cfg = DatagenConfig::quick();
        let data = crate::datagen::training_dataset(&cfg).unwrap();
        let mut f64_model = train_network(&data, 40, 7).unwrap();
        let bytes = kml_core::modelfile::encode(&f64_model).unwrap();
        let mut f32_model = kml_core::modelfile::decode::<f32>(&bytes).unwrap();
        let mut agree = 0;
        for i in 0..data.len() {
            let (f, _) = data.sample(i);
            if f64_model.predict(f).unwrap() == f32_model.predict(f).unwrap() {
                agree += 1;
            }
        }
        let ratio = agree as f64 / data.len() as f64;
        assert!(ratio > 0.95, "f32 deployment agreement only {ratio:.3}");
    }
}
