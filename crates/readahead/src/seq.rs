//! Sequence-native workload classification with recurrent models
//! (the payoff of the paper's §6 RNN/LSTM future work).
//!
//! The feed-forward readahead model consumes hand-designed per-window
//! summary statistics. A recurrent model can instead read the raw
//! tracepoint stream: each timestep is one tracepoint, encoded as
//! `[signed log-delta, writeback flag]`, and the hidden state accumulates
//! whatever temporal summary helps. This module builds labeled sequence
//! datasets from captured traces and trains [`kml_core::recurrent::Rnn`] /
//! [`kml_core::recurrent::Lstm`] classifiers on them.

use crate::datagen::{self, DatagenConfig};
use kernel_sim::{DeviceProfile, TraceKind, TraceRecord};
use kml_core::matrix::Matrix;
use kml_core::recurrent::{Lstm, Rnn};
use kml_core::{KmlError, Result};
use kvstore::Workload;

/// Features per timestep:
/// `[tanh(Δoffset), signed log1p(Δoffset) / log1p(10⁶), is_writeback]`.
pub const SEQ_FEATURES: usize = 3;

/// Encodes a run of consecutive tracepoints as a `len × 3` sequence matrix.
///
/// Two complementary views of the offset delta keep every regime trainable:
/// `tanh(Δ)` is a bounded *direction* signal (±0.76 for unit strides, ±1
/// for jumps), and the normalized signed `log1p` keeps the *magnitude* of
/// random jumps in `[-1, 1]` instead of saturating the recurrent state.
///
/// # Errors
///
/// Returns [`KmlError::BadDataset`] if fewer than two records are given
/// (no delta exists).
pub fn encode_sequence(records: &[TraceRecord]) -> Result<Matrix<f64>> {
    if records.len() < 2 {
        return Err(KmlError::BadDataset(
            "sequence needs at least two tracepoints".into(),
        ));
    }
    let log_scale = kml_core::math::ln(1.0 + 1e6);
    let mut rows = Vec::with_capacity(records.len() - 1);
    for pair in records.windows(2) {
        let delta = pair[1].page_offset as f64 - pair[0].page_offset as f64;
        let signed_log = delta.signum() * kml_core::math::ln(1.0 + delta.abs()) / log_scale;
        let is_writeback = match pair[1].kind {
            TraceKind::WritebackDirtyPage => 1.0,
            TraceKind::AddToPageCache => 0.0,
        };
        rows.push(vec![kml_core::math::tanh(delta), signed_log, is_writeback]);
    }
    Matrix::from_rows(&rows)
}

/// A labeled sequence dataset: one `(seq_len+1)`-record slice per sample.
#[derive(Debug)]
pub struct SequenceDataset {
    /// Encoded sequences, `seq_len × SEQ_FEATURES` each.
    pub sequences: Vec<Matrix<f64>>,
    /// Workload class per sequence (training-set index).
    pub labels: Vec<usize>,
}

impl SequenceDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Builds a labeled sequence dataset by capturing traces of the four
/// training workloads on NVMe and slicing them into fixed-length runs.
///
/// # Errors
///
/// Returns [`KmlError::BadDataset`] if capture produced too little data.
pub fn sequence_dataset(
    cfg: &DatagenConfig,
    seq_len: usize,
    max_per_class: usize,
) -> Result<SequenceDataset> {
    let mut sequences = Vec::new();
    let mut labels = Vec::new();
    for (class, workload) in Workload::training_set().into_iter().enumerate() {
        let trace = datagen::capture_trace(DeviceProfile::nvme(), workload, 128, 1, cfg);
        let mut taken = 0;
        for chunk in trace.chunks(seq_len + 1) {
            if chunk.len() < seq_len + 1 || taken >= max_per_class {
                break;
            }
            sequences.push(encode_sequence(chunk)?);
            labels.push(class);
            taken += 1;
        }
        if taken == 0 {
            return Err(KmlError::BadDataset(format!(
                "workload {workload} produced no full sequences"
            )));
        }
    }
    Ok(SequenceDataset { sequences, labels })
}

/// Trains an RNN classifier on the dataset; returns `(model, accuracy)`.
///
/// # Errors
///
/// Propagates training failures.
pub fn train_rnn(
    data: &SequenceDataset,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Result<(Rnn<f64>, f64)> {
    use kml_core::loss::{CrossEntropyLoss, Loss, TargetRef};
    use kml_core::optimizer::Sgd;
    use kml_core::KmlRng;
    use rand::SeedableRng;

    let mut rng = KmlRng::seed_from_u64(seed);
    let classes = data.labels.iter().max().copied().unwrap_or(0) + 1;
    let mut rnn = Rnn::new(SEQ_FEATURES, hidden, classes, &mut rng);
    let mut sgd = Sgd::new(0.01, 0.5);
    let mut order: Vec<usize> = (0..data.len()).collect();
    for _ in 0..epochs {
        // Shuffle per epoch: the dataset arrives grouped by class, and
        // per-sample SGD on sorted blocks collapses to the last block.
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        for &i in &order {
            let (seq, label) = (&data.sequences[i], data.labels[i]);
            let logits = rnn.forward(seq)?;
            let grad = CrossEntropyLoss.grad(&logits, TargetRef::Classes(&[label]))?;
            rnn.backward(&grad)?;
            sgd.step(&mut rnn.param_grads())?;
        }
    }
    let mut correct = 0;
    for (seq, &label) in data.sequences.iter().zip(&data.labels) {
        if rnn.predict(seq)? == label {
            correct += 1;
        }
    }
    Ok((rnn, correct as f64 / data.len().max(1) as f64))
}

/// [`train_rnn`] with random restarts: trains once per seed and keeps the
/// run with the best training accuracy.
///
/// Plain Elman RNNs are initialization-sensitive — on this task a single
/// seed lands anywhere from ~0.17 to ~0.73 accuracy — so production use
/// (and the regression test) trains a handful of seeds and deploys the
/// best, the standard remedy the paper's §6 LSTM discussion sidesteps by
/// construction. Deterministic: same seed list, same winner.
///
/// # Errors
///
/// Propagates training failures; errors if `seeds` is empty.
pub fn train_rnn_best_of(
    data: &SequenceDataset,
    hidden: usize,
    epochs: usize,
    seeds: &[u64],
) -> Result<(Rnn<f64>, f64)> {
    let mut best: Option<(Rnn<f64>, f64)> = None;
    for &seed in seeds {
        let (rnn, acc) = train_rnn(data, hidden, epochs, seed)?;
        if best.as_ref().is_none_or(|(_, b)| acc > *b) {
            best = Some((rnn, acc));
        }
    }
    best.ok_or_else(|| KmlError::BadDataset("train_rnn_best_of needs at least one seed".into()))
}

/// Trains an LSTM classifier on the dataset; returns `(model, accuracy)`.
///
/// # Errors
///
/// Propagates training failures.
pub fn train_lstm(
    data: &SequenceDataset,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Result<(Lstm<f64>, f64)> {
    use kml_core::loss::{CrossEntropyLoss, Loss, TargetRef};
    use kml_core::optimizer::Sgd;
    use kml_core::KmlRng;
    use rand::SeedableRng;

    let mut rng = KmlRng::seed_from_u64(seed);
    let classes = data.labels.iter().max().copied().unwrap_or(0) + 1;
    let mut lstm = Lstm::new(SEQ_FEATURES, hidden, classes, &mut rng);
    let mut sgd = Sgd::new(0.01, 0.5);
    let mut order: Vec<usize> = (0..data.len()).collect();
    for _ in 0..epochs {
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        for &i in &order {
            let (seq, label) = (&data.sequences[i], data.labels[i]);
            let logits = lstm.forward(seq)?;
            let grad = CrossEntropyLoss.grad(&logits, TargetRef::Classes(&[label]))?;
            lstm.backward(&grad)?;
            sgd.step(&mut lstm.param_grads())?;
        }
    }
    let mut correct = 0;
    for (seq, &label) in data.sequences.iter().zip(&data.labels) {
        if lstm.predict(seq)? == label {
            correct += 1;
        }
    }
    Ok((lstm, correct as f64 / data.len().max(1) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(offset: u64, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            kind,
            inode: 1,
            page_offset: offset,
            time_ns: 0,
        }
    }

    #[test]
    fn encoding_compresses_deltas_and_flags_writebacks() {
        let records = vec![
            rec(100, TraceKind::AddToPageCache),
            rec(101, TraceKind::AddToPageCache),        // Δ = +1
            rec(50_101, TraceKind::AddToPageCache),     // Δ = +50 000
            rec(50_000, TraceKind::WritebackDirtyPage), // Δ = −101, writeback
        ];
        let seq = encode_sequence(&records).unwrap();
        assert_eq!(seq.shape(), (3, 3));
        assert!((seq.get(0, 0) - 1.0f64.tanh()).abs() < 1e-9); // unit stride
        assert!(seq.get(1, 1) > 0.7 && seq.get(1, 1) <= 1.0); // big jump, bounded
        assert!(seq.get(2, 0) < 0.0 && seq.get(2, 1) < 0.0); // negative delta
        assert_eq!(seq.get(2, 2), 1.0); // writeback flag
        assert_eq!(seq.get(0, 2), 0.0);
    }

    #[test]
    fn too_short_sequences_rejected() {
        assert!(encode_sequence(&[]).is_err());
        assert!(encode_sequence(&[rec(1, TraceKind::AddToPageCache)]).is_err());
    }

    /// Accuracy when the two random classes (readrandom and
    /// readrandomwriterandom) are merged: within a 16-step window they are
    /// nearly indistinguishable (few write events land in any one window),
    /// so the *direction* classes are where sequence models must deliver.
    fn direction_accuracy(
        predict: &mut dyn FnMut(&kml_core::matrix::Matrix<f64>) -> usize,
        data: &SequenceDataset,
    ) -> f64 {
        let merge = |c: usize| if c == 3 { 0 } else { c };
        let correct = data
            .sequences
            .iter()
            .zip(&data.labels)
            .filter(|(seq, &label)| merge(predict(seq)) == merge(label))
            .count();
        correct as f64 / data.len().max(1) as f64
    }

    #[test]
    fn rnn_classifies_workloads_from_raw_tracepoints() {
        let cfg = DatagenConfig::quick();
        let data = sequence_dataset(&cfg, 16, 60).unwrap();
        assert!(data.len() >= 100, "only {} sequences", data.len());
        // Elman RNN training is initialization-sensitive (single-seed
        // accuracy ranges ~0.17-0.73 here — the vanishing-gradient story
        // that motivates the LSTM, whose test demands much more from one
        // seed). Best-of-N restarts make the outcome stable: every seed in
        // this list individually clears the bars today, so the test keeps
        // passing even if drift in the RNG stream or datagen sinks some of
        // them.
        let (mut rnn, acc) = train_rnn_best_of(&data, 12, 30, &[3, 7, 9]).unwrap();
        assert!(acc > 0.4, "rnn training accuracy {acc}");
        let dir = direction_accuracy(&mut |s| rnn.predict(s).unwrap(), &data);
        assert!(dir > 0.55, "rnn direction accuracy {dir}");
    }

    #[test]
    fn best_of_needs_at_least_one_seed() {
        let cfg = DatagenConfig::quick();
        let data = sequence_dataset(&cfg, 16, 4).unwrap();
        assert!(train_rnn_best_of(&data, 4, 1, &[]).is_err());
    }

    #[test]
    fn lstm_classifies_workloads_from_raw_tracepoints() {
        let cfg = DatagenConfig::quick();
        let data = sequence_dataset(&cfg, 16, 60).unwrap();
        let (mut lstm, acc) = train_lstm(&data, 8, 30, 3).unwrap();
        assert!(acc > 0.55, "lstm training accuracy {acc}");
        let dir = direction_accuracy(&mut |s| lstm.predict(s).unwrap(), &data);
        assert!(dir > 0.85, "lstm direction accuracy {dir}");
    }
}
