//! End-to-end vanilla-vs-KML runs (paper Table 2 and Figure 2).
//!
//! A *vanilla* run executes a workload with Linux's default 128 KiB
//! readahead throughout. A *KML* run attaches the tracepoint ring buffer,
//! plugs in a [`KmlTuner`], and lets it re-tune readahead once per window.
//! The ratio of the two throughputs is one cell of Table 2; the per-window
//! throughput and readahead series of the KML run is Figure 2.

use crate::model::{LoopConfig, TrainedReadahead};
use crate::tuner::{KmlTuner, RaPolicy, TunerModel, LOOP_METRIC_PREFIX};
use kernel_sim::{DeviceProfile, Sim, SimConfig};
use kml_collect::RingBuffer;
use kml_core::Result;
use kml_telemetry::{Registry, Snapshot};
use kvstore::{fill_db, run_workload, FillMode, Workload, WorkloadConfig, WorkloadReport};

/// Linux's shipped readahead default, KiB — the vanilla baseline.
pub const VANILLA_RA_KB: u32 = 128;

/// One point of the Figure 2 timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Window end, simulated milliseconds since the run started.
    pub t_ms: u64,
    /// Throughput within the window, ops per simulated second.
    pub ops_per_sec: f64,
    /// Readahead in force at the window end, KiB.
    pub ra_kb: u32,
    /// Mean wall-clock inference latency within the window, ns (0 when the
    /// window held no inference, or for untelemetered tuners).
    pub infer_ns_mean: f64,
}

/// A KML run with its in-loop telemetry: the report and timeline of
/// [`run_kml`], plus a final registry snapshot (loop-stage spans, cache and
/// device metrics, ring occupancy) and the ring-buffer loss count.
#[derive(Debug, Clone)]
pub struct InstrumentedRun {
    /// Workload-level result (same as the `run_kml` report).
    pub report: WorkloadReport,
    /// Per-window series (same as the `run_kml` timeline).
    pub timeline: Vec<TimelinePoint>,
    /// End-of-run snapshot of every metric the loop recorded.
    pub telemetry: Snapshot,
    /// Tracepoint records lost to ring-buffer overwrites.
    pub ring_dropped: u64,
}

/// Result of a vanilla-vs-KML comparison for one (workload, device) cell.
#[derive(Debug, Clone)]
pub struct LoopOutcome {
    /// Workload of this cell.
    pub workload: Workload,
    /// Device name ("nvme" / "ssd").
    pub device: &'static str,
    /// Baseline run (fixed 128 KiB readahead).
    pub vanilla: WorkloadReport,
    /// KML-tuned run.
    pub kml: WorkloadReport,
    /// `kml.ops_per_sec / vanilla.ops_per_sec` — a Table 2 cell.
    pub speedup: f64,
    /// Per-window series of the KML run (Figure 2).
    pub timeline: Vec<TimelinePoint>,
}

fn make_sim(device: DeviceProfile, cfg: &LoopConfig) -> Sim {
    Sim::new(SimConfig {
        device,
        cache_pages: cfg.study.cache_pages,
        default_ra_kb: VANILLA_RA_KB,
        ..SimConfig::default()
    })
}

fn workload_config(workload: Workload, cfg: &LoopConfig) -> WorkloadConfig {
    WorkloadConfig {
        num_keys: cfg.study.num_keys,
        ops: cfg.eval_ops,
        seed: cfg.seed ^ 0xEE,
        ..WorkloadConfig::new(workload)
    }
}

/// Runs the vanilla baseline: fixed 128 KiB readahead, cold caches.
pub fn run_vanilla(workload: Workload, device: DeviceProfile, cfg: &LoopConfig) -> WorkloadReport {
    let mut sim = make_sim(device, cfg);
    let wcfg = workload_config(workload, cfg);
    let mut db = fill_db(&mut sim, &wcfg, FillMode::Bulk).expect("fault-free fill");
    sim.drop_caches().expect("fault-free drop_caches");
    sim.set_ra_kb(VANILLA_RA_KB);
    sim.reset_stats();
    run_workload(&mut sim, &mut db, &wcfg, |_| {})
}

/// Runs the KML-tuned configuration and captures the timeline.
///
/// # Errors
///
/// Propagates tuner/model failures.
pub fn run_kml(
    workload: Workload,
    device: DeviceProfile,
    trained: &TrainedReadahead,
    cfg: &LoopConfig,
) -> Result<(WorkloadReport, Vec<TimelinePoint>)> {
    run_kml_instrumented(workload, device, trained, cfg).map(|r| (r.report, r.timeline))
}

/// Like [`run_kml`], but returns the full in-loop telemetry alongside the
/// report (`repro -- overheads` uses this for its self-measurement section).
///
/// # Errors
///
/// Propagates tuner/model failures.
pub fn run_kml_instrumented(
    workload: Workload,
    device: DeviceProfile,
    trained: &TrainedReadahead,
    cfg: &LoopConfig,
) -> Result<InstrumentedRun> {
    let model = {
        // Re-deploy a fresh copy of the network for this run (models carry
        // forward state; runs must not share it).
        let bytes = kml_core::modelfile::encode(&trained.network)?;
        TunerModel::NeuralNet(Box::new(kml_core::modelfile::decode::<f32>(&bytes)?))
    };
    run_tuned_opts(
        workload,
        device,
        model,
        trained.policy_for(&device).clone(),
        cfg,
        true,
    )
}

/// Runs the decision-tree-tuned configuration (the paper's §4 comparison).
///
/// # Errors
///
/// Propagates tuner/model failures.
pub fn run_kml_tree(
    workload: Workload,
    device: DeviceProfile,
    trained: &TrainedReadahead,
    cfg: &LoopConfig,
) -> Result<(WorkloadReport, Vec<TimelinePoint>)> {
    run_tuned_opts(
        workload,
        device,
        TunerModel::Tree(trained.tree.clone()),
        trained.policy_for(&device).clone(),
        cfg,
        true,
    )
    .map(|r| (r.report, r.timeline))
}

/// Like [`run_kml`] but with the two-window actuation hysteresis disabled
/// (the ablation knob: every window's prediction actuates immediately).
///
/// # Errors
///
/// Propagates tuner/model failures.
pub fn run_kml_no_hysteresis(
    workload: Workload,
    device: DeviceProfile,
    trained: &TrainedReadahead,
    cfg: &LoopConfig,
) -> Result<(WorkloadReport, Vec<TimelinePoint>)> {
    let bytes = kml_core::modelfile::encode(&trained.network)?;
    let model = TunerModel::NeuralNet(Box::new(kml_core::modelfile::decode::<f32>(&bytes)?));
    run_tuned_opts(
        workload,
        device,
        model,
        trained.policy_for(&device).clone(),
        cfg,
        false,
    )
    .map(|r| (r.report, r.timeline))
}

fn run_tuned_opts(
    workload: Workload,
    device: DeviceProfile,
    model: TunerModel,
    policy: RaPolicy,
    cfg: &LoopConfig,
    hysteresis: bool,
) -> Result<InstrumentedRun> {
    let mut sim = make_sim(device, cfg);
    let telemetry = Registry::new();
    sim.attach_telemetry(&telemetry);
    let (producer, mut consumer) = RingBuffer::with_capacity(cfg.datagen.ring_capacity).split();
    sim.attach_trace(producer);
    consumer.attach_telemetry(&telemetry, "kml_collect.ring");
    let wcfg = workload_config(workload, cfg);
    let mut db = fill_db(&mut sim, &wcfg, FillMode::Bulk).expect("fault-free fill");
    sim.drop_caches().expect("fault-free drop_caches");
    sim.set_ra_kb(VANILLA_RA_KB); // KML starts from the default, then adapts
    sim.reset_stats();
    telemetry.reset(); // fill-phase metrics are not the workload's
                       // Discard fill-phase tracepoints: the tuner must only ever see the
                       // workload (stale records would poison the cumulative features).
    while consumer.pop().is_some() {}
    // Which kernel backend this loop's math dispatched to (0 = scalar,
    // 1 = avx2, 2 = avx512, 3 = neon — `KernelBackend::gauge_value`), and
    // whether the int8 serving fast path is vectorized; exported with
    // every snapshot so perf numbers are attributable to a code path.
    telemetry
        .gauge("kml.kernel_backend")
        .set(kml_core::simd::kernel_backend().gauge_value());
    telemetry
        .gauge("kml.q8_vector")
        .set(u64::from(kml_core::simd::q8_vector_active()));

    let mut tuner = KmlTuner::new(
        model,
        policy,
        consumer,
        cfg.datagen.window_ns,
        VANILLA_RA_KB,
    );
    tuner.set_hysteresis(hysteresis);
    // Per-window inference latency = delta of the loop's infer histogram
    // (same handle the tuner binds lazily via `sim.telemetry()`).
    let infer_hist = telemetry.histogram(&format!("{LOOP_METRIC_PREFIX}.infer_ns"));
    let start_ns = sim.now_ns();
    let mut timeline = Vec::new();
    let mut window_ops = 0u64;
    let mut window_start = start_ns;
    let (mut infer_count0, mut infer_sum0) = (0u64, 0u64);
    let mut tuner_err = None;
    let report = run_workload(&mut sim, &mut db, &wcfg, |sim| {
        window_ops += 1;
        if let Err(e) = tuner.on_op(sim) {
            tuner_err.get_or_insert(e);
        }
        let now = sim.now_ns();
        if now - window_start >= cfg.datagen.window_ns {
            let secs = (now - window_start) as f64 / 1e9;
            let infer = infer_hist.snapshot();
            let (dc, ds) = (infer.count - infer_count0, infer.sum - infer_sum0);
            (infer_count0, infer_sum0) = (infer.count, infer.sum);
            timeline.push(TimelinePoint {
                t_ms: (now - start_ns) / 1_000_000,
                ops_per_sec: window_ops as f64 / secs,
                ra_kb: tuner.current_ra_kb(),
                infer_ns_mean: if dc == 0 { 0.0 } else { ds as f64 / dc as f64 },
            });
            window_ops = 0;
            window_start = now;
        }
    });
    match tuner_err {
        Some(e) => Err(e),
        None => Ok(InstrumentedRun {
            report,
            timeline,
            ring_dropped: tuner.records_dropped(),
            telemetry: telemetry.snapshot(),
        }),
    }
}

/// Runs the reinforcement-learning bandit tuner (the §6 future-work
/// direction): no trained model, pure throughput feedback.
pub fn run_bandit(
    workload: Workload,
    device: DeviceProfile,
    cfg: &LoopConfig,
) -> (WorkloadReport, Vec<TimelinePoint>) {
    let mut sim = make_sim(device, cfg);
    let wcfg = workload_config(workload, cfg);
    let mut db = fill_db(&mut sim, &wcfg, FillMode::Bulk).expect("fault-free fill");
    sim.drop_caches().expect("fault-free drop_caches");
    sim.set_ra_kb(VANILLA_RA_KB);
    sim.reset_stats();

    let mut bandit = crate::rl::BanditTuner::with_default_arms(cfg.datagen.window_ns);
    let start_ns = sim.now_ns();
    let mut timeline = Vec::new();
    let mut window_ops = 0u64;
    let mut window_start = start_ns;
    let report = run_workload(&mut sim, &mut db, &wcfg, |sim| {
        window_ops += 1;
        bandit.on_op(sim);
        let now = sim.now_ns();
        if now - window_start >= cfg.datagen.window_ns {
            let secs = (now - window_start) as f64 / 1e9;
            timeline.push(TimelinePoint {
                t_ms: (now - start_ns) / 1_000_000,
                ops_per_sec: window_ops as f64 / secs,
                ra_kb: bandit.current_ra_kb(),
                infer_ns_mean: 0.0, // the bandit consults no model
            });
            window_ops = 0;
            window_start = now;
        }
    });
    (report, timeline)
}

/// Produces one Table 2 cell: vanilla vs KML for (workload, device).
///
/// # Errors
///
/// Propagates tuner/model failures.
pub fn compare(
    workload: Workload,
    device: DeviceProfile,
    trained: &TrainedReadahead,
    cfg: &LoopConfig,
) -> Result<LoopOutcome> {
    let vanilla = run_vanilla(workload, device, cfg);
    let (kml, timeline) = run_kml(workload, device, trained, cfg)?;
    Ok(LoopOutcome {
        workload,
        device: device.name,
        speedup: kml.ops_per_sec / vanilla.ops_per_sec,
        vanilla,
        kml,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::train_paper_model;

    /// One trained model shared by the closed-loop tests (training is the
    /// expensive part).
    fn trained() -> &'static TrainedReadahead {
        use std::sync::OnceLock;
        static CELL: OnceLock<TrainedReadahead> = OnceLock::new();
        CELL.get_or_init(|| train_paper_model(&LoopConfig::quick()).unwrap())
    }

    #[test]
    fn kml_improves_random_reads_on_ssd() {
        let cfg = LoopConfig::quick();
        let outcome = compare(
            Workload::ReadRandom,
            DeviceProfile::sata_ssd(),
            trained(),
            &cfg,
        )
        .unwrap();
        assert!(
            outcome.speedup > 1.02,
            "readrandom/ssd speedup only {:.3}",
            outcome.speedup
        );
    }

    #[test]
    fn kml_does_not_tank_sequential_reads() {
        let cfg = LoopConfig::quick();
        let outcome = compare(Workload::ReadSeq, DeviceProfile::nvme(), trained(), &cfg).unwrap();
        // The paper itself reports 0.96× here; demand "no disaster".
        assert!(
            outcome.speedup > 0.85,
            "readseq/nvme speedup {:.3}",
            outcome.speedup
        );
    }

    #[test]
    fn kml_handles_never_seen_workload() {
        let cfg = LoopConfig::quick();
        let outcome = compare(
            Workload::UpdateRandom,
            DeviceProfile::sata_ssd(),
            trained(),
            &cfg,
        )
        .unwrap();
        assert!(
            outcome.speedup > 0.95,
            "updaterandom/ssd speedup {:.3}",
            outcome.speedup
        );
    }

    #[test]
    fn timeline_records_windows_with_ra_values() {
        let cfg = LoopConfig::quick();
        let (_, timeline) = run_kml(
            Workload::ReadRandom,
            DeviceProfile::sata_ssd(),
            trained(),
            &cfg,
        )
        .unwrap();
        assert!(!timeline.is_empty(), "no timeline windows");
        assert!(timeline.iter().all(|p| p.ops_per_sec > 0.0));
        assert!(timeline.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
    }

    #[test]
    fn instrumented_run_reports_loop_telemetry() {
        let cfg = LoopConfig::quick();
        let run = run_kml_instrumented(
            Workload::ReadRandom,
            DeviceProfile::sata_ssd(),
            trained(),
            &cfg,
        )
        .unwrap();
        assert!(!run.timeline.is_empty());
        let snap = &run.telemetry;
        if !snap.is_empty() {
            // Every decision ran one inference; spans recorded real time.
            let infer = snap.histogram("readahead.loop.infer_ns").unwrap();
            let decisions = snap.counter("readahead.loop.decision_total").unwrap();
            assert_eq!(infer.count, decisions);
            assert!(decisions > 0, "no decisions in instrumented run");
            assert!(infer.sum > 0, "inference spans recorded zero time");
            // The sim-level metrics share the registry.
            assert!(snap.counter("sim.cache.hit_total").unwrap_or(0) > 0);
            assert!(snap.counter("kml_collect.ring.consumed_total").unwrap_or(0) > 0);
            // Some window saw a live mean inference latency.
            assert!(run.timeline.iter().any(|p| p.infer_ns_mean > 0.0));
        }
    }

    #[test]
    fn tree_variant_also_runs() {
        let cfg = LoopConfig::quick();
        let vanilla = run_vanilla(Workload::ReadRandom, DeviceProfile::sata_ssd(), &cfg);
        let (tree_report, _) = run_kml_tree(
            Workload::ReadRandom,
            DeviceProfile::sata_ssd(),
            trained(),
            &cfg,
        )
        .unwrap();
        let speedup = tree_report.ops_per_sec / vanilla.ops_per_sec;
        assert!(speedup > 0.9, "tree tuner speedup {speedup:.3}");
    }

    #[test]
    fn bandit_tuner_competes_without_any_training() {
        let mut cfg = LoopConfig::quick();
        // Give the bandit enough windows to get past pure exploration.
        cfg.eval_ops = 12_000;
        let vanilla = run_vanilla(Workload::ReadRandom, DeviceProfile::sata_ssd(), &cfg);
        let (bandit, timeline) = run_bandit(Workload::ReadRandom, DeviceProfile::sata_ssd(), &cfg);
        let speedup = bandit.ops_per_sec / vanilla.ops_per_sec;
        // Exploration costs something, but the learned policy must not be a
        // disaster — and on random reads it usually beats the default.
        assert!(speedup > 0.9, "bandit speedup {speedup:.3}");
        assert!(!timeline.is_empty());
    }
}
