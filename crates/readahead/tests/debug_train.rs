//! Regression coverage for the feed-forward training pipeline (promoted
//! from the old ignored diagnostic): dataset composition, loss descent,
//! and per-class accuracy on the paper's network topology.

use kml_core::dataset::Normalizer;
use kml_core::prelude::*;
use readahead::datagen::{self, DatagenConfig};

#[test]
fn feedforward_pipeline_learns_the_training_set() {
    let cfg = DatagenConfig::quick();
    let data = datagen::training_dataset(&cfg).unwrap();
    assert!(data.len() > 50, "training set too small: {}", data.len());
    assert_eq!(data.num_classes(), 4);
    for c in 0..4 {
        let n = data.labels().iter().filter(|&&l| l == c).count();
        assert!(n > 0, "class {c} has no training windows");
    }

    let mut model = readahead::model::build_network::<f64>(1).unwrap();
    model.set_normalizer(Normalizer::fit(data.features()).unwrap());
    let mut sgd = Sgd::paper_defaults();
    let mut rng = KmlRng::seed_from_u64(2);
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for _ in 0..150 {
        last_loss = model
            .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
            .unwrap();
        first_loss.get_or_insert(last_loss);
    }
    let first_loss = first_loss.unwrap();
    assert!(
        last_loss < first_loss * 0.8,
        "loss failed to descend: {first_loss:.4} -> {last_loss:.4}"
    );

    let acc = model.accuracy(&data).unwrap();
    assert!(acc > 0.7, "training accuracy regressed: {acc:.3}");

    // Confusion matrix: every class must be *predicted* at least once —
    // mode collapse onto one class can still pass a bare accuracy floor
    // on an imbalanced set.
    let mut preds = Vec::new();
    for i in 0..data.len() {
        preds.push(model.predict(data.sample(i).0).unwrap());
    }
    let cm =
        kml_core::validate::ConfusionMatrix::from_predictions(&preds, data.labels(), 4).unwrap();
    for p in 0..4 {
        let col: usize = (0..4).map(|t| cm.count(t, p)).sum();
        assert!(col > 0, "model never predicts class {p} (mode collapse)");
    }
}
