//! Ignored-by-default diagnostic harness for the feed-forward pipeline:
//! prints dataset composition, loss curve, and training accuracy.
//! Run with: `cargo test -p readahead --test debug_train -- --ignored --nocapture`

use kml_core::dataset::Normalizer;
use kml_core::prelude::*;
use readahead::datagen::{self, DatagenConfig};

#[test]
#[ignore]
fn debug_training() {
    let cfg = DatagenConfig::quick();
    let data = datagen::training_dataset(&cfg).unwrap();
    println!(
        "dataset: {} samples, {} classes",
        data.len(),
        data.num_classes()
    );
    for c in 0..4 {
        let n = data.labels().iter().filter(|&&l| l == c).count();
        println!("class {c}: {n} windows");
    }
    for i in (0..data.len()).step_by(data.len() / 12 + 1) {
        let (f, y) = data.sample(i);
        println!("y={y} f={f:?}");
    }
    let mut model = readahead::model::build_network::<f64>(1).unwrap();
    model.set_normalizer(Normalizer::fit(data.features()).unwrap());
    let mut sgd = Sgd::paper_defaults();
    let mut rng = KmlRng::seed_from_u64(2);
    for e in 0..300 {
        let loss = model
            .train_epoch(&data, &CrossEntropyLoss, &mut sgd, &mut rng)
            .unwrap();
        if e % 50 == 0 {
            println!("epoch {e}: loss {loss}");
        }
    }
    println!("train acc: {}", model.accuracy(&data).unwrap());
    // confusion
    let mut preds = Vec::new();
    for i in 0..data.len() {
        preds.push(model.predict(data.sample(i).0).unwrap());
    }
    let cm =
        kml_core::validate::ConfusionMatrix::from_predictions(&preds, data.labels(), 4).unwrap();
    for t in 0..4 {
        let row: Vec<usize> = (0..4).map(|p| cm.count(t, p)).collect();
        println!("true {t}: {row:?}");
    }
}
