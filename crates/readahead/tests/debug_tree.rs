//! Regression coverage for the decision-tree tuner's deployment behavior
//! (promoted from the old ignored diagnostic): the tree must train to a
//! usable accuracy, actuate real readahead changes in the closed loop,
//! and stay competitive with both vanilla and the network on the
//! workload the paper optimises for.

use kernel_sim::DeviceProfile;
use kvstore::Workload;
use readahead::closed_loop::{self, TimelinePoint};
use readahead::model::{train_paper_model, LoopConfig};

fn ra_histogram(tl: &[TimelinePoint]) -> std::collections::BTreeMap<u32, usize> {
    let mut m = std::collections::BTreeMap::new();
    for p in tl {
        *m.entry(p.ra_kb).or_insert(0) += 1;
    }
    m
}

#[test]
fn tree_tuner_matches_network_on_random_reads() {
    let cfg = LoopConfig::quick();
    let trained = train_paper_model(&cfg).unwrap();
    assert!(
        trained.tree_training_accuracy > 0.7,
        "tree training accuracy regressed: {:.3}",
        trained.tree_training_accuracy
    );
    // The SSD policy must map every class to a positive readahead.
    for c in 0..trained.policy_ssd.classes() {
        assert!(trained.policy_ssd.ra_kb_for(c) > 0);
    }

    let w = Workload::ReadRandom;
    let device = DeviceProfile::sata_ssd();
    let vanilla = closed_loop::run_vanilla(w, device, &cfg);
    let (nn, _) = closed_loop::run_kml(w, device, &trained, &cfg).unwrap();
    let (dt, dt_timeline) = closed_loop::run_kml_tree(w, device, &trained, &cfg).unwrap();

    // The tree must actually decide (timeline populated) and not be a
    // disaster against either baseline. The paper's point is that the
    // cheap tree keeps most of the network's win.
    assert!(!dt_timeline.is_empty(), "tree run recorded no windows");
    let hist = ra_histogram(&dt_timeline);
    assert!(!hist.is_empty());
    let dt_speedup = dt.ops_per_sec / vanilla.ops_per_sec;
    assert!(
        dt_speedup > 0.95,
        "tree vs vanilla regressed: {dt_speedup:.3}"
    );
    let dt_vs_nn = dt.ops_per_sec / nn.ops_per_sec;
    assert!(
        dt_vs_nn > 0.85,
        "tree lost too much to the network: {dt_vs_nn:.3}"
    );
}
