//! Ignored-by-default diagnostic: where does the decision-tree tuner's
//! class distribution diverge from the NN's at deployment?
//! Run: `cargo test -p readahead --test debug_tree --release -- --ignored --nocapture`

use kernel_sim::DeviceProfile;
use kvstore::Workload;
use readahead::closed_loop::{self};
use readahead::model::{train_paper_model, LoopConfig};

#[test]
#[ignore]
fn debug_tree_decisions() {
    let cfg = LoopConfig::default();
    let trained = train_paper_model(&cfg).unwrap();
    println!(
        "tree train acc {:.3}, nn cv {:.3}",
        trained.tree_training_accuracy,
        trained.cross_validation.mean_accuracy()
    );
    println!(
        "policy ssd: {:?}",
        (0..4)
            .map(|c| trained.policy_ssd.ra_kb_for(c))
            .collect::<Vec<_>>()
    );
    for w in [Workload::ReadRandom, Workload::ReadSeq, Workload::MixGraph] {
        let vanilla = closed_loop::run_vanilla(w, DeviceProfile::sata_ssd(), &cfg);
        let (nn, nt) = closed_loop::run_kml(w, DeviceProfile::sata_ssd(), &trained, &cfg).unwrap();
        let (dt, tt) =
            closed_loop::run_kml_tree(w, DeviceProfile::sata_ssd(), &trained, &cfg).unwrap();
        let ra_hist = |tl: &[closed_loop::TimelinePoint]| {
            let mut m = std::collections::BTreeMap::new();
            for p in tl {
                *m.entry(p.ra_kb).or_insert(0) += 1;
            }
            m
        };
        println!(
            "{w}: vanilla {:.0} nn {:.0} ({:?}) dt {:.0} ({:?})",
            vanilla.ops_per_sec,
            nn.ops_per_sec,
            ra_hist(&nt),
            dt.ops_per_sec,
            ra_hist(&tt)
        );
    }
}
