//! Diagnostic: tree predictions on deployment-like feature windows.
use kernel_sim::DeviceProfile;
use kvstore::Workload;
use readahead::datagen::{self};
use readahead::model::{train_paper_model, LoopConfig};

#[test]
#[ignore]
fn debug_tree_features() {
    let cfg = LoopConfig::default();
    let trained = train_paper_model(&cfg).unwrap();
    // Deployment-like windows: readrandom on SSD at various ra values.
    for ra in [128u32, 16, 1024] {
        let windows = datagen::collect_windows(
            DeviceProfile::sata_ssd(),
            Workload::ReadRandom,
            ra,
            99,
            &cfg.datagen,
        );
        let mut preds = [0usize; 4];
        for w in windows.iter().take(50) {
            preds[trained.tree.predict(w).unwrap()] += 1;
        }
        println!(
            "ssd readrandom@{ra}: {} windows, tree preds {preds:?}, first {:?}",
            windows.len(),
            windows.first()
        );
    }
    // Same on NVMe (training device).
    let windows = datagen::collect_windows(
        DeviceProfile::nvme(),
        Workload::ReadRandom,
        128,
        99,
        &cfg.datagen,
    );
    let mut preds = [0usize; 4];
    for w in windows.iter().take(50) {
        preds[trained.tree.predict(w).unwrap()] += 1;
    }
    println!("nvme readrandom@128: tree preds {preds:?}");
}
