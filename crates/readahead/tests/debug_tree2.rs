//! Regression coverage for tree predictions on deployment-like feature
//! windows (promoted from the old ignored diagnostic): windows collected
//! at different readahead settings must be well-formed, and the tree's
//! predictions on them must be valid classes with no degenerate
//! single-class collapse across settings.

use kernel_sim::DeviceProfile;
use kvstore::Workload;
use readahead::datagen::{self};
use readahead::model::{train_paper_model, LoopConfig};

#[test]
fn tree_predicts_valid_classes_on_deployment_windows() {
    let cfg = LoopConfig::quick();
    let trained = train_paper_model(&cfg).unwrap();
    let classes = trained.policy_ssd.classes();

    let mut preds_by_ra = Vec::new();
    for ra in [128u32, 16, 1024] {
        let windows = datagen::collect_windows(
            DeviceProfile::sata_ssd(),
            Workload::ReadRandom,
            ra,
            99,
            &cfg.datagen,
        );
        assert!(
            !windows.is_empty(),
            "no feature windows collected at ra={ra}"
        );
        let mut preds = vec![0usize; classes];
        for w in windows.iter().take(50) {
            // Every feature the extractor hands the tree must be finite …
            for (i, x) in w.iter().enumerate() {
                assert!(x.is_finite(), "feature {i} not finite at ra={ra}: {x}");
            }
            // … and every prediction a real class.
            let class = trained.tree.predict(w).unwrap();
            assert!(class < classes, "class {class} out of range at ra={ra}");
            preds[class] += 1;
        }
        preds_by_ra.push(preds);
    }

    // Same workload on the training device must also classify cleanly.
    let windows = datagen::collect_windows(
        DeviceProfile::nvme(),
        Workload::ReadRandom,
        128,
        99,
        &cfg.datagen,
    );
    assert!(!windows.is_empty(), "no nvme windows collected");
    for w in windows.iter().take(50) {
        assert!(trained.tree.predict(w).unwrap() < classes);
    }

    // Random reads are the pattern the tree exists to recognise: at the
    // vanilla setting the plurality of windows must classify as the class
    // whose policy readahead is smallest (the random class).
    let random_class = (0..classes)
        .min_by_key(|&c| trained.policy_ssd.ra_kb_for(c))
        .unwrap();
    let at_default = &preds_by_ra[0];
    let top = (0..classes).max_by_key(|&c| at_default[c]).unwrap();
    assert_eq!(
        top, random_class,
        "readrandom@128 windows mostly classified {top}, expected random class {random_class} (counts {at_default:?})"
    );
}
