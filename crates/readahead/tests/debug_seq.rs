//! Ignored-by-default diagnostic harness for the sequence models:
//! prints per-class confusion across training lengths.
//! Run with: `cargo test -p readahead --test debug_seq -- --ignored --nocapture`

use readahead::datagen::DatagenConfig;
use readahead::seq::*;

#[test]
#[ignore]
fn debug_seq() {
    let cfg = DatagenConfig::quick();
    let data = sequence_dataset(&cfg, 16, 60).unwrap();
    println!("sequences: {}", data.len());
    let mut counts = [0; 4];
    for &l in &data.labels {
        counts[l] += 1;
    }
    println!("class counts: {counts:?}");
    for epochs in [30, 80] {
        let (mut rnn, acc) = train_rnn(&data, 12, epochs, 3).unwrap();
        let mut per = [[0usize; 4]; 4];
        for (s, &l) in data.sequences.iter().zip(&data.labels) {
            per[l][rnn.predict(s).unwrap()] += 1;
        }
        println!("rnn epochs {epochs}: acc {acc:.3} confusion {per:?}");
        let (mut lstm, acc) = train_lstm(&data, 8, epochs, 3).unwrap();
        let mut per = [[0usize; 4]; 4];
        for (s, &l) in data.sequences.iter().zip(&data.labels) {
            per[l][lstm.predict(s).unwrap()] += 1;
        }
        println!("lstm epochs {epochs}: acc {acc:.3} confusion {per:?}");
    }
}
