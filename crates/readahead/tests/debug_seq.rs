//! Regression coverage for the sequence models (promoted from the old
//! ignored diagnostic): the RNN and LSTM must actually separate the four
//! access-pattern classes on the synthetic sequence corpus, not merely
//! train without error.

use readahead::datagen::DatagenConfig;
use readahead::seq::*;

#[test]
fn sequence_models_separate_the_four_classes() {
    let cfg = DatagenConfig::quick();
    let data = sequence_dataset(&cfg, 16, 60).unwrap();
    assert!(!data.is_empty(), "sequence corpus came out empty");

    // Every class must be represented, or accuracy floors are meaningless.
    let mut counts = [0usize; 4];
    for &l in &data.labels {
        counts[l] += 1;
    }
    for (class, &n) in counts.iter().enumerate() {
        assert!(n > 0, "class {class} has no sequences (counts {counts:?})");
    }

    // Chance on four classes is ~0.25 (up to imbalance); a trained model
    // that can't clear 0.5 on its own training corpus has regressed.
    // 30 epochs: the plain RNN's accuracy *peaks* there and decays with
    // longer training (no gating — the old diagnostic showed the collapse).
    let (mut rnn, rnn_acc) = train_rnn(&data, 12, 30, 3).unwrap();
    assert!(
        rnn_acc > 0.5,
        "rnn training accuracy regressed: {rnn_acc:.3}"
    );
    let (mut lstm, lstm_acc) = train_lstm(&data, 8, 30, 3).unwrap();
    assert!(
        lstm_acc > 0.5,
        "lstm training accuracy regressed: {lstm_acc:.3}"
    );

    // The reported accuracy must agree with the models' actual predictions
    // (guards against accuracy being computed on the wrong corpus).
    for (model_acc, preds) in [
        (rnn_acc, {
            let mut v = Vec::new();
            for s in &data.sequences {
                v.push(rnn.predict(s).unwrap());
            }
            v
        }),
        (lstm_acc, {
            let mut v = Vec::new();
            for s in &data.sequences {
                v.push(lstm.predict(s).unwrap());
            }
            v
        }),
    ] {
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, l)| p == l)
            .count();
        let measured = correct as f64 / data.len() as f64;
        assert!(
            (measured - model_acc).abs() < 1e-9,
            "reported accuracy {model_acc:.3} != measured {measured:.3}"
        );
        for &p in &preds {
            assert!(p < 4, "prediction {p} outside the four classes");
        }
    }
}
