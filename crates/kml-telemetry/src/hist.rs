//! Log2-bucketed histogram with percentile extraction.
//!
//! 65 buckets: bucket 0 holds exact zeros, bucket `b` (1..=64) holds values
//! in `[2^(b-1), 2^b)`. Recording is two relaxed `fetch_add`s (bucket +
//! sum); reading walks 65 cells. Percentiles are bucket-resolution
//! estimates — within a factor of 2, which is exactly the precision the
//! paper's overhead discussion needs (collection ≪ inference ≪ training
//! spans four orders of magnitude).

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::Arc;

const BUCKETS: usize = 65;

#[cfg(feature = "enabled")]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

#[cfg(feature = "enabled")]
impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Lock-free log2 histogram handle. Cloning shares the buckets.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    inner: Option<Arc<HistogramCore>>,
}

#[cfg(feature = "enabled")]
impl std::fmt::Debug for HistogramCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramCore").finish_non_exhaustive()
    }
}

#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Upper bound (exclusive) of bucket `b`; `1` for the zero bucket.
fn bucket_hi(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        1u64 << b
    }
}

/// Lower bound (inclusive) of bucket `b`.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

impl Histogram {
    /// Handle that records nothing (what disabled builds always get).
    pub fn noop() -> Self {
        Histogram::default()
    }

    #[cfg(feature = "enabled")]
    pub(crate) fn new_live() -> Self {
        Histogram {
            inner: Some(Arc::new(HistogramCore::default())),
        }
    }

    /// Whether this handle has live storage behind it.
    #[inline]
    pub(crate) fn live(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Records one observation. Two relaxed `fetch_add`s.
    #[inline(always)]
    pub fn record(&self, value: u64) {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            core.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(value, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = value;
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            let buckets: Vec<u64> = core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            let count: u64 = buckets.iter().sum();
            let sum = core.sum.load(Ordering::Relaxed);
            return HistSnapshot {
                count,
                sum,
                p50: percentile_from(&buckets, count, 0.50),
                p95: percentile_from(&buckets, count, 0.95),
                p99: percentile_from(&buckets, count, 0.99),
                max: max_from(&buckets),
            };
        }
        HistSnapshot::default()
    }

    pub(crate) fn reset(&self) {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            for b in &core.buckets {
                b.store(0, Ordering::Relaxed);
            }
            core.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// Immutable summary of a [`Histogram`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Bucket-resolution estimates (midpoint of the containing bucket).
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    /// Upper edge of the highest occupied bucket (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// Arithmetic mean (exact: true sum over true count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

fn percentile_from(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    // Rank of the q-th percentile, 1-based.
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (b, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            // Midpoint of the bucket's value range.
            let lo = bucket_lo(b);
            let hi = bucket_hi(b);
            return lo + (hi - lo) / 2;
        }
    }
    bucket_hi(buckets.len() - 1)
}

fn max_from(buckets: &[u64]) -> u64 {
    buckets
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &n)| n > 0)
        .map(|(b, _)| bucket_hi(b))
        .unwrap_or(0)
}

/// Plain single-owner log2 histogram — same bucketing as [`Histogram`],
/// but unconditionally available (no `enabled` feature, no atomics) and
/// **mergeable**: shard-local histograms fold into an aggregate with
/// [`Log2Hist::merge`], and the merge is *exact* — merging per-shard
/// histograms yields bit-for-bit the histogram of the concatenated
/// samples, so fleet-wide p50/p99 are independent of how tenants were
/// sharded. This is what makes `repro fleet` byte-identical at any
/// `--threads` count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Hist::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Folds `other` into `self` (exact: bucket-wise addition).
    pub fn merge(&mut self, other: &Log2Hist) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Bucket-resolution percentile estimate (midpoint of the containing
    /// bucket), `q` in `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_from(&self.buckets, self.count, q)
    }

    /// Point-in-time summary, same shape as [`Histogram::snapshot`].
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum: self.sum,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            max: max_from(&self.buckets),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "enabled")]
    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn percentiles_order_and_bound() {
        let h = Histogram::new_live();
        // 90 fast ops (~100 ns), 9 medium (~10 µs), 1 slow (~1 ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 100 + 9 * 10_000 + 1_000_000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        // p50 lands in the bucket containing 100 = [64, 128).
        assert!((64..128).contains(&s.p50), "p50 {}", s.p50);
        // p95 and p99 (ranks 95 and 99 of 100) land in the bucket
        // containing 10_000 = [8192, 16384); only rank 100 is the slow op.
        assert!((8_192..16_384).contains(&s.p95), "p95 {}", s.p95);
        assert!((8_192..16_384).contains(&s.p99), "p99 {}", s.p99);
        assert!(s.max >= 1_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::noop();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p99, 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn mean_is_exact() {
        let h = Histogram::new_live();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.snapshot().mean(), 2.5);
    }

    /// The satellite exactness contract: merging per-shard histograms is
    /// bit-identical to recording the concatenated sample stream into one
    /// histogram — buckets, count, sum, and therefore every percentile.
    #[test]
    fn merge_of_shard_histograms_equals_histogram_of_concatenated_samples() {
        // Deterministic value stream spanning many buckets (incl. zeros).
        let mut x = 0x5EED_1234u64;
        let samples: Vec<u64> = (0..10_000)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if i % 97 == 0 {
                    0
                } else {
                    x >> (x % 50) as u32
                }
            })
            .collect();
        for shards in [1usize, 3, 8] {
            let mut parts: Vec<Log2Hist> = vec![Log2Hist::new(); shards];
            let mut whole = Log2Hist::new();
            for (i, &v) in samples.iter().enumerate() {
                parts[i % shards].record(v);
                whole.record(v);
            }
            let mut merged = Log2Hist::new();
            for p in &parts {
                merged.merge(p);
            }
            assert_eq!(merged, whole, "{shards} shards");
            assert_eq!(merged.snapshot(), whole.snapshot());
        }
    }

    #[test]
    fn log2hist_percentiles_match_the_atomic_histogram() {
        let mut plain = Log2Hist::new();
        for _ in 0..90 {
            plain.record(100);
        }
        for _ in 0..9 {
            plain.record(10_000);
        }
        plain.record(1_000_000);
        let s = plain.snapshot();
        assert_eq!(s.count, 100);
        assert!((64..128).contains(&s.p50), "p50 {}", s.p50);
        assert!((8_192..16_384).contains(&s.p99), "p99 {}", s.p99);
        assert!(s.max >= 1_000_000);
        assert_eq!(plain.sum(), 90 * 100 + 9 * 10_000 + 1_000_000);
        // Empty histogram degenerates cleanly.
        assert_eq!(Log2Hist::new().snapshot(), HistSnapshot::default());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn zero_values_counted_in_zero_bucket() {
        let h = Histogram::new_live();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50, 0);
    }
}
