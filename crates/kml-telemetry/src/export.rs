//! Periodic snapshot export.
//!
//! The harness drives [`PeriodicExporter::tick`] from its loop (per window
//! or per op); the exporter re-snapshots the registry at most once per
//! `interval` and appends JSON-lines to its sink. This keeps export off the
//! hot path entirely — a tick between flushes is one subtraction and a
//! compare — and needs no background thread, which keeps repro runs
//! deterministic.

use crate::{Registry, Snapshot};
use std::io::Write;
use std::time::{Duration, Instant};

/// Flushes registry snapshots to a writer at a bounded rate.
pub struct PeriodicExporter<W: Write> {
    registry: Registry,
    sink: W,
    scope: String,
    interval: Duration,
    last_flush: Option<Instant>,
    flushes: u64,
}

impl<W: Write> PeriodicExporter<W> {
    pub fn new(registry: Registry, sink: W, scope: impl Into<String>, interval: Duration) -> Self {
        PeriodicExporter {
            registry,
            sink,
            scope: scope.into(),
            interval,
            last_flush: None,
            flushes: 0,
        }
    }

    /// Flushes if at least `interval` has passed since the last flush (the
    /// first tick always flushes). Returns whether a flush happened.
    ///
    /// # Errors
    ///
    /// Propagates sink write failures.
    pub fn tick(&mut self) -> std::io::Result<bool> {
        let due = match self.last_flush {
            None => true,
            Some(t) => t.elapsed() >= self.interval,
        };
        if !due {
            return Ok(false);
        }
        self.flush_now()?;
        Ok(true)
    }

    /// Unconditionally snapshots and writes (end-of-run flush).
    ///
    /// # Errors
    ///
    /// Propagates sink write failures.
    pub fn flush_now(&mut self) -> std::io::Result<Snapshot> {
        let snap = self.registry.snapshot();
        self.sink
            .write_all(snap.to_json_lines(&self.scope).as_bytes())?;
        self.sink.flush()?;
        self.last_flush = Some(Instant::now());
        self.flushes += 1;
        Ok(snap)
    }

    /// Number of flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Consumes the exporter, returning its sink.
    pub fn into_sink(self) -> W {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_flushes_then_rate_limits() {
        let reg = Registry::new();
        reg.counter("e.total").inc();
        let mut ex =
            PeriodicExporter::new(reg.clone(), Vec::new(), "test", Duration::from_secs(3600));
        assert!(ex.tick().unwrap());
        assert!(!ex.tick().unwrap(), "second tick within interval flushed");
        assert_eq!(ex.flushes(), 1);
        let out = String::from_utf8(ex.into_sink()).unwrap();
        if reg.is_enabled() {
            assert!(out.contains("\"name\":\"e.total\""));
        }
    }

    #[test]
    fn flush_now_always_writes() {
        let reg = Registry::new();
        reg.gauge("depth").set(5);
        let mut ex = PeriodicExporter::new(reg.clone(), Vec::new(), "s", Duration::from_secs(3600));
        ex.flush_now().unwrap();
        ex.flush_now().unwrap();
        assert_eq!(ex.flushes(), 2);
    }
}
