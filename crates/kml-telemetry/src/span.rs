//! Span timing for the stages of the KML closed loop.
//!
//! A [`Span`] measures wall-clock time from creation to [`Span::finish`]
//! (or drop) and records the elapsed nanoseconds into a [`Histogram`]. When
//! telemetry is disabled — at compile time or via a no-op handle — starting
//! a span does not even read the clock.
//!
//! [`StageSet`] bundles one histogram per stage of the paper's loop,
//! observe → featurize → infer → actuate (plus train, for the online
//! trainer), under conventional `_ns` metric names, so every instrumented
//! crate labels the same stage the same way and `repro -- overheads` can
//! line the live numbers up against the offline E5 bench.

use crate::hist::Histogram;
use crate::Registry;
use std::time::Instant;

/// The stages of the closed loop, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Tracepoint capture + ring-buffer transfer (paper: "collection").
    Collect,
    /// Feature building / normalization (paper: "normalization").
    Featurize,
    /// Model forward pass.
    Infer,
    /// Applying the decision to the kernel knob.
    Actuate,
    /// Online training step, where a component trains in-loop.
    Train,
}

impl Stage {
    pub const ALL: [Stage; 5] = [
        Stage::Collect,
        Stage::Featurize,
        Stage::Infer,
        Stage::Actuate,
        Stage::Train,
    ];

    /// Canonical metric-name fragment for this stage.
    pub fn key(self) -> &'static str {
        match self {
            Stage::Collect => "collect",
            Stage::Featurize => "featurize",
            Stage::Infer => "infer",
            Stage::Actuate => "actuate",
            Stage::Train => "train",
        }
    }
}

/// An in-flight stage measurement. Records on `finish()` or drop.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Starts timing against `hist`. Reads the clock only if the histogram
    /// is live.
    #[inline]
    pub fn start(hist: &Histogram) -> Span {
        Span {
            hist: hist.clone(),
            start: if hist.is_live() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Stops the clock and records elapsed nanoseconds.
    #[inline]
    pub fn finish(mut self) {
        self.finish_inner();
    }

    #[inline]
    fn finish_inner(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.hist.record(ns);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

impl Histogram {
    /// Whether this handle records anywhere (false for no-op handles and
    /// always false in disabled builds).
    #[inline]
    pub fn is_live(&self) -> bool {
        self.live()
    }

    /// Times `f` and records its wall-clock duration in nanoseconds.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if self.is_live() {
            let t = Instant::now();
            let out = f();
            self.record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            out
        } else {
            f()
        }
    }
}

/// One histogram per loop stage, under `{prefix}.{stage}_ns` names.
#[derive(Clone, Debug)]
pub struct StageSet {
    pub collect_ns: Histogram,
    pub featurize_ns: Histogram,
    pub infer_ns: Histogram,
    pub actuate_ns: Histogram,
    pub train_ns: Histogram,
}

impl StageSet {
    /// Registers the five stage histograms under `prefix`.
    pub fn register(registry: &Registry, prefix: &str) -> StageSet {
        let h = |stage: Stage| registry.histogram(&format!("{prefix}.{}_ns", stage.key()));
        StageSet {
            collect_ns: h(Stage::Collect),
            featurize_ns: h(Stage::Featurize),
            infer_ns: h(Stage::Infer),
            actuate_ns: h(Stage::Actuate),
            train_ns: h(Stage::Train),
        }
    }

    /// All-noop stage set.
    pub fn noop() -> StageSet {
        StageSet {
            collect_ns: Histogram::noop(),
            featurize_ns: Histogram::noop(),
            infer_ns: Histogram::noop(),
            actuate_ns: Histogram::noop(),
            train_ns: Histogram::noop(),
        }
    }

    /// The histogram for `stage`.
    pub fn hist(&self, stage: Stage) -> &Histogram {
        match stage {
            Stage::Collect => &self.collect_ns,
            Stage::Featurize => &self.featurize_ns,
            Stage::Infer => &self.infer_ns,
            Stage::Actuate => &self.actuate_ns,
            Stage::Train => &self.train_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_time() {
        let reg = Registry::new();
        let h = reg.histogram("stage.test_ns");
        let span = Span::start(&h);
        std::thread::sleep(std::time::Duration::from_micros(200));
        span.finish();
        let s = h.snapshot();
        if reg.is_enabled() {
            assert_eq!(s.count, 1);
            assert!(s.sum >= 100_000, "recorded only {} ns", s.sum);
        } else {
            assert_eq!(s.count, 0);
        }
    }

    #[test]
    fn span_records_on_drop_too() {
        let reg = Registry::new();
        let h = reg.histogram("stage.drop_ns");
        {
            let _span = Span::start(&h);
        }
        if reg.is_enabled() {
            assert_eq!(h.snapshot().count, 1);
        }
    }

    #[test]
    fn noop_span_never_reads_clock() {
        let h = Histogram::noop();
        let span = Span::start(&h);
        assert!(span.start.is_none());
        span.finish();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn time_closure_passes_value_through() {
        let reg = Registry::new();
        let h = reg.histogram("stage.closure_ns");
        let v = h.time(|| 41 + 1);
        assert_eq!(v, 42);
        if reg.is_enabled() {
            assert_eq!(h.snapshot().count, 1);
        }
    }

    #[test]
    fn stage_set_registers_conventional_names() {
        let reg = Registry::new();
        let stages = StageSet::register(&reg, "readahead.loop");
        stages.infer_ns.record(21_000);
        stages.collect_ns.record(49);
        let snap = reg.snapshot();
        if reg.is_enabled() {
            assert!(snap.histogram("readahead.loop.infer_ns").is_some());
            assert!(snap.histogram("readahead.loop.collect_ns").is_some());
            assert_eq!(snap.histogram("readahead.loop.infer_ns").unwrap().count, 1);
        }
    }
}
