//! Lock-free event stream for discrete telemetry events.
//!
//! Adapted from `kml_collect::ringbuf` — the same single-producer seqlock
//! ring the paper's §3.2 uses for tracepoint collection (this crate cannot
//! depend on `kml-collect`, which itself depends on this crate for
//! instrumentation, so the idiom is re-instantiated here for a fixed POD
//! event type rather than a generic `T`).
//!
//! The closed loop pushes one [`TelemetryEvent`] per actuation or class
//! decision; the exporter drains them into the JSON-lines trail. Overflow
//! overwrites the oldest events and the loss is observable via
//! [`EventConsumer::dropped`], exactly like the collection ring.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// One discrete loop event: what happened, when (sim ns), and a value
/// (class index, readahead KiB as bytes, etc. — the `kind` defines it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Simulated or wall timestamp, nanoseconds.
    pub t_ns: u64,
    /// Event discriminator (component-defined, e.g. 0 = class decision,
    /// 1 = actuation).
    pub kind: u32,
    /// Event payload (component-defined units; sizes in bytes).
    pub value: u64,
}

struct Slot {
    version: AtomicU64,
    data: UnsafeCell<TelemetryEvent>,
}

// Safety: identical protocol to kml_collect::ringbuf — the consumer only
// trusts a slot whose version proves the producer is not mid-write, and
// TelemetryEvent is Copy so torn reads are discarded without side effects.
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

struct Shared {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

/// Bounded lock-free SPSC ring of [`TelemetryEvent`]s.
pub struct EventRing {
    shared: Arc<Shared>,
}

/// Write endpoint: wait-free push from the loop.
pub struct EventProducer {
    shared: Arc<Shared>,
}

/// Read endpoint: drain + loss accounting, held by the exporter.
pub struct EventConsumer {
    shared: Arc<Shared>,
    tail: u64,
    dropped: u64,
}

impl EventRing {
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> EventRing {
        assert!(capacity > 0, "event ring capacity must be positive");
        let slots = (0..capacity)
            .map(|_| Slot {
                version: AtomicU64::new(0),
                data: UnsafeCell::new(TelemetryEvent::default()),
            })
            .collect();
        EventRing {
            shared: Arc::new(Shared {
                slots,
                head: AtomicU64::new(0),
            }),
        }
    }

    pub fn split(self) -> (EventProducer, EventConsumer) {
        (
            EventProducer {
                shared: self.shared.clone(),
            },
            EventConsumer {
                shared: self.shared,
                tail: 0,
                dropped: 0,
            },
        )
    }
}

impl EventProducer {
    /// Appends an event, overwriting the oldest if full. Never blocks.
    pub fn push(&self, event: TelemetryEvent) {
        let cap = self.shared.slots.len() as u64;
        let h = self.shared.head.load(Ordering::Relaxed);
        let slot = &self.shared.slots[(h % cap) as usize];
        let lap_base = (h / cap) * 2;
        slot.version.store(lap_base + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // Safety: single producer; odd version makes concurrent readers
        // discard whatever they see.
        unsafe {
            *slot.data.get() = event;
        }
        slot.version.store(lap_base + 2, Ordering::Release);
        self.shared.head.store(h + 1, Ordering::Release);
    }

    /// Total events pushed since creation.
    pub fn pushed(&self) -> u64 {
        self.shared.head.load(Ordering::Acquire)
    }
}

impl EventConsumer {
    /// Oldest available event, or `None` when drained.
    pub fn pop(&mut self) -> Option<TelemetryEvent> {
        let cap = self.shared.slots.len() as u64;
        loop {
            let h = self.shared.head.load(Ordering::Acquire);
            if self.tail >= h {
                return None;
            }
            if h - self.tail > cap {
                let lost = h - self.tail - cap;
                self.dropped += lost;
                self.tail = h - cap;
            }
            let slot = &self.shared.slots[(self.tail % cap) as usize];
            let expected = (self.tail / cap) * 2 + 2;
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 != expected {
                self.dropped += 1;
                self.tail += 1;
                continue;
            }
            // Safety: seqlock read — version re-check below discards torn
            // copies, and the event is Copy.
            let value = unsafe { std::ptr::read_volatile(slot.data.get()) };
            fence(Ordering::Acquire);
            let v2 = slot.version.load(Ordering::Acquire);
            if v2 != expected {
                self.dropped += 1;
                self.tail += 1;
                continue;
            }
            self.tail += 1;
            return Some(value);
        }
    }

    /// Drains everything currently available.
    pub fn drain(&mut self) -> impl Iterator<Item = TelemetryEvent> + '_ {
        std::iter::from_fn(move || self.pop())
    }

    /// Events lost to overwriting so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: u32, value: u64) -> TelemetryEvent {
        TelemetryEvent {
            t_ns: t,
            kind,
            value,
        }
    }

    #[test]
    fn fifo_and_loss_accounting() {
        let (p, mut c) = EventRing::with_capacity(3).split();
        for i in 0..7u64 {
            p.push(ev(i, 0, i * 10));
        }
        let got: Vec<_> = c.drain().collect();
        assert_eq!(got, vec![ev(4, 0, 40), ev(5, 0, 50), ev(6, 0, 60)]);
        assert_eq!(c.dropped(), 4);
        assert_eq!(p.pushed(), 7);
    }

    #[test]
    fn empty_pop_is_none() {
        let (_p, mut c) = EventRing::with_capacity(2).split();
        assert_eq!(c.pop(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = EventRing::with_capacity(0);
    }

    #[test]
    fn concurrent_every_event_delivered_or_counted() {
        const N: u64 = 50_000;
        let (p, mut c) = EventRing::with_capacity(128).split();
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                p.push(ev(i, 1, i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            }
        });
        let mut seen = 0u64;
        loop {
            match c.pop() {
                Some(e) => {
                    assert_eq!(
                        e.value,
                        e.t_ns.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        "torn read"
                    );
                    seen += 1;
                }
                None => {
                    if producer.is_finished() {
                        // One final drain after the producer stops.
                        while c.pop().is_some() {
                            seen += 1;
                        }
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        producer.join().unwrap();
        assert_eq!(seen + c.dropped(), N);
    }
}
