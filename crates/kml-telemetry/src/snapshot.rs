//! Point-in-time metric snapshots and their two export formats.
//!
//! [`Snapshot::render_table`] produces the human-readable form printed by
//! `repro -- overheads`; [`Snapshot::to_json_lines`] produces one JSON
//! object per line for the machine-readable trail under `results/`.
//!
//! Unit hygiene is enforced here: metric names ending `_ns` render with an
//! `ns` unit column, `_bytes` with `bytes`; anything else renders as a bare
//! count. Durations are always nanoseconds, sizes always bytes — never KB,
//! never pages.

use crate::hist::HistSnapshot;

/// Immutable copy of every metric in a registry at one instant.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistSnapshot)>,
}

/// Unit of a metric, derived from its name suffix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    Nanoseconds,
    Bytes,
    Count,
}

impl Unit {
    pub fn of(name: &str) -> Unit {
        if name.ends_with("_ns") {
            Unit::Nanoseconds
        } else if name.ends_with("_bytes") {
            Unit::Bytes
        } else {
            Unit::Count
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Unit::Nanoseconds => "ns",
            Unit::Bytes => "bytes",
            Unit::Count => "",
        }
    }
}

impl Snapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// True when no metric holds any data.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Pretty fixed-width table, one metric per row.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str(&format!(
                "  {:<44} {:>16} {:<6}\n",
                "counter/gauge", "value", "unit"
            ));
            for (name, v) in &self.counters {
                out.push_str(&format!(
                    "  {:<44} {:>16} {:<6}\n",
                    name,
                    v,
                    Unit::of(name).label()
                ));
            }
            for (name, v) in &self.gauges {
                out.push_str(&format!(
                    "  {:<44} {:>16} {:<6}\n",
                    name,
                    v,
                    Unit::of(name).label()
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "  {:<44} {:>10} {:>12} {:>10} {:>10} {:>10} {:<6}\n",
                "histogram", "count", "mean", "p50", "p95", "p99", "unit"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<44} {:>10} {:>12.1} {:>10} {:>10} {:>10} {:<6}\n",
                    name,
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99,
                    Unit::of(name).label()
                ));
            }
        }
        out
    }

    /// One JSON object per line. `scope` tags every line (e.g. the repro
    /// subcommand and workload that produced the snapshot).
    pub fn to_json_lines(&self, scope: &str) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"scope\":{},\"kind\":\"counter\",\"name\":{},\"unit\":{},\"value\":{v}}}\n",
                json_str(scope),
                json_str(name),
                json_str(Unit::of(name).label()),
            ));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"scope\":{},\"kind\":\"gauge\",\"name\":{},\"unit\":{},\"value\":{v}}}\n",
                json_str(scope),
                json_str(name),
                json_str(Unit::of(name).label()),
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"scope\":{},\"kind\":\"histogram\",\"name\":{},\"unit\":{},\"count\":{},\
                 \"sum\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}\n",
                json_str(scope),
                json_str(name),
                json_str(Unit::of(name).label()),
                h.count,
                h.sum,
                h.mean(),
                h.p50,
                h.p95,
                h.p99,
                h.max,
            ));
        }
        out
    }
}

/// Minimal JSON string encoder (metric names are code-controlled ASCII, but
/// escape defensively anyway).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("cache.hit_total").add(10);
        reg.gauge("ring.occupancy").set(3);
        let h = reg.histogram("infer.latency_ns");
        h.record(21_000);
        h.record(22_000);
        reg.snapshot()
    }

    #[test]
    fn unit_derivation_follows_suffix() {
        assert_eq!(Unit::of("x.latency_ns"), Unit::Nanoseconds);
        assert_eq!(Unit::of("x.model_bytes"), Unit::Bytes);
        assert_eq!(Unit::of("x.hit_total"), Unit::Count);
    }

    #[test]
    fn table_mentions_every_metric_with_units() {
        let snap = sample();
        if snap.is_empty() {
            return; // disabled build
        }
        let table = snap.render_table();
        assert!(table.contains("cache.hit_total"));
        assert!(table.contains("ring.occupancy"));
        assert!(table.contains("infer.latency_ns"));
        assert!(table.contains("ns"));
    }

    #[test]
    fn json_lines_parse_shape() {
        let snap = sample();
        if snap.is_empty() {
            return;
        }
        let json = snap.to_json_lines("test.scope");
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line {line}");
            assert!(line.contains("\"scope\":\"test.scope\""));
        }
        assert!(json.contains("\"kind\":\"histogram\""));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample();
        if snap.is_empty() {
            return;
        }
        assert_eq!(snap.counter("cache.hit_total"), Some(10));
        assert_eq!(snap.gauge("ring.occupancy"), Some(3));
        assert_eq!(snap.histogram("infer.latency_ns").unwrap().count, 2);
        assert_eq!(snap.counter("missing"), None);
    }
}
