//! Lock-free observability for the KML closed loop.
//!
//! The paper's operational claims are overhead numbers — ~49 ns/event
//! collection, ~21 µs inference, ~51 µs training (§4, E5) — and the extended
//! KML report stresses that a kernel-resident ML framework must account for
//! its own CPU and memory cost *continuously*. This crate is that
//! accounting: a metrics registry cheap enough to sit on per-tracepoint call
//! sites, plus span timing for each stage of the
//! observe → featurize → infer → actuate loop, plus snapshot export as
//! pretty tables and JSON-lines.
//!
//! # Design
//!
//! - **Hot path = atomics only.** [`Counter`] is sharded across cache-line
//!   padded atomic cells (one `fetch_add` per record, shard picked by a
//!   thread-local id). [`Histogram`] is a 65-bucket log2 histogram (one
//!   `fetch_add` into a bucket plus one into a sum cell). No locks, no
//!   allocation, no syscalls.
//! - **Cold path may lock.** Creating a metric interns its name in a
//!   mutex-protected map; snapshotting walks that map. Both happen per
//!   window or per run, never per event — mirroring the paper's rule that
//!   the I/O path itself stays lock-free (§3.2).
//! - **Zero-cost when disabled.** Building this crate without the `enabled`
//!   feature turns every handle into a zero-sized type and every record call
//!   into nothing. In enabled builds, [`Registry::noop`] additionally gives
//!   runtime no-op handles so benches can compare live vs disabled cost.
//! - **Units are part of the name.** Durations are recorded in nanoseconds
//!   and metric names end in `_ns`; sizes are recorded in bytes and names
//!   end in `_bytes`. [`snapshot::Snapshot::render_table`] derives its unit
//!   column from these suffixes, so a mislabeled metric is visible on sight.
//!
//! # Example
//!
//! ```
//! use kml_telemetry::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache.hit_total");
//! let lat = reg.histogram("device.read_latency_ns");
//! hits.inc();
//! lat.record(17_500);
//! let snap = reg.snapshot();
//! println!("{}", snap.render_table());
//! # #[cfg(feature = "enabled")]
//! assert_eq!(snap.counter("cache.hit_total"), Some(1));
//! ```

pub mod export;
pub mod hist;
pub mod ring;
pub mod snapshot;
pub mod span;

pub use export::PeriodicExporter;
pub use hist::{HistSnapshot, Histogram, Log2Hist};
pub use ring::{EventRing, TelemetryEvent};
pub use snapshot::{json_str, Snapshot};
pub use span::{Span, Stage, StageSet};

#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex, OnceLock};

/// Number of counter shards. Power of two; 8 cache lines per counter buys
/// uncontended increments for as many concurrent producers as the loop has.
#[cfg(feature = "enabled")]
const SHARDS: usize = 8;

/// One cache-line-padded atomic cell, so shards never false-share.
#[cfg(feature = "enabled")]
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell {
    value: AtomicU64,
}

/// Stable small id for the current thread, used to pick a shard.
#[cfg(feature = "enabled")]
#[inline]
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SHARD.with(|s| *s) & (SHARDS - 1)
}

#[cfg(feature = "enabled")]
#[derive(Default)]
struct CounterCore {
    shards: [PaddedCell; SHARDS],
}

/// Monotonic event counter. Cloning shares the underlying cells.
///
/// `inc`/`add` are one relaxed `fetch_add` on a thread-private shard.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    inner: Option<Arc<CounterCore>>,
}

#[cfg(feature = "enabled")]
impl std::fmt::Debug for CounterCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterCore").finish_non_exhaustive()
    }
}

impl Counter {
    /// A handle that records nothing (also what disabled builds hand out).
    pub fn noop() -> Self {
        Counter::default()
    }

    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline(always)]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            core.shards[shard_index()]
                .value
                .fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Whether this handle records anywhere (false for no-op handles and
    /// always false in disabled builds). Call sites with unavoidable
    /// side-costs (an extra load, a format) can skip them when dead.
    #[inline]
    pub fn is_live(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            return core
                .shards
                .iter()
                .map(|s| s.value.load(Ordering::Relaxed))
                .sum();
        }
        0
    }
}

/// Last-write-wins instantaneous value (queue depth, occupancy, ...).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    inner: Option<Arc<AtomicU64>>,
}

impl Gauge {
    pub fn noop() -> Self {
        Gauge::default()
    }

    /// Whether this handle records anywhere (see [`Counter::is_live`]).
    #[inline]
    pub fn is_live(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    #[inline(always)]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "enabled")]
        if let Some(cell) = &self.inner {
            cell.store(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    #[inline(always)]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if let Some(cell) = &self.inner {
            cell.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    #[inline(always)]
    pub fn sub(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if let Some(cell) = &self.inner {
            cell.fetch_sub(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        if let Some(cell) = &self.inner {
            return cell.load(Ordering::Relaxed);
        }
        0
    }
}

#[cfg(feature = "enabled")]
#[derive(Default)]
struct RegistryCore {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The metrics registry: hands out handles, takes snapshots.
///
/// Cloning is cheap and shares the metric store. A registry is `Send + Sync`;
/// one per [`kernel-sim`] instance keeps concurrent tests isolated, while
/// [`Registry::global`] serves call sites with no natural owner.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    #[cfg(feature = "enabled")]
    inner: Option<Arc<RegistryCore>>,
}

#[cfg(feature = "enabled")]
impl std::fmt::Debug for RegistryCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryCore").finish_non_exhaustive()
    }
}

impl Registry {
    /// A live registry (or a no-op one in disabled builds).
    pub fn new() -> Self {
        #[cfg(feature = "enabled")]
        {
            Registry {
                inner: Some(Arc::new(RegistryCore::default())),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Registry {}
        }
    }

    /// A registry whose handles record nothing, for runtime on/off
    /// comparisons (disabled builds always behave like this).
    pub fn noop() -> Self {
        Registry::default()
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Process-wide registry for call sites with no natural owner.
    pub fn global() -> &'static Registry {
        #[cfg(feature = "enabled")]
        {
            static GLOBAL: OnceLock<Registry> = OnceLock::new();
            GLOBAL.get_or_init(Registry::new)
        }
        #[cfg(not(feature = "enabled"))]
        {
            static GLOBAL: Registry = Registry {};
            &GLOBAL
        }
    }

    /// Get-or-create the counter `name`. Cold path (locks the name map).
    pub fn counter(&self, name: &str) -> Counter {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            let mut map = core.counters.lock().unwrap_or_else(|e| e.into_inner());
            return map
                .entry(name.to_string())
                .or_insert_with(|| Counter {
                    inner: Some(Arc::new(CounterCore::default())),
                })
                .clone();
        }
        let _ = name;
        Counter::noop()
    }

    /// Get-or-create the gauge `name`. Cold path.
    pub fn gauge(&self, name: &str) -> Gauge {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            let mut map = core.gauges.lock().unwrap_or_else(|e| e.into_inner());
            return map
                .entry(name.to_string())
                .or_insert_with(|| Gauge {
                    inner: Some(Arc::new(AtomicU64::new(0))),
                })
                .clone();
        }
        let _ = name;
        Gauge::noop()
    }

    /// Get-or-create the histogram `name`. Cold path.
    ///
    /// By convention the name ends in `_ns` for durations (record
    /// nanoseconds) or `_bytes` for sizes (record bytes).
    pub fn histogram(&self, name: &str) -> Histogram {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            let mut map = core.histograms.lock().unwrap_or_else(|e| e.into_inner());
            return map
                .entry(name.to_string())
                .or_insert_with(Histogram::new_live)
                .clone();
        }
        let _ = name;
        Histogram::noop()
    }

    /// Consistent-enough point-in-time copy of every metric. Cold path.
    pub fn snapshot(&self) -> Snapshot {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            let counters = core
                .counters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect();
            let gauges = core
                .gauges
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect();
            let histograms = core
                .histograms
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect();
            return Snapshot {
                counters,
                gauges,
                histograms,
            };
        }
        Snapshot::default()
    }

    /// Zeroes every registered metric (between repro runs). Cold path.
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        if let Some(core) = &self.inner {
            for c in core
                .counters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
            {
                if let Some(cc) = &c.inner {
                    for s in &cc.shards {
                        s.value.store(0, Ordering::Relaxed);
                    }
                }
            }
            for g in core
                .gauges
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
            {
                if let Some(cell) = &g.inner {
                    cell.store(0, Ordering::Relaxed);
                }
            }
            for h in core
                .histograms
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .values()
            {
                h.reset();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("a.b_total");
        let g = reg.gauge("a.depth");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(3);
        g.sub(2);
        if reg.is_enabled() {
            assert_eq!(c.get(), 5);
            assert_eq!(g.get(), 8);
        } else {
            assert_eq!(c.get(), 0);
            assert_eq!(g.get(), 0);
        }
    }

    #[test]
    fn same_name_shares_cells() {
        let reg = Registry::new();
        reg.counter("x").inc();
        reg.counter("x").inc();
        if reg.is_enabled() {
            assert_eq!(reg.counter("x").get(), 2);
        }
    }

    #[test]
    fn noop_registry_records_nothing() {
        let reg = Registry::noop();
        let c = reg.counter("silent");
        c.add(100);
        assert_eq!(c.get(), 0);
        assert!(reg.snapshot().counters.is_empty());
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = Registry::new();
        reg.counter("c").add(9);
        reg.gauge("g").set(9);
        reg.histogram("h_ns").record(9);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c").unwrap_or(0), 0);
        assert_eq!(snap.gauge("g").unwrap_or(0), 0);
        if let Some(h) = snap.histogram("h_ns") {
            assert_eq!(h.count, 0);
        }
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let reg = Registry::new();
        if !reg.is_enabled() {
            return;
        }
        let c = reg.counter("racing_total");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_handles_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Registry>(), 0);
    }
}
