//! Overflow accounting under concurrency: the observability chain must
//! never lose a record *silently*. A producer thread races a consumer
//! over a deliberately tiny ring; snapshots are exported concurrently
//! throughout; at quiescence every record must be accounted for exactly:
//! pushed = consumed + dropped, and the registry's exported counters
//! must agree with the ring's own books.

use kml_collect::RingBuffer;
use kml_telemetry::Registry;

#[test]
fn ring_overflow_drop_accounting_reconciles_exactly() {
    const PUSHES: u64 = 200_000;
    const CAPACITY: usize = 64; // tiny on purpose: overflow is the test

    let registry = Registry::new();
    let (producer, mut consumer) = RingBuffer::<u64>::with_capacity(CAPACITY).split();
    consumer.attach_telemetry(&registry, "ring");

    let writer = std::thread::spawn(move || {
        for i in 0..PUSHES {
            producer.push(i);
        }
        producer
    });

    // Consume while the producer floods, exporting snapshots as we go:
    // exported consumed_total must be monotone and popped values strictly
    // increasing (the seqlock may drop records, never duplicate or
    // reorder them).
    let mut consumed_here = 0u64;
    let mut last_value: Option<u64> = None;
    let mut last_export = 0u64;
    loop {
        match consumer.pop() {
            Some(v) => {
                if let Some(prev) = last_value {
                    assert!(
                        v > prev,
                        "ring yielded {v} after {prev}: duplicated or reordered"
                    );
                }
                last_value = Some(v);
                consumed_here += 1;
            }
            None => {
                if writer.is_finished() {
                    break;
                }
                std::hint::spin_loop();
            }
        }
        if consumed_here.is_multiple_of(1024) && registry.is_enabled() {
            let snap = registry.snapshot();
            let exported = snap.counter("ring.consumed_total").unwrap_or(0);
            assert!(
                exported >= last_export,
                "exported consumed_total went backwards: {last_export} -> {exported}"
            );
            last_export = exported;
        }
    }
    let producer = writer.join().expect("producer thread panicked");
    // Final drain: the producer is done, so pop-until-empty sees the rest.
    while consumer.pop().is_some() {
        consumed_here += 1;
    }

    // Exact reconciliation, no slack: every one of the PUSHES records is
    // either consumed or counted dropped.
    assert_eq!(producer.pushed(), PUSHES);
    assert_eq!(
        consumer.consumed() + consumer.dropped(),
        PUSHES,
        "records unaccounted for: consumed {} + dropped {} != pushed {}",
        consumer.consumed(),
        consumer.dropped(),
        PUSHES
    );
    assert_eq!(consumer.consumed(), consumed_here);
    assert!(
        consumer.dropped() > 0,
        "a {CAPACITY}-slot ring under a {PUSHES}-record flood must overflow"
    );

    // The exported view agrees with the ring's own books.
    if registry.is_enabled() {
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("ring.consumed_total"),
            Some(consumer.consumed())
        );
        assert_eq!(snap.gauge("ring.dropped_total"), Some(consumer.dropped()));
        assert_eq!(snap.gauge("ring.occupancy"), Some(0));
    }
}

#[test]
fn snapshot_export_is_exact_under_concurrent_writers() {
    const WRITERS: usize = 8;
    const OPS_PER_WRITER: u64 = 25_000;

    let registry = Registry::new();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let counter = registry.counter("writers.ops_total");
            let hist = registry.histogram("writers.latency_ns");
            s.spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    counter.inc();
                    hist.record((w as u64) * 1000 + i % 7);
                }
            });
        }
        // Export concurrently: totals may lag but must never exceed the
        // true count or go backwards.
        let mut last = 0u64;
        for _ in 0..100 {
            let snap = registry.snapshot();
            let now = snap.counter("writers.ops_total").unwrap_or(0);
            assert!(now >= last, "exported counter went backwards");
            assert!(
                now <= WRITERS as u64 * OPS_PER_WRITER,
                "exported counter overshot: {now}"
            );
            last = now;
            std::thread::yield_now();
        }
    });

    if registry.is_enabled() {
        let snap = registry.snapshot();
        let total = WRITERS as u64 * OPS_PER_WRITER;
        assert_eq!(snap.counter("writers.ops_total"), Some(total));
        let hist = snap
            .histogram("writers.latency_ns")
            .expect("histogram exported");
        assert_eq!(
            hist.count, total,
            "histogram lost records under concurrency"
        );
    }
}
