//! The second KML use case (paper §6 future work): tuning the block-layer
//! request scheduler's batching window.
//!
//! Run with: `cargo run --release --example iosched_tuning`
//!
//! A synchronous random reader wants zero batching wait; scattered
//! mergeable bursts want a generous one. A static window loses one way or
//! the other; the KML-trained classifier switches live.

use iosched::{run_sched_workload, IoScheduler, SchedTuner, SchedWorkload, SchedulerConfig};
use kernel_sim::DeviceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const REQUESTS: u64 = 4_096;
    const PATIENT_NS: u64 = 150_000;

    let static_run = |workload, wait_ns| {
        let mut sched = IoScheduler::new(
            DeviceProfile::sata_ssd(),
            SchedulerConfig {
                batch_wait_ns: wait_ns,
                max_batch: 256,
            },
        );
        run_sched_workload(&mut sched, workload, REQUESTS, 11, |_, _, _| {})
    };

    println!("training the scheduler classifier from synthetic traffic...");
    println!(
        "{:<18} {:>14} {:>14} {:>14}",
        "traffic", "eager (0µs)", "patient (150µs)", "KML-tuned"
    );
    for workload in [
        SchedWorkload::DependentRandom,
        SchedWorkload::MergeableBurst,
        SchedWorkload::Phased,
    ] {
        let eager = static_run(workload, 0);
        let patient = static_run(workload, PATIENT_NS);
        let mut sched = IoScheduler::new(DeviceProfile::sata_ssd(), SchedulerConfig::default());
        let mut tuner = SchedTuner::train([0, PATIENT_NS], 5)?;
        let tuned = run_sched_workload(&mut sched, workload, REQUESTS, 11, |s, req, now| {
            tuner
                .on_request(s, req, now)
                .expect("tuner inference succeeds");
        });
        println!(
            "{:<18} {:>11.0}/s {:>11.0}/s {:>11.0}/s",
            workload.name(),
            eager.requests_per_sec,
            patient.requests_per_sec,
            tuned.requests_per_sec,
        );
    }
    println!(
        "\nSame KML framework, different kernel component: the classifier\n\
         observes the arrival stream and actuates the batching window —\n\
         matching the best static configuration per phase without knowing\n\
         which traffic it will face."
    );
    Ok(())
}
