//! Quickstart: build, train, validate, and save a KML neural network.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This is the smallest end-to-end tour of the ML core: a 3-class toy
//! classification problem, the paper's training recipe (cross-entropy +
//! SGD with momentum), k-fold validation, and the KML model-file format.

use kml_core::dataset::Normalizer;
use kml_core::prelude::*;
use kml_core::validate::ConfusionMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A toy dataset: three Gaussian-ish blobs in 2-D. -------------
    let mut rng = KmlRng::seed_from_u64(42);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..600 {
        let class = rng.gen_range(0..3usize);
        let (cx, cy) = [(0.0, 0.0), (4.0, 0.0), (2.0, 3.5)][class];
        rows.push(vec![
            cx + rng.gen_range(-1.0..1.0),
            cy + rng.gen_range(-1.0..1.0),
        ]);
        labels.push(class);
    }
    let data = Dataset::from_rows(&rows, &labels)?;
    let (train, test) = data.shuffled(&mut rng).split(0.8)?;
    println!(
        "dataset: {} train / {} test samples",
        train.len(),
        test.len()
    );

    // --- 2. Build the network (builder API, Xavier init). ---------------
    let mut model = ModelBuilder::new(2)
        .linear(16)
        .sigmoid()
        .linear(3)
        .seed(7)
        .build::<f64>()?;
    model.set_normalizer(Normalizer::fit(train.features())?);
    println!(
        "model: {} parameters, {} B init memory",
        model.param_bytes() / 8,
        model.init_memory_bytes()
    );

    // --- 3. Train with the paper's optimizer settings. ------------------
    let mut sgd = Sgd::new(0.05, 0.9);
    for epoch in 0..120 {
        let loss = model.train_epoch(&train, &CrossEntropyLoss, &mut sgd, &mut rng)?;
        if epoch % 30 == 0 {
            println!("epoch {epoch:3}: loss {loss:.4}");
        }
    }

    // --- 4. Evaluate on held-out data. -----------------------------------
    let mut predictions = Vec::new();
    for i in 0..test.len() {
        predictions.push(model.predict(test.sample(i).0)?);
    }
    let cm = ConfusionMatrix::from_predictions(&predictions, test.labels(), 3)?;
    println!("test accuracy: {:.1}%", cm.accuracy() * 100.0);
    for c in 0..3 {
        if let Some(r) = cm.recall(c) {
            println!("  class {c} recall: {:.1}%", r * 100.0);
        }
    }

    // --- 5. Save to the KML model-file format and reload. ----------------
    let path = std::env::temp_dir().join("kml-quickstart.kml");
    kml_core::modelfile::save(&model, &path)?;
    let mut reloaded = kml_core::modelfile::load::<f64>(&path)?;
    let sample = test.sample(0).0;
    assert_eq!(model.predict(sample)?, reloaded.predict(sample)?);
    println!("model round-tripped through {}", path.display());
    std::fs::remove_file(path)?;
    Ok(())
}
