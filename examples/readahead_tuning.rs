//! The full Figure 1 closed loop: train the readahead classifier, deploy
//! it, and watch it re-tune readahead live during a mixgraph run.
//!
//! Run with: `cargo run --release --example readahead_tuning`

use kernel_sim::DeviceProfile;
use kvstore::Workload;
use readahead::closed_loop;
use readahead::model::{train_paper_model, LoopConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = LoopConfig::quick();

    println!("training the readahead models (study + collection + SGD)...");
    let trained = train_paper_model(&cfg)?;
    println!(
        "cross-validated accuracy: {:.1}%\n",
        trained.cross_validation.mean_accuracy() * 100.0
    );

    for device in [DeviceProfile::nvme(), DeviceProfile::sata_ssd()] {
        let outcome = closed_loop::compare(Workload::MixGraph, device, &trained, &cfg)?;
        println!("=== mixgraph on {} ===", device.name);
        println!(
            "vanilla: {:>9.0} ops/s   (fixed {} KiB readahead)",
            outcome.vanilla.ops_per_sec,
            closed_loop::VANILLA_RA_KB
        );
        println!(
            "KML:     {:>9.0} ops/s   speedup {:.2}x",
            outcome.kml.ops_per_sec, outcome.speedup
        );
        println!("timeline (simulated time, per-window throughput, readahead):");
        for p in outcome.timeline.iter().take(12) {
            println!(
                "  t={:>5} ms  {:>9.0} ops/s  ra={:>4} KiB",
                p.t_ms, p.ops_per_sec, p.ra_kb
            );
        }
        if outcome.timeline.len() > 12 {
            println!("  ... {} more windows", outcome.timeline.len() - 12);
        }
        println!();
    }
    println!(
        "Early windows fluctuate while caches are cold (the paper sees the\n\
         same in Figure 2); the tuner settles once the classifier locks on."
    );
    Ok(())
}
