//! The §3.3 deployment flow: **train in user space, deploy in the kernel**.
//!
//! Run with: `cargo run --release --example train_and_deploy`
//!
//! Training happens in `f64` (the "user space" persona: easy debugging,
//! full precision). The trained model is saved in the KML model-file
//! format, then loaded back at *different* precisions — `f32` for the
//! kernel module, and Q16.16 fixed point for an FPU-free deployment —
//! demonstrating the FPU-guard discipline along the way.

use kml_core::fixed::Fix32;
use kml_platform::fpu;
use readahead::datagen::{self, DatagenConfig};
use readahead::model;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- user space: collect data and train in f64 -----------------------
    println!("[user space] collecting tracepoint windows on NVMe...");
    let dcfg = DatagenConfig::quick();
    let data = datagen::training_dataset(&dcfg)?;
    println!(
        "[user space] {} labeled windows, {} classes",
        data.len(),
        data.num_classes()
    );

    println!("[user space] training the f64 network (lr=0.01, momentum=0.99)...");
    let trained = model::train_network(&data, 300, 7)?;
    let train_acc = {
        let mut m = model::train_network(&data, 300, 7)?;
        m.accuracy(&data)?
    };
    println!("[user space] training accuracy: {:.1}%", train_acc * 100.0);

    // --- save to the KML model file --------------------------------------
    let path = std::env::temp_dir().join("readahead-model.kml");
    kml_core::modelfile::save(&trained, &path)?;
    let size = std::fs::metadata(&path)?.len();
    println!("[file] saved {} ({size} bytes)", path.display());

    // --- kernel: load as f32 and infer under the FPU guard ---------------
    let mut kernel_model = kml_core::modelfile::load::<f32>(&path)?;
    println!(
        "[kernel] loaded as f32: {} B init memory, {} B inference scratch",
        kernel_model.init_memory_bytes(),
        kernel_model.inference_scratch_bytes()
    );
    let sections_before = fpu::sections_entered();
    let sample = data.sample(0);
    let class = kernel_model.predict(sample.0)?;
    println!(
        "[kernel] inference: predicted class {class} (truth {}), {} FPU section(s) used",
        sample.1,
        fpu::sections_entered() - sections_before
    );

    // --- FPU-free deployment: Q16.16 fixed point --------------------------
    let mut fixed_model = kml_core::modelfile::load::<Fix32>(&path)?;
    let sections_before = fpu::sections_entered();
    let mut agree = 0;
    let n = data.len().min(100);
    for i in 0..n {
        let (f, _) = data.sample(i);
        if fixed_model.predict(f)? == kernel_model.predict(f)? {
            agree += 1;
        }
    }
    // predict() on the f32 model enters FPU sections; the Fix32 model's
    // matrix math does not (only the shared f64 feature normalization does).
    println!("[kernel, FPU-free] Q16.16 deployment agrees with f32 on {agree}/{n} samples");
    let _ = sections_before;

    std::fs::remove_file(path)?;
    Ok(())
}
