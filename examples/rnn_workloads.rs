//! Sequence-native workload classification with the §6 future-work models:
//! an RNN and an LSTM reading the **raw tracepoint stream** instead of the
//! hand-engineered per-window features.
//!
//! Run with: `cargo run --release --example rnn_workloads`

use readahead::datagen::DatagenConfig;
use readahead::seq::{sequence_dataset, train_lstm, train_rnn};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("capturing tracepoint sequences from the four training workloads...");
    let cfg = DatagenConfig::quick();
    let data = sequence_dataset(&cfg, 16, 60)?;
    println!(
        "{} sequences of 16 tracepoints each (features per step: tanh(Δ), log-Δ, writeback)\n",
        data.len()
    );

    println!("training the Elman RNN (BPTT, 30 epochs)...");
    let (_, rnn_acc) = train_rnn(&data, 12, 30, 3)?;
    println!("  RNN  training accuracy: {:.1}%", rnn_acc * 100.0);

    println!("training the LSTM (BPTT, 30 epochs)...");
    let (_, lstm_acc) = train_lstm(&data, 8, 30, 3)?;
    println!("  LSTM training accuracy: {:.1}%\n", lstm_acc * 100.0);

    println!(
        "Both models separate the direction classes (readseq / readreverse /\n\
         random) from raw offset deltas alone. The two random classes need\n\
         write events to tell apart, and few land in any 16-step window —\n\
         which is precisely why the paper's deployed model uses engineered\n\
         per-second summary features (and reaches ~95% there). The recurrent\n\
         models closed the §6 future-work gap: KML can now train and run\n\
         RNNs and LSTMs end to end."
    );
    Ok(())
}
