//! §4's model-family comparison: the readahead neural network vs a CART
//! decision tree on the same classification task and the same closed loop.
//!
//! Run with: `cargo run --release --example decision_tree_compare`

use kernel_sim::DeviceProfile;
use kvstore::Workload;
use readahead::closed_loop;
use readahead::model::{train_paper_model, LoopConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = LoopConfig::quick();
    println!("training both model families...");
    let trained = train_paper_model(&cfg)?;

    println!(
        "classifier quality: NN cross-validated {:.1}%, tree (train) {:.1}%\n",
        trained.cross_validation.mean_accuracy() * 100.0,
        trained.tree_training_accuracy * 100.0
    );
    println!(
        "tree size: {} nodes, depth {}, ~{} B",
        trained.tree.node_count(),
        trained.tree.depth(),
        trained.tree.memory_bytes()
    );
    println!(
        "network size: {} B parameters ({} B init memory)\n",
        trained.network.param_bytes(),
        trained.network.init_memory_bytes()
    );

    println!(
        "{:<24} {:>8} {:>12} {:>12}",
        "workload/device", "vanilla", "NN tuner", "tree tuner"
    );
    for device in [DeviceProfile::nvme(), DeviceProfile::sata_ssd()] {
        for workload in [
            Workload::ReadRandom,
            Workload::MixGraph,
            Workload::UpdateRandom,
        ] {
            let vanilla = closed_loop::run_vanilla(workload, device, &cfg);
            let (nn, _) = closed_loop::run_kml(workload, device, &trained, &cfg)?;
            let (dt, _) = closed_loop::run_kml_tree(workload, device, &trained, &cfg)?;
            println!(
                "{:<24} {:>8.0} {:>10.2}x {:>10.2}x",
                format!("{}/{}", workload.name(), device.name),
                vanilla.ops_per_sec,
                nn.ops_per_sec / vanilla.ops_per_sec,
                dt.ops_per_sec / vanilla.ops_per_sec,
            );
        }
    }
    println!(
        "\nThe paper found the NN superior on average (82.5%/37.3% vs 55%/26%\n\
         mean improvement); at this reduced scale the two often tie — both\n\
         learn the same class → readahead mapping."
    );
    Ok(())
}
