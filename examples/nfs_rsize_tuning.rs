//! The network-storage closed loop: train the rsize link classifier,
//! mount a simulated NFS-like filesystem over three network profiles, and
//! watch the tuner re-size transfers as link conditions change.
//!
//! Run with: `cargo run --release --example nfs_rsize_tuning`

use netfs::{compare, train_rsize_model, NetProfile, NetRunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = NetRunConfig::quick();

    println!("training the rsize link classifier (labelled sweep windows)...");
    let model_bytes = train_rsize_model(7)?;
    println!("model: {} bytes\n", model_bytes.len());

    for profile in NetProfile::experiment_profiles(7) {
        let outcome = compare(profile, &model_bytes, &cfg)?;
        println!("=== {} ===", outcome.profile);
        for (kb, report) in &outcome.fixed {
            println!(
                "fixed rsize {:>4} KiB: {:>7.1} MB/s   (retransmits {}, failed ops {})",
                kb, report.mb_per_sec, report.stats.retransmits, report.failed_ops
            );
        }
        println!(
            "KML-tuned:            {:>7.1} MB/s   {:.2}x vs best fixed",
            outcome.kml.mb_per_sec, outcome.speedup_vs_best_fixed
        );
        println!("decision timeline (simulated time, inferred class, rsize):");
        for d in outcome.decisions.iter().take(8) {
            println!(
                "  t={:>5} ms  class={}  rsize={:>4} KiB",
                d.time_ns / 1_000_000,
                d.class,
                d.rsize_kb
            );
        }
        if outcome.decisions.len() > 8 {
            println!("  ... {} more windows", outcome.decisions.len() - 8);
        }
        println!();
    }
    println!(
        "On the clean datacenter link the tuner holds the largest transfer\n\
         size; on the phased profiles it shrinks into congestion bursts and\n\
         grows back out — no fixed rsize matches that on both phases."
    );
    Ok(())
}
