//! The §3.3 offline workflow: capture kernel traces, ship them to user
//! space as files, and train on the recordings — no live system needed.
//!
//! Run with: `cargo run --release --example trace_offline`

use kernel_sim::DeviceProfile;
use kml_core::dataset::Dataset;
use kvstore::Workload;
use readahead::datagen::{self, DatagenConfig};
use readahead::model;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DatagenConfig::quick();
    let dir = std::env::temp_dir();

    // --- "kernel": capture one trace file per training workload ----------
    let mut paths = Vec::new();
    for workload in Workload::training_set() {
        let trace = datagen::capture_trace(DeviceProfile::nvme(), workload, 128, 1, &cfg);
        let path = dir.join(format!("kml-{}.trc", workload.name()));
        kernel_sim::tracefile::save(&trace, &path)?;
        println!(
            "[kernel] captured {:>6} tracepoints of {:<22} → {}",
            trace.len(),
            workload.name(),
            path.display()
        );
        paths.push((workload, path));
    }

    // --- "user space": load the recordings and build a dataset ------------
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (class, (workload, path)) in paths.iter().enumerate() {
        let trace = kernel_sim::tracefile::load(path)?;
        let windows = datagen::windows_from_trace(&trace, 128, cfg.window_ns);
        println!(
            "[user space] {} → {} feature windows",
            workload.name(),
            windows.len()
        );
        for w in windows {
            rows.push(w.to_vec());
            labels.push(class);
        }
    }
    let data = Dataset::from_rows(&rows, &labels)?;

    // --- train offline, exactly as if collected live -----------------------
    let mut trained = model::train_network(&data, 300, 7)?;
    println!(
        "[user space] trained on recordings: {:.1}% accuracy over {} windows",
        trained.accuracy(&data)? * 100.0,
        data.len()
    );

    for (_, path) in paths {
        std::fs::remove_file(path)?;
    }
    println!(
        "\nSame pipeline, no live kernel: traces are portable, replayable\n\
         artifacts (checksummed KMLTRACE files), so models can be rebuilt,\n\
         audited, or re-featurized long after the run that produced them."
    );
    Ok(())
}
