//! The paper's motivating experiment (§4 "Studying the problem"): sweep
//! readahead sizes across workloads and devices and observe that **no
//! single value wins everywhere**.
//!
//! Run with: `cargo run --release --example workload_study`

use kernel_sim::DeviceProfile;
use kvstore::Workload;
use readahead::study::{ReadaheadStudy, StudyConfig};

fn main() {
    let cfg = StudyConfig {
        sweep_kb: vec![8, 16, 32, 64, 128, 256, 512, 1024],
        ..StudyConfig::quick()
    };
    let workloads = [
        Workload::ReadSeq,
        Workload::ReadRandom,
        Workload::ReadReverse,
    ];

    for device in [DeviceProfile::nvme(), DeviceProfile::sata_ssd()] {
        println!("=== device: {} ===", device.name);
        let study = ReadaheadStudy::run(device, &workloads, &cfg);
        // Curves: one row per readahead value, one column per workload.
        print!("{:>8}", "ra KiB");
        for w in &workloads {
            print!("{:>24}", w.name());
        }
        println!();
        for &ra in &cfg.sweep_kb {
            print!("{ra:>8}");
            for &w in &workloads {
                let tp = study.throughput(w, ra).unwrap_or(0.0);
                let best = study.throughput(w, study.best_ra_kb(w)).unwrap_or(1.0);
                let bar = "#".repeat(((tp / best) * 16.0) as usize);
                print!("{:>7.0} {bar:<16}", tp);
            }
            println!();
        }
        for &w in &workloads {
            println!("best for {:<12}: {} KiB", w.name(), study.best_ra_kb(w));
        }
        println!();
    }
    println!(
        "The paper's observation holds: sequential scans want the largest\n\
         window, random point reads want one matching the block size, and\n\
         the optimum shifts with the device — hence an adaptive tuner."
    );
}
